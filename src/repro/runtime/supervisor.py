"""Supervised execution: error boundaries, tiered degradation, and a
watchdog over the compiled runtime.

The fast path (PR 2) and the adaptive engine (PR 3) trade the reference
interpreter's per-hop isolation for speed: one exception inside a
compiled chain would otherwise unwind through the driver loop and kill
the whole router.  The :class:`Supervisor` restores isolation without
giving the speed back on the healthy path:

- Every compiled chain *entry* (each ``FastOutputPort``/``FastInputPort``
  the fast path installed) is wrapped in a boundary.  Boundaries on the
  ports of **task elements** (PollDevice, ToDevice, Unqueue...) are
  *containing*: an exception drops exactly the packet that raised,
  records it, demotes the chain one tier, and lets the driver's burst
  continue.  Boundaries on **interior** ports record and demote their
  own chain but re-raise, so the error surfaces at the task entry —
  precisely where the reference interpreter would have surfaced it.
  That placement is what keeps supervised execution byte-identical
  across modes: the raise aborts mid-handler side effects (a Tee's
  remaining outputs, an ARP querier's post-push bookkeeping) the same
  way everywhere.
- Demotion walks a per-chain tier stack: ``adaptive -> fast ->
  reference``.  The ``adaptive`` tier reads the live port slot each
  call, so the engine's dispatcher/promotion rewrites keep working
  untouched; ``fast`` pins the static tier-1 compiled function;
  ``reference`` calls the saved interpreter port.
- A per-chain circuit breaker: once a chain burns its error budget it
  drops straight to the reference floor.  Re-promotion is earned — a
  clean streak of ``backoff`` packets climbs one tier, and each error
  multiplies the required streak by ``backoff_factor`` (exponential
  backoff, capped at ``backoff_limit``).
- In reference mode the same containing boundaries wrap the task
  elements' plain ports, and :meth:`Router.run_tasks` adds a task-level
  backstop, so a supervised reference router is equally crash-free.
- A watchdog: a task that keeps claiming work (``run_task() -> True``)
  while its progress counters stay flat for ``watchdog_limit``
  consecutive passes is recorded and benched for ``watchdog_cooldown``
  passes.

Batched entries are *scalarized* while supervised: the boundary feeds
the scalar chain one packet at a time so an error costs one packet, not
the tail of a burst — the documented price of supervision in batch
mode.  Metered routers are refused (the meter charges at reference call
sites; boundaries would skew it).
"""

from __future__ import annotations

import json

__all__ = ["ResilienceReport", "Supervisor", "SupervisorConfig", "SupervisorError", "TUNABLES"]

#: Parameter-space declarations for the autotuner (:mod:`repro.tune`):
#: the circuit-breaker knobs worth searching.  Plain data, mirrored by
#: ``ExecutionProfile.with_tuning`` (applied only to supervised
#: profiles).
TUNABLES = (
    {"name": "supervisor.error_budget", "kind": "int", "low": 2, "high": 16, "default": 4},
    {"name": "supervisor.backoff", "kind": "log_int", "low": 8, "high": 512, "default": 32},
)


class SupervisorError(RuntimeError):
    """Supervision cannot be attached (metered router, double attach)."""


class SupervisorConfig:
    """Tuning knobs for boundaries, breaker, and watchdog."""

    __slots__ = (
        "error_budget",
        "backoff",
        "backoff_factor",
        "backoff_limit",
        "watchdog_limit",
        "watchdog_cooldown",
        "max_records",
    )

    def __init__(
        self,
        error_budget=4,
        backoff=32,
        backoff_factor=2.0,
        backoff_limit=4096,
        watchdog_limit=8,
        watchdog_cooldown=32,
        max_records=64,
    ):
        self.error_budget = int(error_budget)
        self.backoff = int(backoff)
        self.backoff_factor = float(backoff_factor)
        self.backoff_limit = int(backoff_limit)
        self.watchdog_limit = int(watchdog_limit)
        self.watchdog_cooldown = int(watchdog_cooldown)
        self.max_records = int(max_records)

    def as_dict(self):
        return {name: getattr(self, name) for name in sorted(self.__slots__)}


class _ChainGuard:
    """Per-supervised-chain state: the tier stack, breaker accounting,
    and the exponential re-promotion backoff."""

    __slots__ = (
        "key",
        "tiers",
        "level",
        "fn",
        "errors",
        "demotions",
        "repromotions",
        "clean",
        "need",
        "last_error",
        "supervisor",
    )

    def __init__(self, supervisor, key, tiers):
        self.supervisor = supervisor
        self.key = key
        self.tiers = tiers  # [(label, callable)], best tier first
        self.level = 0
        self.fn = tiers[0][1]
        self.errors = 0
        self.demotions = 0
        self.repromotions = 0
        self.clean = 0
        self.need = supervisor.config.backoff
        self.last_error = None

    @property
    def tier(self):
        return self.tiers[self.level][0]

    @property
    def breaker(self):
        """``closed`` while healthy at the top tier, ``half-open`` while
        degraded but still probing upward, ``open`` once the error
        budget is gone and the chain sits on the reference floor."""
        if self.errors >= self.supervisor.config.error_budget and self.level == len(self.tiers) - 1:
            return "open"
        if self.level:
            return "half-open"
        return "closed"

    def record(self, exc):
        """Count one boundary-caught exception; demote one tier (or to
        the floor once the budget is spent) and stretch the backoff."""
        config = self.supervisor.config
        self.errors += 1
        self.clean = 0
        self.last_error = "%s: %s" % (type(exc).__name__, exc)
        self.supervisor._note_chain_error(self, exc)
        floor = len(self.tiers) - 1
        if self.level < floor:
            self.level = floor if self.errors >= config.error_budget else self.level + 1
            self.fn = self.tiers[self.level][1]
            self.demotions += 1
        self.need = min(int(self.need * config.backoff_factor), config.backoff_limit)

    def promote(self):
        """One earned step back up the tier stack."""
        if self.level:
            self.level -= 1
            self.fn = self.tiers[self.level][1]
            self.repromotions += 1
        self.clean = 0


def _entry_push_boundary(guard):
    def push(packet, _g=guard):
        try:
            _g.fn(packet)
        except Exception as exc:  # noqa: BLE001 - the boundary IS the handling
            _g.record(exc)
            return
        if _g.level:
            _g.clean += 1
            if _g.clean >= _g.need:
                _g.promote()

    return push


def _interior_push_boundary(guard):
    def push(packet, _g=guard):
        try:
            _g.fn(packet)
        except Exception as exc:  # noqa: BLE001
            _g.record(exc)
            raise
        if _g.level:
            _g.clean += 1
            if _g.clean >= _g.need:
                _g.promote()

    return push


def _entry_pull_boundary(guard):
    def pull(_g=guard):
        try:
            packet = _g.fn()
        except Exception as exc:  # noqa: BLE001
            _g.record(exc)
            return None
        if _g.level:
            _g.clean += 1
            if _g.clean >= _g.need:
                _g.promote()
        return packet

    return pull


def _interior_pull_boundary(guard):
    def pull(_g=guard):
        try:
            packet = _g.fn()
        except Exception as exc:  # noqa: BLE001
            _g.record(exc)
            raise
        if _g.level:
            _g.clean += 1
            if _g.clean >= _g.need:
                _g.promote()
        return packet

    return pull


class SupervisedOutputPort:
    """A boundary-wrapped push port.  Keeps the reference OutputPort
    surface; ``inner`` is the port it wraps (restored on detach)."""

    __slots__ = ("element", "port", "target", "target_port", "virtual", "push", "push_batch", "inner", "guard")

    def __init__(self, inner, guard, entry):
        self.element = inner.element
        self.port = inner.port
        self.target = inner.target
        self.target_port = inner.target_port
        self.virtual = inner.virtual
        self.inner = inner
        self.guard = guard
        scalar = _entry_push_boundary(guard) if entry else _interior_push_boundary(guard)
        self.push = scalar
        if getattr(inner, "push_batch", None) is not None:
            # Scalarized: one packet at a time through the boundary, so
            # an error never discards the tail of a burst.
            def push_batch(packets, _scalar=scalar):
                for packet in packets:
                    _scalar(packet)

            self.push_batch = push_batch
        else:
            self.push_batch = None


class SupervisedInputPort:
    """A boundary-wrapped pull port."""

    __slots__ = ("element", "port", "source", "source_port", "virtual", "pull", "pull_batch", "inner", "guard")

    def __init__(self, inner, guard, entry):
        self.element = inner.element
        self.port = inner.port
        self.source = inner.source
        self.source_port = inner.source_port
        self.virtual = inner.virtual
        self.inner = inner
        self.guard = guard
        scalar = _entry_pull_boundary(guard) if entry else _interior_pull_boundary(guard)
        self.pull = scalar
        if getattr(inner, "pull_batch", None) is not None:

            def pull_batch(limit, _scalar=scalar):
                packets = []
                while limit > 0:
                    limit -= 1
                    packet = _scalar()
                    if packet is None:
                        break
                    packets.append(packet)
                return packets

            self.pull_batch = pull_batch
        else:
            self.pull_batch = None


class _TaskState:
    __slots__ = ("name", "progress", "stuck", "benched", "watchdog_trips")

    def __init__(self, name):
        self.name = name
        self.progress = None
        self.stuck = 0
        self.benched = 0
        self.watchdog_trips = 0


_PROGRESS_ATTRS = ("received", "sent", "count", "emitted")


class Supervisor:
    """Error boundaries + breaker + watchdog over one router.

    Create, then :meth:`attach`; :meth:`detach` restores the wrapped
    ports exactly (and must run before the router changes mode, which
    swaps port lists wholesale underneath the wrappers — Router.set_mode
    handles that ordering).
    """

    def __init__(self, router, config=None):
        if router.meter is not None:
            raise SupervisorError(
                "cannot supervise a metered router: the meter charges at "
                "reference call sites and boundaries would skew it"
            )
        self.router = router
        self.config = config if config is not None else SupervisorConfig()
        self.guards = {}
        self.attached = False
        self.task_errors = []  # bounded [(task name, error text)]
        self.task_error_count = 0
        self.watchdog_events = []  # bounded [event dict]
        self.chain_error_count = 0
        self._wrapped = []  # (element, "out"/"in", index, supervised port)
        self._task_states = {}

    # -- attach / detach ---------------------------------------------------

    def attach(self):
        from .fastpath import FastInputPort, FastOutputPort

        if self.attached:
            raise SupervisorError("supervisor already attached")
        router = self.router
        engine = router.adaptive
        if engine is not None:
            fastpath = engine.tier1
        elif router.fastpath is not None and router.fastpath.installed:
            fastpath = router.fastpath
        else:
            fastpath = None

        if fastpath is None:
            self._attach_reference()
        else:
            saved = fastpath._saved_ports or {}
            for name, element in router.elements.items():
                ref_outputs, ref_inputs = saved.get(name, (element._output_ports, element._input_ports))
                entry = element.is_task()
                for index, port in enumerate(element._output_ports):
                    if not isinstance(port, FastOutputPort):
                        continue
                    key = ("push", name, index)
                    tiers = [("fast", _dynamic_push(port))]
                    if engine is not None and key in engine.states:
                        static = fastpath.function_for(key)
                        tiers = [
                            (getattr(engine, "tier_label", "adaptive"), _dynamic_push(port)),
                            ("fast", static),
                        ]
                    tiers.append(("reference", ref_outputs[index].push))
                    guard = _ChainGuard(self, key, tiers)
                    self.guards[key] = guard
                    wrapped = SupervisedOutputPort(port, guard, entry)
                    element._output_ports[index] = wrapped
                    self._wrapped.append((element, "out", index, wrapped))
                for index, port in enumerate(element._input_ports):
                    if not isinstance(port, FastInputPort):
                        continue
                    key = ("pull", name, index)
                    tiers = [
                        ("fast", _dynamic_pull(port)),
                        ("reference", ref_inputs[index].pull),
                    ]
                    guard = _ChainGuard(self, key, tiers)
                    self.guards[key] = guard
                    wrapped = SupervisedInputPort(port, guard, entry)
                    element._input_ports[index] = wrapped
                    self._wrapped.append((element, "in", index, wrapped))
        self.attached = True
        router.supervisor = self
        return self

    def _attach_reference(self):
        """Reference mode: containing boundaries on the task elements'
        plain ports — the same packet-drop points the compiled modes
        get, so supervised behaviour stays mode-identical."""
        for name, element in self.router.elements.items():
            if not element.is_task():
                continue
            for index, port in enumerate(element._output_ports):
                if port.target is None:
                    continue
                key = ("push", name, index)
                guard = _ChainGuard(self, key, [("reference", port.push)])
                self.guards[key] = guard
                wrapped = SupervisedOutputPort(port, guard, True)
                element._output_ports[index] = wrapped
                self._wrapped.append((element, "out", index, wrapped))
            for index, port in enumerate(element._input_ports):
                if port.source is None:
                    continue
                key = ("pull", name, index)
                guard = _ChainGuard(self, key, [("reference", port.pull)])
                self.guards[key] = guard
                wrapped = SupervisedInputPort(port, guard, True)
                element._input_ports[index] = wrapped
                self._wrapped.append((element, "in", index, wrapped))

    def detach(self):
        """Unwrap every supervised port (tolerating ports the mode
        machinery already replaced wholesale)."""
        if not self.attached:
            return
        for element, side, index, wrapped in self._wrapped:
            ports = element._output_ports if side == "out" else element._input_ports
            if 0 <= index < len(ports) and ports[index] is wrapped:
                ports[index] = wrapped.inner
        self._wrapped = []
        self.guards = {}
        self.attached = False
        if getattr(self.router, "supervisor", None) is self:
            self.router.supervisor = None

    # -- recording ---------------------------------------------------------

    def _note_chain_error(self, guard, exc):
        # Per-chain detail lives on the guard; only the total is global.
        self.chain_error_count += 1

    def on_task_error(self, task, exc):
        """A task-level boundary catch (reference backstop, or an error
        that escaped every chain boundary)."""
        self.task_error_count += 1
        if len(self.task_errors) < self.config.max_records:
            self.task_errors.append((task.name, "%s: %s" % (type(exc).__name__, exc)))

    # -- watchdog ----------------------------------------------------------

    def task_benched(self, task):
        """True while the watchdog has this task benched; consumes one
        cooldown pass."""
        state = self._task_states.get(task.name)
        if state is None or state.benched <= 0:
            return False
        state.benched -= 1
        return True

    def note_task(self, task, worked):
        """Progress bookkeeping after one run_task call: a task that
        claims work while its counters stay flat is stuck."""
        state = self._task_states.get(task.name)
        if state is None:
            state = self._task_states[task.name] = _TaskState(task.name)
        progress = tuple(getattr(task, attr, None) for attr in _PROGRESS_ATTRS)
        if worked and progress == state.progress and any(v is not None for v in progress):
            state.stuck += 1
            if state.stuck >= self.config.watchdog_limit:
                state.stuck = 0
                state.benched = self.config.watchdog_cooldown
                state.watchdog_trips += 1
                if len(self.watchdog_events) < self.config.max_records:
                    self.watchdog_events.append(
                        {
                            "task": task.name,
                            "after_passes": self.config.watchdog_limit,
                            "benched_for": self.config.watchdog_cooldown,
                        }
                    )
        else:
            state.stuck = 0
        state.progress = progress

    # -- observability -----------------------------------------------------

    def report(self):
        return ResilienceReport(self)


def _dynamic_push(port):
    """The top-tier callable: read the port's live ``push`` slot every
    call, so the adaptive engine's dispatcher installs, promotions, and
    deopts all stay in effect under the boundary."""

    def push(packet, _port=port):
        _port.push(packet)

    return push


def _dynamic_pull(port):
    def pull(_port=port):
        return _port.pull()

    return pull


class ResilienceReport:
    """JSON-safe snapshot of supervised execution: per-chain tiers,
    demotions, breaker states, watchdog and task-error history, plus
    the fault injector's counters when one is attached."""

    def __init__(self, supervisor):
        router = supervisor.router
        self.mode = router.mode
        self.config = supervisor.config.as_dict()
        self.chains = {}
        open_breakers = demotions = repromotions = 0
        for key, guard in sorted(supervisor.guards.items()):
            label = "%s %s[%d]" % key
            self.chains[label] = {
                "tier": guard.tier,
                "level": guard.level,
                "tiers": [name for name, _fn in guard.tiers],
                "errors": guard.errors,
                "demotions": guard.demotions,
                "repromotions": guard.repromotions,
                "breaker": guard.breaker,
                "backoff_need": guard.need,
                "last_error": guard.last_error,
            }
            demotions += guard.demotions
            repromotions += guard.repromotions
            open_breakers += guard.breaker == "open"
        self.totals = {
            "chains": len(self.chains),
            "chain_errors": supervisor.chain_error_count,
            "demotions": demotions,
            "repromotions": repromotions,
            "open_breakers": open_breakers,
            "task_errors": supervisor.task_error_count,
            "watchdog_trips": sum(
                state.watchdog_trips for state in supervisor._task_states.values()
            ),
        }
        self.task_errors = list(supervisor.task_errors)
        self.watchdog_events = list(supervisor.watchdog_events)
        injector = getattr(router, "fault_injector", None)
        self.faults = injector.fault_counts() if injector is not None else None

    def as_dict(self):
        """JSON-safe summary with deterministic ordering — keys sorted,
        chains in sorted-label order — so chaos/CI artifacts diff
        cleanly (the PR 8 codegen-cache report convention)."""
        data = {
            "chains": {
                label: {
                    key: self.chains[label][key] for key in sorted(self.chains[label])
                }
                for label in sorted(self.chains)
            },
            "config": {key: self.config[key] for key in sorted(self.config)},
            "faults": self.faults,
            "mode": self.mode,
            "task_errors": [list(item) for item in self.task_errors],
            "totals": {key: self.totals[key] for key in sorted(self.totals)},
            "watchdog_events": self.watchdog_events,
        }
        return {key: data[key] for key in sorted(data)}

    def to_json(self):
        return json.dumps(self.as_dict(), indent=2, sort_keys=True, default=str)

    def format(self):
        totals = self.totals
        lines = [
            "supervisor: %(chains)d chain(s), %(chain_errors)d chain error(s), "
            "%(demotions)d demotion(s), %(repromotions)d re-promotion(s), "
            "%(open_breakers)d open breaker(s)" % totals,
            "  task errors: %(task_errors)d, watchdog trips: %(watchdog_trips)d" % totals,
        ]
        for label, info in self.chains.items():
            if not info["errors"] and not info["level"]:
                continue
            lines.append(
                "  %-40s tier %s (%s), %d error(s), last: %s"
                % (label, info["tier"], info["breaker"], info["errors"], info["last_error"])
            )
        if self.faults is not None:
            lines.append(
                "  injected: %d cache invalidation(s), %d cache corruption(s)"
                % (self.faults["cache_invalidations"], self.faults["cache_corruptions"])
            )
            for name, info in self.faults["elements"].items():
                lines.append(
                    "  fault %-32s %d call(s), %d error(s) fired"
                    % (name, info["calls"], info["errors_fired"])
                )
        return "\n".join(lines)
