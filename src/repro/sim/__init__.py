"""Hardware simulation: the calibrated cycle-cost model, branch-target
buffer, Tulip NIC and PCI bus models, and three rate engines (fluid
equilibrium, time-stepped, discrete-event) plus the evaluation testbed."""

from . import cost, des, faults, timestep
from .cpu import BranchTargetBuffer, CPUReport, CycleMeter, uses_simple_action
from .faults import FaultError, FaultInjector, FaultPlan, FaultyDevice, InjectedFault
from .fluid import Outcomes, forwarding_curve, mlffr, outcome_curve, solve
from .nic import TulipNIC
from .pci import PCIBus
from .platforms import ALL_PLATFORMS, P0, P1, P2, P3, Platform
from .testbed import VARIANT_LABELS, VARIANTS, Testbed, figure9_reports

__all__ = [
    "cost",
    "des",
    "faults",
    "timestep",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultyDevice",
    "InjectedFault",
    "BranchTargetBuffer",
    "CPUReport",
    "CycleMeter",
    "uses_simple_action",
    "Outcomes",
    "forwarding_curve",
    "mlffr",
    "outcome_curve",
    "solve",
    "TulipNIC",
    "PCIBus",
    "ALL_PLATFORMS",
    "P0",
    "P1",
    "P2",
    "P3",
    "Platform",
    "VARIANT_LABELS",
    "VARIANTS",
    "Testbed",
    "figure9_reports",
]
