"""The calibrated cycle-cost model.

All constants describe the paper's reference platform, a 700 MHz Intel
Pentium III (§8.1), in CPU cycles.  They come from the paper's own
micro-measurements where available:

- a correctly predicted virtual (indirect) call costs about 7 cycles; a
  mispredicted one "dozens" (§3) — we use 29;
- a fetch from main memory takes about 112 ns (§8.2) = 78 cycles at
  700 MHz;
- the unoptimized forwarding path totals 1160 cycles = 1657 ns (§3, §8.2).

Per-element work costs are set *once*, so that the unoptimized router
reproduces Figure 8; every optimized number must then emerge from the
mechanics (removed virtual calls, merged elements, compiled trees) —
they are never set directly.  ``tests/sim/test_calibration.py`` asserts
the emergent values stay within tolerance of the paper's.
"""

from __future__ import annotations

# -- micro-architecture ------------------------------------------------------

CYCLES_VIRTUAL_CALL_PREDICTED = 7
CYCLES_VIRTUAL_CALL_MISPREDICTED = 29
CYCLES_DIRECT_CALL = 2
CYCLES_MEMORY_FETCH = 78  # 112 ns at 700 MHz

# Entering an element's packet handler: prologue, port bookkeeping,
# annotation access.  Devirtualized classes inline most of this
# ("click-devirtualize inlines several other method calls as well").
CYCLES_ELEMENT_ENTRY = 10
CYCLES_ELEMENT_ENTRY_DEVIRTUALIZED = 8

# The polling scheduler's per-packet share of task switching.
CYCLES_SCHEDULER_PER_PACKET = 100

# Decision-tree classification: the interpreted walk touches one Expr
# record in memory per step; the compiled form is straight-line compares
# with inlined constants (§4).
CYCLES_CLASSIFIER_STEP = 18
CYCLES_FAST_CLASSIFIER_STEP = 6

# Per-packet cache behaviour (§8.2): of the four misses, two (Ethernet +
# IP header reads) land in the forwarding path; the receive-descriptor
# and transmit-cleanup misses are part of the device interactions below.
FORWARDING_CACHE_MISSES = 2

# -- per-class work costs (cycles), forwarding-path elements -----------------
# Chosen so the 16-element path of Figure 1 sums to ~1160 cycles with the
# entry/transfer/cache costs above.

ELEMENT_WORK_CYCLES = {
    "Classifier": 12,  # + CYCLES_CLASSIFIER_STEP per tree step
    "IPClassifier": 12,
    "IPFilter": 12,
    "FastClassifier": 8,  # + CYCLES_FAST_CLASSIFIER_STEP per step
    "Paint": 8,
    "Strip": 8,
    "Unstrip": 8,
    "CheckIPHeader": 110,  # full header checksum dominates
    "GetIPAddress": 10,
    "LookupIPRoute": 60,
    "StaticIPLookup": 60,
    "RadixIPLookup": 70,
    "DropBroadcasts": 12,
    "CheckPaint": 16,
    "PaintTee": 16,
    "IPGWOptions": 20,
    "FixIPSrc": 12,
    "DecIPTTL": 40,  # incremental checksum update
    "IPFragmenter": 20,  # MTU check (fragmentation itself is rare)
    "ARPQuerier": 70,  # table lookup + Ethernet encapsulation
    "ARPResponder": 40,
    "EtherEncap": 32,  # static encapsulation: ARPQuerier minus the lookup
    "Queue": 35,  # per push or pull
    "Discard": 4,
    "Counter": 10,
    "Tee": 12,
    "StaticSwitch": 6,
    "Switch": 6,
    "Idle": 2,
    "Null": 4,
    "RED": 40,
    "Align": 50,  # data copy when realigning
    "Unqueue": 16,
    "RouterLink": 16,
    "InfiniteSource": 20,
    "RatedSource": 24,
    "RandomSample": 14,
    "RoundRobinSched": 14,
    "PrioSched": 12,
    "PaintSwitch": 8,
    "CheckLength": 8,
    "SetIPChecksum": 90,
    "SetUDPChecksum": 110,
    "UDPIPEncap": 60,
    "ICMPPingResponder": 140,
    "FrontDropQueue": 35,
    "Shaper": 18,
    "TimedSource": 20,
    "StripToNetworkHeader": 8,
    "HostEtherFilter": 18,
    "ICMPError": 300,  # builds a fresh packet; off the fast path
    "EnsureEther": 16,
    "FromDump": 60,
    "ToDump": 80,
    "AlignmentInfo": 0,
    "ScheduleInfo": 0,
    # Combination elements: the same work as the chains they replace,
    # minus the repeated header fetches, bounds re-checks, and
    # per-element annotation handling the merge makes unnecessary.
    "IPInputCombo": 130,  # Paint+Strip+CheckIPHeader+GetIPAddress = 136 alone
    "IPOutputCombo": 95,  # DropBroadcasts..DecIPTTL+frag check = 120 alone
    # Device interactions (Figure 8): talking to the Tulip's DMA rings,
    # including the descriptor-fetch / transmit-cleanup cache misses.
    "PollDevice": 0,  # charged via the rx_device dynamic cost below
    "FromDevice": 0,
    "ToDevice": 0,
}

# Device-interaction costs per packet (Figure 8: 701 ns RX, 547 ns TX at
# 700 MHz -> 491 and 383 cycles).
CYCLES_RX_DEVICE = 484
CYCLES_TX_DEVICE = 375

# Dynamic (per-event) costs reported through Element.charge().
DYNAMIC_COST_CYCLES = {
    "classifier_step": CYCLES_CLASSIFIER_STEP,
    "fast_classifier_step": CYCLES_FAST_CLASSIFIER_STEP,
    "rx_device": CYCLES_RX_DEVICE,
    "tx_device": CYCLES_TX_DEVICE,
    "queue_drop": 20,
}

# Performance-counter measurement overhead (§8.2): the measured 2905 ns
# implies 344 kpps yet 357 kpps were observed; true costs are the
# measured values scaled by this factor.
MEASUREMENT_OVERHEAD_FACTOR = 344.0 / 357.0

# Instructions retired per *busy* cycle (cycles not stalled on memory
# fetches or branch mispredictions) — the Pentium III sustains well
# under its 3-wide decode on this kind of code.  §8.2: 988 instructions
# retired per packet with all optimizers on.
INSTRUCTIONS_PER_BUSY_CYCLE = 1.6


def work_cycles(class_name):
    """Per-packet work cost for an element class.  Generated classes map
    to their families (FastClassifier@@x, Devirtualize@@y)."""
    if class_name in ELEMENT_WORK_CYCLES:
        return ELEMENT_WORK_CYCLES[class_name]
    if class_name.startswith("FastClassifier@@"):
        return ELEMENT_WORK_CYCLES["FastClassifier"]
    if class_name.startswith("Devirtualize@@"):
        # The work is the base class's; entry overhead handles the rest.
        return None  # resolved by the meter from the instance's bases
    return 10  # unknown classes: nominal small cost


def base_class_name(element):
    """The cost-model class for an element instance: walk generated
    subclasses back to a known family."""
    for cls in type(element).__mro__:
        name = getattr(cls, "class_name", None)
        if name is None:
            continue
        if name in ELEMENT_WORK_CYCLES:
            return name
        if name.startswith("FastClassifier@@") or name == "FastClassifierBase":
            return "FastClassifier"
    return getattr(element, "class_name", "Element")
