"""The CPU cost meter: cycles, branch prediction, caches.

A :class:`CycleMeter` attaches to a runtime Router (``Router(graph,
meter=...)``) and charges cycles as the *real element graph* processes
packets.  Costs are attributed to the paper's three categories
(Figure 8): receiving device interactions, the Click forwarding path,
and transmitting device interactions.

Branch prediction follows §3: the Pentium caches indirect-branch targets
per call site.  A packet transfer's call site is the transferring
element's *class* and port — so two same-class elements share a site
(Figure 2), and the predicted target is the receiving element's class
(its ``push`` entry in the vtable).  Elements written with the
``simple_action`` sugar share one further dispatch site across *all*
such classes (footnote 1: simple_action "can halve their code size, but
confuses the predictor"), which is why a chain of distinct small
elements mispredicts on nearly every hop — and why click-xform's combos
and click-devirtualize's specialized classes help beyond saved call
overhead.
"""

from __future__ import annotations

from ..elements.element import Element, InputPort
from . import cost


class BranchTargetBuffer:
    """Per-call-site last-target cache."""

    def __init__(self):
        self._targets = {}
        self.hits = 0
        self.misses = 0

    def access(self, site, target):
        """Record a branch at ``site`` to ``target``; True if predicted."""
        predicted = self._targets.get(site)
        self._targets[site] = target
        if predicted == target:
            self.hits += 1
            return True
        self.misses += 1
        return False


def uses_simple_action(element):
    """True if the element class relies on the shared simple_action
    dispatch: it overrides neither push nor pull, so packets pass
    through the one Element::push/pull body shared by every
    simple_action class."""
    cls = type(element)
    return cls.push is Element.push and cls.pull is Element.pull


class CategoryTotals:
    """Cycle totals per Figure 8 category."""

    __slots__ = ("rx_device", "forwarding", "tx_device")

    def __init__(self):
        self.rx_device = 0
        self.forwarding = 0
        self.tx_device = 0

    @property
    def total(self):
        return self.rx_device + self.forwarding + self.tx_device


class CycleMeter:
    """The meter interface the runtime Router calls."""

    def __init__(self):
        self.totals = CategoryTotals()
        self.btb = BranchTargetBuffer()
        self.transfers = 0
        self.direct_transfers = 0
        self.element_entries = 0
        self.dynamic = {}
        self._packets_seen = 0
        # Cycles the CPU spends stalled rather than retiring
        # instructions: memory fetches and misprediction recovery.
        self.stall_cycles = 0

    # -- category attribution -------------------------------------------------

    @staticmethod
    def _category(element):
        name = cost.base_class_name(element)
        if name in ("PollDevice", "FromDevice"):
            return "rx_device"
        if name == "ToDevice":
            return "tx_device"
        return "forwarding"

    def _charge(self, element, cycles):
        category = self._category(element)
        setattr(self.totals, category, getattr(self.totals, category) + cycles)

    # -- meter interface --------------------------------------------------------

    def on_transfer(self, port):
        """A packet transfer through ``port`` (push or pull)."""
        self.transfers += 1
        element = port.element
        if not port.virtual:
            self.direct_transfers += 1
            self._charge(element, cost.CYCLES_DIRECT_CALL)
            return
        if isinstance(port, InputPort):
            site = (type(element).__name__, "pull", port.port)
            target = type(port.source).__name__
        else:
            site = (type(element).__name__, "push", port.port)
            target = type(port.target).__name__
        predicted = self.btb.access(site, target)
        if not predicted:
            self.stall_cycles += (
                cost.CYCLES_VIRTUAL_CALL_MISPREDICTED - cost.CYCLES_VIRTUAL_CALL_PREDICTED
            )
        self._charge(
            element,
            cost.CYCLES_VIRTUAL_CALL_PREDICTED
            if predicted
            else cost.CYCLES_VIRTUAL_CALL_MISPREDICTED,
        )

    def on_element_work(self, element):
        """A packet entered ``element``'s handler."""
        self.element_entries += 1
        devirtualized = getattr(element, "devirtualized", False)
        entry = (
            cost.CYCLES_ELEMENT_ENTRY_DEVIRTUALIZED
            if devirtualized
            else cost.CYCLES_ELEMENT_ENTRY
        )
        work = cost.work_cycles(getattr(element, "class_name", ""))
        if work is None:
            work = cost.ELEMENT_WORK_CYCLES.get(cost.base_class_name(element), 10)
        self._charge(element, entry + work)
        # The shared simple_action dispatch: one more indirect branch,
        # through a call site shared by every simple_action class.
        if not devirtualized and uses_simple_action(element):
            predicted = self.btb.access(("Element::simple_action",), type(element).__name__)
            if not predicted:
                self.stall_cycles += (
                    cost.CYCLES_VIRTUAL_CALL_MISPREDICTED - cost.CYCLES_VIRTUAL_CALL_PREDICTED
                )
            self._charge(
                element,
                cost.CYCLES_VIRTUAL_CALL_PREDICTED
                if predicted
                else cost.CYCLES_VIRTUAL_CALL_MISPREDICTED,
            )

    def _indirect_branch(self, element, site, target, count):
        """Charge ``count`` consecutive indirect branches at one call
        site to one target.  The first access consults the BTB; the
        rest ride its prediction (the site's last target is now
        ``target``), which is exactly how batching helps a real BTB."""
        predicted = self.btb.access(site, target)
        if not predicted:
            self.stall_cycles += (
                cost.CYCLES_VIRTUAL_CALL_MISPREDICTED - cost.CYCLES_VIRTUAL_CALL_PREDICTED
            )
        first = (
            cost.CYCLES_VIRTUAL_CALL_PREDICTED
            if predicted
            else cost.CYCLES_VIRTUAL_CALL_MISPREDICTED
        )
        if count > 1:
            self.btb.hits += count - 1
        self._charge(element, first + (count - 1) * cost.CYCLES_VIRTUAL_CALL_PREDICTED)

    def on_chain(self, stages, counts):
        """Reconcile one compiled chain's aggregate charges (fast mode).

        ``stages`` is the tuple of
        :class:`~repro.runtime.fastpath.ChainStage` profiles compiled
        into the chain; ``counts[i]`` is how many packets of the batch
        reached stage ``i``.  Per stage this charges exactly what
        :meth:`on_transfer` plus :meth:`on_element_work` would have —
        for a single packet (``counts`` all 0/1) the totals match the
        reference interpreter's to the cycle; for a batch, each site is
        consulted once and the remaining packets ride the prediction.
        """
        for stage, count in zip(stages, counts):
            if not count:
                continue
            # The transfer (on_transfer's charge, batched).
            self.transfers += count
            source = stage.from_element
            if not stage.virtual:
                self.direct_transfers += count
                self._charge(source, cost.CYCLES_DIRECT_CALL * count)
            else:
                self._indirect_branch(source, stage.site, stage.target_name, count)
            # The receiving element's handler entry (on_element_work).
            element = stage.to_element
            self.element_entries += count
            devirtualized = getattr(element, "devirtualized", False)
            entry = (
                cost.CYCLES_ELEMENT_ENTRY_DEVIRTUALIZED
                if devirtualized
                else cost.CYCLES_ELEMENT_ENTRY
            )
            work = cost.work_cycles(getattr(element, "class_name", ""))
            if work is None:
                work = cost.ELEMENT_WORK_CYCLES.get(cost.base_class_name(element), 10)
            self._charge(element, (entry + work) * count)
            if not devirtualized and stage.uses_simple_action:
                self._indirect_branch(
                    element, ("Element::simple_action",), stage.target_name, count
                )

    def on_dynamic_work(self, element, kind, amount):
        cycles = cost.DYNAMIC_COST_CYCLES.get(kind, 0) * amount
        self.dynamic[kind] = self.dynamic.get(kind, 0) + amount
        self._charge(element, cycles)
        if kind == "rx_device":
            # Per-packet costs that belong to no single element: the
            # forwarding path's two header-fetch cache misses and the
            # scheduler's per-packet share.
            self.totals.forwarding += (
                cost.FORWARDING_CACHE_MISSES * cost.CYCLES_MEMORY_FETCH
                + cost.CYCLES_SCHEDULER_PER_PACKET
            )
            self.stall_cycles += cost.FORWARDING_CACHE_MISSES * cost.CYCLES_MEMORY_FETCH
            self._packets_seen += 1

    def on_task(self, element):
        """A scheduler slot; per-packet scheduling is charged via
        rx_device above, so idle polls cost nothing here."""

    # -- merging (the sharded data plane) -----------------------------------------

    def summary(self):
        """A flat snapshot of every monotonic count this meter holds —
        the unit the sharded data plane reconciles: per-shard meters
        snapshot, subtract, and :meth:`absorb` deltas into one parent
        meter."""
        return {
            "rx_device": self.totals.rx_device,
            "forwarding": self.totals.forwarding,
            "tx_device": self.totals.tx_device,
            "btb_hits": self.btb.hits,
            "btb_misses": self.btb.misses,
            "transfers": self.transfers,
            "direct_transfers": self.direct_transfers,
            "element_entries": self.element_entries,
            "packets_seen": self._packets_seen,
            "stall_cycles": self.stall_cycles,
            "dynamic": dict(self.dynamic),
        }

    def absorb(self, summary):
        """Merge another meter's :meth:`summary` (or a delta of two
        summaries) into this one.  Pure count addition — associative
        and commutative, so shards can be absorbed in any order and any
        grouping and the totals agree.  The BTB's *prediction state*
        (last target per site) deliberately does not merge: each shard
        predicts against its own history, exactly as per-core BTBs do.
        """
        self.totals.rx_device += summary.get("rx_device", 0)
        self.totals.forwarding += summary.get("forwarding", 0)
        self.totals.tx_device += summary.get("tx_device", 0)
        self.btb.hits += summary.get("btb_hits", 0)
        self.btb.misses += summary.get("btb_misses", 0)
        self.transfers += summary.get("transfers", 0)
        self.direct_transfers += summary.get("direct_transfers", 0)
        self.element_entries += summary.get("element_entries", 0)
        self._packets_seen += summary.get("packets_seen", 0)
        self.stall_cycles += summary.get("stall_cycles", 0)
        for kind, amount in summary.get("dynamic", {}).items():
            self.dynamic[kind] = self.dynamic.get(kind, 0) + amount
        return self

    # -- reporting ----------------------------------------------------------------

    @property
    def mispredicts(self):
        return self.btb.misses

    def report(self, packets, clock_mhz=700.0):
        """Per-packet nanosecond costs over ``packets`` forwarded."""
        if packets <= 0:
            raise ValueError("no packets forwarded")
        scale = 1000.0 / clock_mhz / packets  # cycles -> ns/packet
        busy = max(0, self.totals.forwarding - self.stall_cycles)
        return CPUReport(
            rx_device_ns=self.totals.rx_device * scale,
            forwarding_ns=self.totals.forwarding * scale,
            tx_device_ns=self.totals.tx_device * scale,
            transfers_per_packet=self.transfers / packets,
            mispredicts_per_packet=self.btb.misses / packets,
            element_entries_per_packet=self.element_entries / packets,
            instructions_per_packet=busy * cost.INSTRUCTIONS_PER_BUSY_CYCLE / packets,
        )


class CPUReport:
    """Figure 8-style cost breakdown (measured values, i.e. including
    the performance-counter overhead the paper describes)."""

    def __init__(
        self,
        rx_device_ns,
        forwarding_ns,
        tx_device_ns,
        transfers_per_packet=0.0,
        mispredicts_per_packet=0.0,
        element_entries_per_packet=0.0,
        instructions_per_packet=0.0,
    ):
        self.rx_device_ns = rx_device_ns
        self.forwarding_ns = forwarding_ns
        self.tx_device_ns = tx_device_ns
        self.transfers_per_packet = transfers_per_packet
        self.mispredicts_per_packet = mispredicts_per_packet
        self.element_entries_per_packet = element_entries_per_packet
        self.instructions_per_packet = instructions_per_packet

    @property
    def total_ns(self):
        return self.rx_device_ns + self.forwarding_ns + self.tx_device_ns

    @property
    def true_total_ns(self):
        """Total with the measurement overhead removed (§8.2's observed
        vs implied rate discrepancy)."""
        return self.total_ns * cost.MEASUREMENT_OVERHEAD_FACTOR

    def __repr__(self):
        return "CPUReport(rx=%.0f fwd=%.0f tx=%.0f total=%.0f ns/packet)" % (
            self.rx_device_ns,
            self.forwarding_ns,
            self.tx_device_ns,
            self.total_ns,
        )
