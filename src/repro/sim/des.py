"""Discrete-event simulation of the forwarding testbed.

The third rate engine, finest-grained: every packet is an individual
entity moving through first-come-first-served resources — the shared
PCI bus (byte service times), the CPU (the configuration's per-packet
cost), and the transmit wires — with the Tulip FIFO/ring mechanics of
§8.4 at packet granularity.  Beyond the outcome rates the fluid and
time-stepped engines give, this one produces **per-packet latency**
(wire-in to wire-out), which rises sharply as the router approaches its
MLFFR — the queueing behaviour behind the paper's "slow software means
dropped packets".

Event-driven with a heap: arrivals claim the bus and CPU in time order;
each packet's transmit side runs as a separate deferred event so a
backlogged CPU cannot reserve the bus ahead of earlier RX traffic.
Deterministic arrivals (evenly spaced per port, ports phase-shifted)
make runs reproducible.
"""

from __future__ import annotations

import heapq

from .fluid import MISSED_FRAME_BYTES, Outcomes
from .nic import DESCRIPTOR_BYTES, FIFO_FRAMES, FRAME_OVERHEAD_BYTES, RX_RING_SIZE

_CLICK_QUEUE_CAPACITY = 64


class _Resource:
    """A FCFS single server: ``acquire(t, service)`` returns the
    completion time."""

    __slots__ = ("free_at", "busy_time")

    def __init__(self):
        self.free_at = 0.0
        self.busy_time = 0.0

    def acquire(self, now, service_seconds):
        start = max(now, self.free_at)
        self.free_at = start + service_seconds
        self.busy_time += service_seconds
        return self.free_at


class DESTestbed:
    """One configuration at one offered load, simulated packet by
    packet."""

    def __init__(self, platform, cpu_ns_per_packet, frame_bytes=64):
        self.platform = platform
        self.cpu_seconds = cpu_ns_per_packet * 1e-9
        self.frame_bytes = frame_bytes
        self.dma_bytes = frame_bytes + DESCRIPTOR_BYTES + FRAME_OVERHEAD_BYTES
        self.bus_seconds_per_byte = 1.0 / platform.pci_bytes_per_sec
        self.ports = max(1, platform.nic_ports // 2)

        self.bus = _Resource()
        self.cpu = _Resource()
        self.wires = [_Resource() for _ in range(self.ports)]

        # Per-port occupancy, tracked as lists of future departure
        # times (a slot is occupied until its packet moves on).
        self.fifo_departure = [[] for _ in range(self.ports)]
        self.ring_departure = [[] for _ in range(self.ports)]
        self.queue_departure = [[] for _ in range(self.ports)]

        # Outcome counters and latency samples.
        self.sent = 0
        self.missed = 0
        self.fifo_overflows = 0
        self.queue_drops = 0
        self.latencies = []

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _occupancy(departures, now):
        while departures and departures[0] <= now:
            departures.pop(0)
        return len(departures)

    # -- pipeline stages ------------------------------------------------------------

    def _receive(self, port, now):
        """The RX side: FIFO admission, descriptor check, DMA, CPU.
        Returns the (out_port, cpu_done, arrival) for the TX stage, or
        None if the packet was dropped."""
        if self._occupancy(self.fifo_departure[port], now) >= FIFO_FRAMES:
            self.fifo_overflows += 1
            return None
        if self._occupancy(self.ring_departure[port], now) >= RX_RING_SIZE:
            check_done = self.bus.acquire(now, MISSED_FRAME_BYTES * self.bus_seconds_per_byte)
            self.fifo_departure[port].append(check_done)
            self.missed += 1
            return None
        in_ring = self.bus.acquire(now, self.dma_bytes * self.bus_seconds_per_byte)
        self.fifo_departure[port].append(in_ring)
        cpu_done = self.cpu.acquire(in_ring, self.cpu_seconds)
        # The ring slot frees when the CPU takes the packet.
        self.ring_departure[port].append(cpu_done - self.cpu_seconds)
        self.ring_departure[port].sort()
        return ((port + 1) % self.ports, cpu_done, now)

    def _transmit(self, out_port, now, arrival):
        """The TX side, run as its own event at cpu-completion time."""
        if self._occupancy(self.queue_departure[out_port], now) >= _CLICK_QUEUE_CAPACITY:
            self.queue_drops += 1
            return
        tx_ready = self.bus.acquire(now, self.dma_bytes * self.bus_seconds_per_byte)
        self.queue_departure[out_port].append(tx_ready)
        wire_done = self.wires[out_port].acquire(tx_ready, 1.0 / self.platform.line_rate_pps)
        self.sent += 1
        self.latencies.append(wire_done - arrival)

    # -- driving -------------------------------------------------------------------

    def run(self, input_rate_pps, duration_s):
        """Offer ``input_rate_pps`` (split across ports) for
        ``duration_s``; returns (Outcomes, latency list)."""
        per_port = input_rate_pps / self.ports
        interval = 1.0 / per_port if per_port > 0 else float("inf")
        events = []
        sequence = 0
        for port in range(self.ports):
            phase = interval * port / self.ports
            heapq.heappush(events, (phase, sequence, "arrival", port, 0.0))
            sequence += 1
        while events:
            time, _, kind, port, arrival = heapq.heappop(events)
            if time >= duration_s:
                break
            if kind == "arrival":
                result = self._receive(port, time)
                if result is not None:
                    out_port, cpu_done, admit_time = result
                    sequence += 1
                    heapq.heappush(
                        events, (cpu_done, sequence, "tx", out_port, admit_time)
                    )
                sequence += 1
                heapq.heappush(events, (time + interval, sequence, "arrival", port, 0.0))
            else:
                self._transmit(port, time, arrival)
        outcomes = Outcomes(
            input_rate=input_rate_pps,
            sent=self.sent / duration_s,
            missed_frames=self.missed / duration_s,
            fifo_overflows=self.fifo_overflows / duration_s,
            queue_drops=self.queue_drops / duration_s,
        )
        return outcomes, self.latencies


def simulate(input_rate_pps, cpu_ns_per_packet, platform, duration_s=0.05):
    """One operating point; returns the Outcomes."""
    outcomes, _ = DESTestbed(platform, cpu_ns_per_packet).run(input_rate_pps, duration_s)
    return outcomes


def latency_percentiles(input_rate_pps, cpu_ns_per_packet, platform, duration_s=0.05):
    """(p50, p95, p99) per-packet forwarding latency in microseconds."""
    _, latencies = DESTestbed(platform, cpu_ns_per_packet).run(input_rate_pps, duration_s)
    if not latencies:
        return (0.0, 0.0, 0.0)
    ordered = sorted(latencies)

    def pct(fraction):
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index] * 1e6

    return (pct(0.50), pct(0.95), pct(0.99))
