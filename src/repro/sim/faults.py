"""Deterministic, seeded fault injection for chaos testing the runtime.

A :class:`FaultPlan` is a JSON-serializable schedule of faults; a
:class:`FaultInjector` applies one plan to a live router and its
devices.  Fault *time* comes in two deterministic clocks so that a plan
replays identically under every execution mode:

- **ticks** — the injector's :meth:`FaultInjector.tick` counter, which
  the chaos harness advances once per ``["run", N]`` trace event.
  Device flaps/failures and codegen-cache faults are tick-based: the
  same scheduler passes see the same hardware state in every mode.
- **counts** — per-object event counters (frames dequeued from one
  device, packets entering one element).  Frame corruption and injected
  element exceptions are count-based because every execution mode
  processes the same packets in the same per-chain order, so "the 12th
  packet through ``chk``" names the same packet whether the chain is
  interpreted, compiled, batched, or adaptively recompiled.

The element fault is installed as an *instance-attribute* wrapper around
the element's processing entry point (``fast_action``, ``simple_action``
or ``push``) before the fast path compiles, so both the reference
interpreter and generated code call through it.  Wrapped elements are
flagged ``_fault_wrapped`` (the chain compiler skips specializations
that would bypass an instance attribute) and the router is flagged
``_fault_uncacheable`` (the codegen cache must not replay a clean
specialized entry onto a faulted router, nor store a faulted compile).

Faults never break the differential contract on their own: a supervised
router drops exactly the packets whose processing raised, in every
mode.  Pair the injector with :class:`repro.runtime.supervisor` (see
``repro.verify.chaos``) for the crash-free guarantee.
"""

from __future__ import annotations

import json
import random

__all__ = ["FAULT_KINDS", "FaultError", "FaultInjector", "FaultPlan", "FaultyDevice", "InjectedFault"]

#: kind -> (required fields, optional fields with defaults)
FAULT_KINDS = {
    "device_flap": (("device", "at", "ticks"), {}),
    "device_fail": (("device", "at"), {}),
    "corrupt_frame": (("device", "after"), {"count": 1, "offset": 0, "xor": 0xFF}),
    "element_error": (("element", "after"), {"count": 1, "message": None}),
    "cache_corrupt": (("at",), {}),
    "cache_invalidate": (("at",), {}),
    "worker_crash": (("at",), {"worker": 0}),
    # Self-healing faults (the recovery manager, not the injector, does
    # the recovering).  ``worker_kill`` with phase="commit" lands inside
    # the ``at``-th two-phase update's commit window instead of at a
    # tick; ``worker_poison`` arms a frame (hex) whose processing kills
    # whichever worker touches it, until quarantine strips it.
    "worker_kill": (("at",), {"worker": 0, "phase": "tick"}),
    "worker_hang": (("at",), {"worker": 0, "seconds": 30.0}),
    "worker_poison": (("at", "frame"), {}),
}


class FaultError(ValueError):
    """A malformed fault plan."""


class InjectedFault(RuntimeError):
    """The exception an ``element_error`` fault raises inside an
    element's packet handler."""

    def __init__(self, element_name, sequence, message=None):
        self.element_name = element_name
        self.sequence = sequence
        text = message or "injected fault #%d in %s" % (sequence, element_name)
        super().__init__(text)


class FaultPlan:
    """An ordered, JSON-round-trippable list of fault dicts."""

    def __init__(self, faults=(), seed=None, name="fault-plan"):
        self.faults = [dict(fault) for fault in faults]
        self.seed = seed
        self.name = name
        self.validate()

    def validate(self):
        for index, fault in enumerate(self.faults):
            kind = fault.get("kind")
            if kind not in FAULT_KINDS:
                raise FaultError(
                    "fault %d: unknown kind %r (choose from %s)"
                    % (index, kind, ", ".join(sorted(FAULT_KINDS)))
                )
            required, optional = FAULT_KINDS[kind]
            for field in required:
                if field not in fault:
                    raise FaultError("fault %d (%s): missing field %r" % (index, kind, field))
            for field, value in fault.items():
                if field == "kind":
                    continue
                if field not in required and field not in optional:
                    raise FaultError("fault %d (%s): unknown field %r" % (index, kind, field))
                if field in ("at", "ticks", "after", "count", "offset", "xor", "worker"):
                    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                        raise FaultError(
                            "fault %d (%s): field %r must be a non-negative "
                            "integer, not %r" % (index, kind, field, value)
                        )
                elif field == "phase":
                    if value not in ("tick", "commit"):
                        raise FaultError(
                            "fault %d (%s): phase must be 'tick' or 'commit', "
                            "not %r" % (index, kind, value)
                        )
                elif field == "seconds":
                    if (
                        not isinstance(value, (int, float))
                        or isinstance(value, bool)
                        or not value > 0
                    ):
                        raise FaultError(
                            "fault %d (%s): seconds must be a positive number, "
                            "not %r" % (index, kind, value)
                        )
                elif field == "frame":
                    bad = not isinstance(value, str) or not value
                    if not bad:
                        try:
                            bytes.fromhex(value)
                        except ValueError:
                            bad = True
                    if bad:
                        raise FaultError(
                            "fault %d (%s): frame must be a non-empty hex "
                            "string, not %r" % (index, kind, value)
                        )
        return self

    # -- serialization -----------------------------------------------------

    def to_dict(self):
        return {"name": self.name, "seed": self.seed, "faults": [dict(f) for f in self.faults]}

    @classmethod
    def from_dict(cls, data):
        return cls(
            faults=data.get("faults", ()),
            seed=data.get("seed"),
            name=data.get("name", "fault-plan"),
        )

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text, source="<json>"):
        """Parse and *validate* a plan, attributing every failure to
        ``source`` — a malformed plan must die here, with context, not
        halfway through a chaos run."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError("%s: fault plan is not valid JSON: %s" % (source, exc)) from exc
        if not isinstance(data, dict):
            raise FaultError(
                "%s: fault plan must be a JSON object, not %s"
                % (source, type(data).__name__)
            )
        try:
            return cls.from_dict(data)
        except FaultError as exc:
            raise FaultError("%s: %s" % (source, exc)) from exc

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read(), source=str(path))

    # -- generation --------------------------------------------------------

    @classmethod
    def seeded(cls, seed, devices=(), elements=(), ticks=16, events=64, sharded=False):
        """A deterministic plan drawn from ``seed``: one device flap,
        maybe a frame-corruption window, one or two element faults, and
        a cache invalidation + corruption — scaled to a trace of about
        ``ticks`` run events carrying about ``events`` packets.

        ``sharded=True`` draws a *shard-safe* plan for comparing
        sharded against single-shard execution: element faults are
        count-based ("the 12th packet through ``chk``"), and global
        packet-entry order is exactly what sharding does not preserve —
        so they come out, and a ``worker_crash`` (whose journal-replay
        recovery is a deterministic no-op on the wire, and which plain
        routers ignore entirely) goes in."""
        rng = random.Random(seed)
        devices = list(devices)
        elements = list(elements)
        faults = []
        if devices:
            device = rng.choice(devices)
            at = rng.randrange(max(1, ticks // 2))
            faults.append(
                {"kind": "device_flap", "device": device, "at": at, "ticks": 1 + rng.randrange(3)}
            )
            if rng.random() < 0.75:
                faults.append(
                    {
                        "kind": "corrupt_frame",
                        "device": rng.choice(devices),
                        "after": rng.randrange(max(1, events // 4)),
                        "count": 1 + rng.randrange(3),
                        "offset": rng.choice((0, 14, 30)),
                        "xor": 1 + rng.randrange(255),
                    }
                )
        if sharded:
            faults.append(
                {
                    "kind": "worker_crash",
                    "at": rng.randrange(max(1, ticks)),
                    "worker": rng.randrange(8),
                }
            )
        else:
            for element in rng.sample(elements, min(len(elements), 1 + rng.randrange(2))):
                faults.append(
                    {
                        "kind": "element_error",
                        "element": element,
                        "after": rng.randrange(max(1, events // 2)),
                        "count": 1 + rng.randrange(4),
                    }
                )
        faults.append({"kind": "cache_invalidate", "at": rng.randrange(max(1, ticks))})
        faults.append({"kind": "cache_corrupt", "at": rng.randrange(max(1, ticks))})
        return cls(faults=faults, seed=seed, name="seeded-%s" % seed)

    def device_names(self):
        return sorted({f["device"] for f in self.faults if "device" in f})

    def element_names(self):
        return sorted({f["element"] for f in self.faults if "element" in f})

    def __len__(self):
        return len(self.faults)


class _DeviceFaultState:
    """Per-device schedule: flap windows, permanent failure, and
    count-based corruption windows over dequeued frames."""

    __slots__ = ("name", "flaps", "fail_at", "corruptions", "down", "rx_count", "down_polls", "corrupted")

    def __init__(self, name):
        self.name = name
        self.flaps = []  # (at, ticks)
        self.fail_at = None
        self.corruptions = []  # (after, count, offset, xor)
        self.down = False
        self.rx_count = 0
        self.down_polls = 0
        self.corrupted = 0

    def update(self, tick):
        down = any(at <= tick < at + ticks for (at, ticks) in self.flaps)
        if self.fail_at is not None and tick >= self.fail_at:
            down = True
        self.down = down

    def corrupt(self, frame):
        """Apply any active corruption window to a dequeued frame."""
        n = self.rx_count
        for after, count, offset, xor in self.corruptions:
            if after < n <= after + count:
                frame = bytearray(frame)
                if offset < len(frame):
                    frame[offset] ^= xor
                self.corrupted += 1
                return bytes(frame)
        return frame


class FaultyDevice:
    """A device proxy applying one :class:`_DeviceFaultState`.

    Deliberately *not* a LoopbackDevice subclass: the runtime's
    ``type(device) is LoopbackDevice`` fast paths must fall back to the
    generic calls so faults are actually observed.  While down, received
    frames stay queued on the underlying device (a flap delays, a
    permanent failure strands them) and the transmit ring reports no
    room.
    """

    def __init__(self, device, state):
        self.device = device
        self.state = state
        self.name = getattr(device, "name", state.name)

    def receive_frame(self, frame):
        self.device.receive_frame(frame)

    def rx_dequeue(self):
        state = self.state
        if state.down:
            state.down_polls += 1
            return None
        frame = self.device.rx_dequeue()
        if frame is None:
            return None
        state.rx_count += 1
        return state.corrupt(frame)

    def tx_room(self):
        if self.state.down:
            return 0
        return self.device.tx_room()

    def tx_enqueue(self, frame):
        if self.state.down:
            return False
        return self.device.tx_enqueue(frame)

    @property
    def transmitted(self):
        return self.device.transmitted

    @property
    def rx(self):
        return self.device.rx


class _ElementFaultState:
    __slots__ = ("name", "windows", "calls", "fired")

    def __init__(self, name):
        self.name = name
        self.windows = []  # (after, count, message)
        self.calls = 0
        self.fired = 0

    def note_call(self):
        """Count one handler entry; raise if a window covers it."""
        self.calls = n = self.calls + 1
        for after, count, message in self.windows:
            if after < n <= after + count:
                self.fired += 1
                raise InjectedFault(self.name, n, message)


def _entry_attr(element):
    """The attribute name that is ``element``'s per-packet entry point:
    the declared fast_action, simple_action for default-dispatch
    elements, else the push handler itself."""
    from ..elements.element import Element

    cls = type(element)
    action = getattr(cls, "fast_action", None)
    if action:
        return action
    if cls.push is Element.push:
        return "simple_action"
    return "push"


class FaultInjector:
    """Applies one :class:`FaultPlan` to routers and devices.

    Usage order matters: wrap the devices, build the router over the
    wrapped devices, :meth:`prepare_router` *before* compiling (before
    ``set_mode``), then :meth:`tick` once per scheduler batch.  The
    injector may prepare several routers in sequence (hot-swap installs
    a new one); element fault counters are injector-owned and keyed by
    element name, so counting continues across a swap.
    """

    def __init__(self, plan):
        self.plan = plan if isinstance(plan, FaultPlan) else FaultPlan.from_dict(plan)
        self.plan.validate()
        self.tick_count = 0
        self.cache_invalidations = 0
        self.cache_corruptions = 0
        self.worker_crashes = 0
        self.worker_kills = 0
        self.worker_hangs = 0
        self.worker_poisons = 0
        self._devices = {}
        self._elements = {}
        self._cache_events = []  # (at, kind), unfired
        self._worker_events = []  # (at, worker index), unfired worker_crash
        self._recovery_events = []  # unfired tick-phase kill/hang/poison dicts
        self._commit_events = []  # unfired phase="commit" worker_kill dicts
        self._router = None
        for fault in self.plan.faults:
            kind = fault["kind"]
            if kind in ("device_flap", "device_fail", "corrupt_frame"):
                state = self._devices.setdefault(
                    fault["device"], _DeviceFaultState(fault["device"])
                )
                if kind == "device_flap":
                    state.flaps.append((fault["at"], fault["ticks"]))
                elif kind == "device_fail":
                    at = fault["at"]
                    state.fail_at = at if state.fail_at is None else min(state.fail_at, at)
                else:
                    state.corruptions.append(
                        (
                            fault["after"],
                            fault.get("count", 1),
                            fault.get("offset", 0),
                            fault.get("xor", 0xFF),
                        )
                    )
            elif kind == "element_error":
                state = self._elements.setdefault(
                    fault["element"], _ElementFaultState(fault["element"])
                )
                state.windows.append(
                    (fault["after"], fault.get("count", 1), fault.get("message"))
                )
            elif kind == "worker_crash":
                self._worker_events.append((fault["at"], fault.get("worker", 0)))
            elif kind in ("worker_kill", "worker_hang", "worker_poison"):
                event = dict(fault)
                if kind == "worker_kill" and event.get("phase", "tick") == "commit":
                    self._commit_events.append(event)
                else:
                    self._recovery_events.append(event)
            else:
                self._cache_events.append((fault["at"], kind))
        for state in self._devices.values():
            state.update(0)

    # -- device side -------------------------------------------------------

    def wrap_devices(self, devices):
        """A new mapping where every device named by a device fault is
        wrapped in a :class:`FaultyDevice`; other devices pass through
        untouched (keeping their type-specialized runtime paths)."""
        wrapped = {}
        for name, device in devices.items():
            state = self._devices.get(name)
            wrapped[name] = device if state is None else FaultyDevice(device, state)
        return wrapped

    # -- element side ------------------------------------------------------

    def prepare_router(self, router):
        """Install element-fault wrappers on ``router`` (idempotent per
        router) and mark it uncacheable for the codegen cache.  Must run
        before the router compiles a fast path."""
        self._router = router
        if getattr(router, "is_sharded", False):
            if self._elements:
                # Element faults fire by *global* packet-entry count, an
                # order sharding deliberately does not preserve — such a
                # plan cannot be mode-invariant on a sharded plane.
                raise FaultError(
                    "element_error faults are count-ordered and cannot be "
                    "applied to a sharded router; use a sharded-safe plan "
                    "(FaultPlan.seeded(..., sharded=True))"
                )
            router.fault_injector = self
            return []
        touched = []
        for name, state in self._elements.items():
            element = router.find(name)
            if element is None:
                continue
            attr = _entry_attr(element)
            original = getattr(element, attr)
            if getattr(original, "_fault_wrapper", False):
                continue

            def wrapper(*args, _original=original, _state=state):
                _state.note_call()
                return _original(*args)

            wrapper._fault_wrapper = True
            setattr(element, attr, wrapper)
            element._fault_wrapped = True
            touched.append(name)
        if self._elements:
            router._fault_uncacheable = True
        router.fault_injector = self
        return touched

    # -- clocks ------------------------------------------------------------

    def tick(self, count=1):
        """Advance the fault clock ``count`` ticks, updating device
        up/down state and firing due cache faults."""
        from ..runtime.codegen_cache import default_cache

        for _ in range(count):
            now = self.tick_count
            self.tick_count = now + 1
            for state in self._devices.values():
                state.update(now)
            for at, kind in list(self._cache_events):
                if at == now:
                    self._cache_events.remove((at, kind))
                    cache = default_cache()
                    if kind == "cache_invalidate":
                        cache.invalidate()
                        self.cache_invalidations += 1
                    else:
                        self.cache_corruptions += cache.corrupt_entries()
            for at, worker in list(self._worker_events):
                if at == now:
                    self._worker_events.remove((at, worker))
                    # Kill-and-recover one data-plane shard.  A plain
                    # (single-shard) router has no workers to crash, so
                    # the fault is a no-op there — which is what keeps a
                    # sharded-safe plan mode-invariant.
                    crash = getattr(self._router, "crash_worker", None)
                    if crash is not None:
                        crash(worker)
                        self.worker_crashes += 1
            for event in list(self._recovery_events):
                if event["at"] == now:
                    self._recovery_events.remove(event)
                    self._fire_recovery_event(event)

    def _fire_recovery_event(self, event):
        """Deliver one self-healing fault to the sharded router (a
        plain router has none of these hooks, so the fault is a no-op
        there and the plan stays mode-invariant)."""
        router = self._router
        kind = event["kind"]
        if kind == "worker_kill":
            kill = getattr(router, "kill_worker", None)
            if kill is not None:
                kill(event.get("worker", 0))
                self.worker_kills += 1
        elif kind == "worker_hang":
            hang = getattr(router, "hang_worker", None)
            if hang is not None:
                hang(event.get("worker", 0), event.get("seconds", 30.0))
                self.worker_hangs += 1
        elif kind == "worker_poison":
            arm = getattr(router, "arm_poison", None)
            if arm is not None:
                arm(bytes.fromhex(event["frame"]))
                self.worker_poisons += 1

    def on_commit_phase(self, update_number):
        """The sharded router's window between "every shard staged" and
        "first shard committed" during a two-phase update: fire any due
        phase="commit" worker kills (``at`` counts committed updates,
        1-based), so the mid-commit death path gets exercised."""
        for event in list(self._commit_events):
            if update_number >= event["at"]:
                self._commit_events.remove(event)
                kill = getattr(self._router, "kill_worker", None)
                if kill is not None:
                    kill(event.get("worker", 0))
                    self.worker_kills += 1

    # -- observability -----------------------------------------------------

    def fault_counts(self):
        """JSON-safe injection counters for the resilience report."""
        return {
            "ticks": self.tick_count,
            "cache_invalidations": self.cache_invalidations,
            "cache_corruptions": self.cache_corruptions,
            "worker_crashes": self.worker_crashes,
            "worker_kills": self.worker_kills,
            "worker_hangs": self.worker_hangs,
            "worker_poisons": self.worker_poisons,
            "devices": {
                name: {
                    "down_polls": state.down_polls,
                    "corrupted_frames": state.corrupted,
                    "frames_seen": state.rx_count,
                }
                for name, state in sorted(self._devices.items())
            },
            "elements": {
                name: {"calls": state.calls, "errors_fired": state.fired}
                for name, state in sorted(self._elements.items())
            },
        }
