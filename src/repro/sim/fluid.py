"""Fluid-equilibrium model of the forwarding testbed (§8.3-§8.5).

For each offered input rate the solver finds the steady-state rates of
the four §8.4 packet outcomes:

- **sent** — forwarded out the transmit wire;
- **missed frame** — the receiving Tulip failed to fetch a ready RX
  descriptor twice (the CPU isn't emptying the ring fast enough); the
  failed checks still consume PCI bandwidth;
- **FIFO overflow** — the Tulip's internal FIFO filled because the PCI
  bus couldn't carry frames to memory fast enough (no PCI cost); and
- **Queue drop** — frames crossed into memory but the Click Queue
  overflowed because transmission couldn't keep up.

Three resources interact: the CPU (per-packet cost measured by running
the real element graph under the cycle meter), the shared PCI bus (a
byte budget consumed by RX DMA, TX DMA, and failed descriptor checks),
and the transmit wires.  The Tulips' ability to perform descriptor
checks degrades as the bus gets busy, which produces the §8.4 endgame:
"input rates above about 550,000 packets per second do not cause
decreases in forwarding rate" because excess frames overflow the FIFO
without touching the bus.

The same constants drive the time-stepped simulator
(:mod:`repro.sim.timestep`); the tests cross-validate the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nic import DESCRIPTOR_BYTES, FRAME_OVERHEAD_BYTES

# Per-packet PCI costs (bytes of effective bus capacity).
RX_BYTES = 64 + DESCRIPTOR_BYTES + FRAME_OVERHEAD_BYTES  # 106 for 64-byte frames
TX_BYTES = 64 + DESCRIPTOR_BYTES + FRAME_OVERHEAD_BYTES
MISSED_FRAME_BYTES = 92  # two descriptor-fetch attempts with arbitration

# Aggregate descriptor-check capacity at an idle bus (checks/s across
# the receiving Tulips); scales down linearly with bus utilization.
CHECK_RATE_IDLE = 4.0e6

_ITERATIONS = 400
_DAMPING = 0.25

# When the bus (not the CPU) limits forwarding, part of the shortfall
# shows up at the Click Queue rather than the NIC FIFO: those packets
# crossed the RX side before transmission stalled (§8.4's Simple
# analysis: "the CPU wanted to send packets faster than the transmitting
# Tulip cards could process them").
QUEUE_DROP_SHARE = 0.35


@dataclass
class Outcomes:
    """Steady-state packet rates (packets/s)."""

    input_rate: float
    sent: float
    missed_frames: float
    fifo_overflows: float
    queue_drops: float

    @property
    def accounted(self):
        return self.sent + self.missed_frames + self.fifo_overflows + self.queue_drops

    def as_row(self):
        return (
            self.input_rate,
            self.sent,
            self.queue_drops,
            self.missed_frames,
            self.fifo_overflows,
        )


def solve(input_rate, cpu_ns_per_packet, platform, frame_bytes=64):
    """Equilibrium outcomes for one offered load.

    ``cpu_ns_per_packet`` is the true (meter-overhead-corrected) CPU
    cost of one forwarded packet for the configuration under test.
    """
    bus = platform.pci_bytes_per_sec
    wire = platform.wire_capacity_pps
    cpu_cap = 1e9 / cpu_ns_per_packet if cpu_ns_per_packet > 0 else float("inf")
    input_rate = min(input_rate, platform.max_input_pps)

    rx_bytes = frame_bytes + DESCRIPTOR_BYTES + FRAME_OVERHEAD_BYTES
    tx_bytes = rx_bytes
    per_packet_bytes = rx_bytes + tx_bytes

    # State: sent, missed frames, queue drops.
    sent = min(input_rate, cpu_cap)
    missed = 0.0
    queue_drops = 0.0

    for _ in range(_ITERATIONS):
        rx_crossing = sent + queue_drops
        rho_dma = min(1.0, (rx_crossing * rx_bytes + sent * tx_bytes) / bus)
        check_cap = CHECK_RATE_IDLE * max(0.0, 1.0 - rho_dma)

        # Bus capacity left for full forwarding (RX + TX DMA per packet)
        # after failed checks and queue-dropped RX crossings.
        bus_for_forwarding = max(
            0.0, bus - missed * MISSED_FRAME_BYTES - queue_drops * rx_bytes
        )
        bus_cap = bus_for_forwarding / per_packet_bytes
        sent_target = min(input_rate, cpu_cap, bus_cap, wire)

        # Missed frames: the Tulip finds no ready descriptor — the CPU
        # isn't keeping the ring refilled.  Bounded by the overload
        # beyond the CPU and by the cards' check capacity (which shrinks
        # as DMA occupies the bus — §8.4's saturation endgame).
        missed_target = min(
            max(0.0, input_rate - cpu_cap),
            max(0.0, input_rate - sent_target),
            check_cap,
        )

        # Bus-limited shortfall splits between the NIC FIFO (never
        # crossed) and the Click Queue (crossed RX, couldn't transmit).
        excess = max(0.0, input_rate - sent_target - missed_target)
        bus_limited = bus_cap < min(input_rate, cpu_cap, wire)
        queue_target = QUEUE_DROP_SHARE * excess if bus_limited else 0.0

        sent += _DAMPING * (sent_target - sent)
        missed += _DAMPING * (missed_target - missed)
        queue_drops += _DAMPING * (queue_target - queue_drops)

    fifo = max(0.0, input_rate - sent - missed - queue_drops)
    return Outcomes(
        input_rate=input_rate,
        sent=sent,
        missed_frames=missed,
        fifo_overflows=fifo,
        queue_drops=queue_drops,
    )


def forwarding_curve(input_rates, cpu_ns_per_packet, platform, frame_bytes=64):
    """Figure 10-style series: [(input_rate, forwarding_rate), ...]."""
    return [
        (outcome.input_rate, outcome.sent)
        for outcome in (
            solve(rate, cpu_ns_per_packet, platform, frame_bytes) for rate in input_rates
        )
    ]


def outcome_curve(input_rates, cpu_ns_per_packet, platform, frame_bytes=64):
    """Figure 11-style series of full Outcomes."""
    return [solve(rate, cpu_ns_per_packet, platform, frame_bytes) for rate in input_rates]


def mlffr(cpu_ns_per_packet, platform, frame_bytes=64, tolerance=0.005):
    """Maximum loss-free forwarding rate: the largest input rate whose
    equilibrium forwards (1 - tolerance) of the offered load, found by
    bisection (§8.3)."""
    low = 1_000.0
    high = platform.max_input_pps

    def loss_free(rate):
        outcome = solve(rate, cpu_ns_per_packet, platform, frame_bytes)
        return outcome.sent >= rate * (1.0 - tolerance)

    if not loss_free(low):
        return 0.0
    if loss_free(high):
        return high
    for _ in range(40):
        mid = (low + high) / 2.0
        if loss_free(mid):
            low = mid
        else:
            high = mid
    return low
