"""The Tulip NIC model (§8.4).

A DEC 21140 has a small internal receive FIFO and DMA rings in host
memory.  For each arriving frame the card must fetch a ready receive
descriptor over PCI and DMA the frame to memory; "it may be dropped on
the receiving Tulip because the Tulip's internal FIFO is full ('FIFO
overflow'), or because the Tulip was not able to fetch a ready DMA
descriptor after two tries ('missed frame')".

The model exposes the device interface the ``PollDevice``/``ToDevice``
elements use (``rx_dequeue`` / ``tx_room`` / ``tx_enqueue``) plus a
time-stepped ``advance`` driven by the testbed simulator, with a PCI bus
object arbitrating byte budgets.
"""

from __future__ import annotations

from collections import deque

RX_RING_SIZE = 64
TX_RING_SIZE = 64
FIFO_FRAMES = 16  # the 21140's FIFO holds a handful of full-size frames

DESCRIPTOR_BYTES = 16
FAILED_CHECK_BYTES = 46  # two descriptor-fetch attempts incl. arbitration
FRAME_OVERHEAD_BYTES = 26  # burst setup/addressing per frame DMA


class TulipNIC:
    """One simulated Tulip: receive path (wire → FIFO → PCI → RX ring)
    and transmit path (TX ring → PCI → wire)."""

    def __init__(self, name, pci, line_rate_pps, frame_bytes=64):
        self.name = name
        self.pci = pci
        self.line_rate_pps = line_rate_pps
        self.frame_bytes = frame_bytes

        self.fifo = deque()
        self.rx_ring = deque()  # frames DMA'd to memory, awaiting the CPU
        self.tx_ring = deque()  # frames enqueued by the CPU, awaiting wire

        # Outcome counters (§8.4).
        self.fifo_overflows = 0
        self.missed_frames = 0
        self.received = 0
        self.transmitted = 0
        self._tx_credit = 0.0

    # -- the element-facing device interface ---------------------------------

    def rx_dequeue(self):
        if not self.rx_ring:
            return None
        return self.rx_ring.popleft()

    def tx_room(self):
        return TX_RING_SIZE - len(self.tx_ring)

    def tx_enqueue(self, frame):
        if self.tx_room() <= 0:
            return False
        self.tx_ring.append(bytes(frame))
        return True

    def receive_frame(self, frame):
        """A frame arrives from the wire into the FIFO."""
        if len(self.fifo) >= FIFO_FRAMES:
            self.fifo_overflows += 1
            return
        self.fifo.append(bytes(frame))

    # -- time-stepped hardware behaviour ----------------------------------------

    def advance(self, dt):
        """One simulation step: move FIFO frames across PCI into the RX
        ring (or drop them), and drain the TX ring onto the wire."""
        self._advance_rx()
        self._advance_tx(dt)

    def _advance_rx(self):
        while self.fifo:
            if len(self.rx_ring) >= RX_RING_SIZE:
                # No ready descriptor: the check itself costs PCI
                # bandwidth (two tries), then the frame is flushed.
                if self.pci.consume(FAILED_CHECK_BYTES):
                    self.fifo.popleft()
                    self.missed_frames += 1
                    continue
                break  # not even bus time for the check this step
            dma_bytes = self.frame_bytes + DESCRIPTOR_BYTES + FRAME_OVERHEAD_BYTES
            if not self.pci.consume(dma_bytes):
                break  # bus exhausted; frames wait in the FIFO
            self.rx_ring.append(self.fifo.popleft())
            self.received += 1

    def _advance_tx(self, dt):
        self._tx_credit += self.line_rate_pps * dt
        while self.tx_ring and self._tx_credit >= 1.0:
            dma_bytes = self.frame_bytes + DESCRIPTOR_BYTES + FRAME_OVERHEAD_BYTES
            if not self.pci.consume(dma_bytes):
                break
            self.tx_ring.popleft()
            self._tx_credit -= 1.0
            self.transmitted += 1
        # Idle wire credit does not accumulate past one step's worth.
        self._tx_credit = min(self._tx_credit, self.line_rate_pps * dt)
