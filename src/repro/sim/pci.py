"""The PCI bus: a shared per-step byte budget.

§8.4 attributes the optimized routers' post-peak decline to the bus:
failed descriptor checks "use up PCI bandwidth that another Tulip could
have used to receive or send packet data".  The model is a token bucket
refilled each simulation step; NIC operations consume from it in
arrival order.
"""

from __future__ import annotations


class PCIBus:
    """Byte-budget arbiter for one simulation step at a time."""

    def __init__(self, bytes_per_sec):
        self.bytes_per_sec = bytes_per_sec
        self._budget = 0.0
        self.bytes_used = 0.0
        self.denied = 0

    def refill(self, dt):
        # Unused bus time does not carry across steps.
        self._budget = self.bytes_per_sec * dt

    def consume(self, nbytes):
        if self._budget >= nbytes:
            self._budget -= nbytes
            self.bytes_used += nbytes
            return True
        self.denied += 1
        return False

    @property
    def available(self):
        return self._budget
