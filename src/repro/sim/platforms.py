"""Hardware platform descriptions (§8.1, §8.5).

P0 is the reference testbed: 700 MHz Pentium III, eight DEC 21140 Tulip
100 Mbit cards on 32-bit/33 MHz PCI, four source hosts and four sinks.
P1-P3 are the hardware-evolution platforms of Figure 12/13 (Intel
Pro/1000 gigabit cards; the Pro/1000 "requires the CPU to use programmed
I/O instructions for each batch of packets", modelled as a per-packet
overhead).

PCI capacities are *effective* aggregate budgets (bytes/s available for
packet DMA and descriptor traffic after arbitration and bridge
overheads), calibrated once against the "Simple" configuration's
saturation behaviour on P0.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Platform:
    """One hardware platform."""

    name: str
    clock_mhz: float
    pci_bytes_per_sec: float
    nic_ports: int  # router-side ports carrying traffic
    line_rate_pps: float  # per-port wire limit for 64-byte packets
    source_rate_pps: float  # per source host
    source_count: int
    pio_overhead_ns: float = 0.0  # Pro/1000 programmed-I/O cost per packet
    description: str = ""

    @property
    def max_input_pps(self):
        return self.source_rate_pps * self.source_count

    @property
    def wire_capacity_pps(self):
        # Half the ports receive, half transmit in the evaluation setup.
        return self.line_rate_pps * max(1, self.nic_ports // 2)


# 100 Mbit Ethernet carries up to 148,800 64-byte frames/s (preamble and
# inter-frame gap included, §8.1); the sources manage 147,900.
_FAST_ETHER_PPS = 148_800.0
_GIG_ETHER_PPS = 1_488_000.0

P0 = Platform(
    name="P0",
    clock_mhz=700.0,
    pci_bytes_per_sec=99e6,
    nic_ports=8,
    line_rate_pps=_FAST_ETHER_PPS,
    source_rate_pps=147_900.0,
    source_count=4,
    pio_overhead_ns=0.0,
    description="700 MHz Pentium III, 8x Tulip 100 Mbit, 32-bit/33 MHz PCI",
)

P1 = Platform(
    name="P1",
    clock_mhz=800.0,
    pci_bytes_per_sec=99e6,
    nic_ports=2,
    line_rate_pps=_GIG_ETHER_PPS,
    source_rate_pps=1_000_000.0,
    source_count=2,
    pio_overhead_ns=380.0,
    description="800 MHz Pentium III, 2x Pro/1000, 32-bit/33 MHz PCI",
)

P2 = Platform(
    name="P2",
    clock_mhz=800.0,
    pci_bytes_per_sec=396e6,
    nic_ports=2,
    line_rate_pps=_GIG_ETHER_PPS,
    source_rate_pps=1_000_000.0,
    source_count=2,
    pio_overhead_ns=380.0,
    description="800 MHz Pentium III, 2x Pro/1000, 64-bit/66 MHz PCI",
)

P3 = Platform(
    name="P3",
    clock_mhz=1600.0,
    pci_bytes_per_sec=396e6,
    nic_ports=2,
    line_rate_pps=_GIG_ETHER_PPS,
    source_rate_pps=1_000_000.0,
    source_count=2,
    pio_overhead_ns=340.0,
    description="1.6 GHz Athlon MP, 2x Pro/1000, 64-bit/66 MHz PCI",
)

ALL_PLATFORMS = [P0, P1, P2, P3]
