"""The evaluation testbed (§8.1): configurations, workloads, and
measurement drivers for every figure in the paper.

``Testbed`` builds the eight configurations of Figure 9 — Base, FC, DV,
XF, All, MR, MR+All, and Simple — through the *real tool chain* (each
optimized variant is the output of the corresponding optimizers run on
the Base configuration text), measures per-packet CPU cost by pushing
the evaluation workload through the runtime router under a
:class:`~repro.sim.cpu.CycleMeter`, and feeds those costs to the fluid
model for forwarding-rate curves and MLFFR searches.
"""

from __future__ import annotations

from collections import OrderedDict

from ..configs.iprouter import default_interfaces, ip_router_config
from ..configs.simple import crossed_pairs, simple_config
from ..core.devirtualize import devirtualize
from ..core.fastclassifier import fastclassifier
from ..core.patterns import STANDARD_PATTERNS
from ..core.pipeline import Pipeline
from ..core.toolchain import load_config, save_config
from ..core.xform import PatternPair, xform
from ..elements.devices import LoopbackDevice
from ..elements.runtime import build_router as build_runtime_router
from ..runtime.profile import ExecutionProfile
from ..net.headers import build_ether_udp_packet
from . import fluid
from .cpu import CycleMeter
from .platforms import P0

# The hosts attached to each interface in the evaluation network.
HOST_ETHERS = ["00:20:6F:00:00:%02X" % i for i in range(8)]

VARIANTS = ["base", "fc", "dv", "xf", "all", "mr", "mr_all", "simple"]
VARIANT_LABELS = {
    "base": "Base",
    "fc": "FC",
    "dv": "DV",
    "xf": "XF",
    "all": "All",
    "mr": "MR",
    "mr_all": "MR+All",
    "simple": "Simple",
}


def host_ip(interface_index):
    """The host on network (i+1): (i+1).0.0.2."""
    return "%d.0.0.2" % (interface_index + 1)


def arp_elimination_patterns_for_hosts(interfaces):
    """The MR optimization for the evaluation network: every router
    link is point-to-point to a single host whose hardware address the
    combined configuration exposes, so each interface's ARPQuerier
    collapses to a static EtherEncap (§7.2).  The pattern anchors on the
    interface's ToDevice."""
    pairs = []
    for index, interface in enumerate(interfaces):
        peer = HOST_ETHERS[index]
        pattern = """
        input -> arpq :: ARPQuerier($ip, $eth)
              -> q :: Queue($capacity)
              -> td :: ToDevice(%(dev)s) -> output;
        input [1] -> [1] arpq;
        input [2] -> q;
        """ % {"dev": interface.device}
        replacement = """
        input -> EtherEncap(0x0800, $eth, %(peer)s)
              -> q :: Queue($capacity)
              -> td :: ToDevice(%(dev)s) -> output;
        input [1] -> Discard;
        input [2] -> q;
        """ % {"peer": peer, "dev": interface.device}
        pairs.append(
            PatternPair.from_texts(pattern, replacement, name="ARPElim-%s" % interface.device)
        )
    return pairs


class Testbed:
    """One evaluation setup: a set of interfaces on a platform."""

    __test__ = False  # not a pytest test class

    def __init__(self, interface_count=2, platform=P0):
        self.platform = platform
        self.interfaces = default_interfaces(interface_count)
        self.last_report = None  # PipelineReport of the latest variant build

    # -- configurations ----------------------------------------------------------

    def base_graph(self):
        return load_config(ip_router_config(self.interfaces), "<base>")

    def simple_graph(self):
        pairs = crossed_pairs(len(self.interfaces))
        return load_config(simple_config(pairs), "<simple>")

    def variant_passes(self, variant):
        """The optimizer passes behind a Figure 9 variant, in tool-chain
        order (devirtualize last, §6.1)."""
        if variant not in VARIANTS:
            raise ValueError("unknown variant %r" % variant)
        passes = []
        if variant in ("mr", "mr_all"):
            passes.append(
                xform.as_pass(
                    patterns=arp_elimination_patterns_for_hosts(self.interfaces)
                )
            )
        if variant in ("fc", "all", "mr_all"):
            passes.append(fastclassifier.as_pass())
        if variant in ("xf", "all", "mr_all"):
            passes.append(xform.as_pass(patterns=STANDARD_PATTERNS))
        if variant in ("dv", "all", "mr_all"):
            passes.append(devirtualize.as_pass())
        return passes

    def variant_graph(self, variant):
        """Build a Figure 9 configuration through the tool chain; the
        run's per-pass PipelineReport lands in ``self.last_report``."""
        if variant == "simple":
            self.last_report = None
            return self.simple_graph()
        pipeline = Pipeline(self.variant_passes(variant), name=variant)
        result = pipeline.run(self.base_graph())
        self.last_report = result.report
        # Round-trip through text: the variant is exactly what the tool
        # chain would emit on stdout.
        return load_config(save_config(result.graph), "<%s>" % variant)

    # -- workload -----------------------------------------------------------------

    def evaluation_frames(self, count):
        """§8.1's workload: each source host sends an even flow of
        64-byte UDP packets to a corresponding destination.  Sources on
        even interfaces send to hosts on the next interface (round
        robin), so flows alternate across interfaces — the pattern that
        stresses shared branch-predictor sites (Figure 2)."""
        n = len(self.interfaces)
        frames = []
        for sequence in range(count):
            rx = sequence % n
            tx = (rx + 1) % n
            frames.append(
                (
                    self.interfaces[rx].device,
                    build_ether_udp_packet(
                        HOST_ETHERS[rx],
                        self.interfaces[rx].ether,
                        host_ip(rx),
                        host_ip(tx),
                        src_port=1000 + sequence % 7,
                        dst_port=2000,
                        payload=b"\x00" * 14,
                        identification=sequence & 0xFFFF,
                    ),
                )
            )
        return frames

    # -- CPU measurement (Figures 8 and 9) ------------------------------------------

    def build_router(
        self,
        graph,
        meter=None,
        profile=None,
        mode="reference",
        batch=False,
        adaptive_config=None,
    ):
        if profile is None:
            if mode == "adaptive":
                profile = ExecutionProfile.tiered(config=adaptive_config, batch=batch)
            elif mode == "fdd":
                profile = ExecutionProfile.fdd(config=adaptive_config, batch=batch)
            else:
                profile = ExecutionProfile(mode=mode, batch=batch)
        devices = {
            interface.device: LoopbackDevice(interface.device, tx_capacity=1 << 30)
            for interface in self.interfaces
        }
        # The dispatcher: a profile carrying workers > 1 builds a
        # ShardedRouter (whose find() fans the ARP seeding out to every
        # shard); otherwise a plain Router.
        router = build_runtime_router(graph, meter=meter, devices=devices, profile=profile)
        self._seed_arp(router)
        return router, devices

    def _seed_arp(self, router):
        for index in range(len(self.interfaces)):
            arpq = router.find("arpq%d" % index)
            if arpq is not None and hasattr(arpq, "insert"):
                arpq.insert(host_ip(index), HOST_ETHERS[index])

    def measure_cpu(
        self, variant, packets=2000, warmup=64, mode="reference", batch=False, profile=None
    ):
        """Run the evaluation workload through the real router under the
        cycle meter; returns a CPUReport of ns/packet by category.

        ``mode="fast"`` measures under the compiled fast path — for a
        single packet the charges are identical to the reference
        interpreter's; ``batch=True`` additionally models how bursts
        ride the branch predictor.  ``profile`` overrides both with a
        full :class:`~repro.runtime.profile.ExecutionProfile`."""
        graph = self.variant_graph(variant)
        meter = CycleMeter()
        router, devices = self.build_router(
            graph, meter=meter, profile=profile, mode=mode, batch=batch
        )

        # Warm the caches/predictors outside the measurement, as the
        # paper's 10-second runs amortize cold starts.
        for device_name, frame in self.evaluation_frames(warmup):
            devices[device_name].receive_frame(frame)
        router.run_tasks(warmup)
        meter.__init__()  # reset counters after warmup
        already_sent = sum(len(d.transmitted) for d in devices.values())

        for device_name, frame in self.evaluation_frames(packets):
            devices[device_name].receive_frame(frame)
        # The paper measures at load: tasks run roughly once per burst,
        # so idle polls are a negligible share of the per-packet cost.
        from ..elements.devices import PollDevice

        iterations = packets // PollDevice.BURST + 16
        router.run_tasks(iterations)

        forwarded = sum(len(d.transmitted) for d in devices.values()) - already_sent
        if forwarded < packets:
            raise RuntimeError(
                "measurement run lost packets: %d of %d forwarded" % (forwarded, packets)
            )
        return meter.report(forwarded, clock_mhz=self.platform.clock_mhz)

    def true_cpu_ns(self, variant, packets=2000, profile=None):
        """Meter-corrected per-packet cost plus platform PIO overhead —
        the number the rate model consumes.  ``profile`` selects the
        execution regime to meter (default: the reference interpreter)."""
        report = self.measure_cpu(variant, packets, profile=profile)
        return report.true_total_ns + self.platform.pio_overhead_ns

    # -- rate experiments (Figures 10-13) ---------------------------------------------

    def forwarding_curve(self, variant, input_rates, packets=2000):
        cpu_ns = self.true_cpu_ns(variant, packets)
        return fluid.forwarding_curve(input_rates, cpu_ns, self.platform)

    def outcome_curve(self, variant, input_rates, packets=2000):
        cpu_ns = self.true_cpu_ns(variant, packets)
        return fluid.outcome_curve(input_rates, cpu_ns, self.platform)

    def mlffr(self, variant, packets=2000):
        cpu_ns = self.true_cpu_ns(variant, packets)
        return fluid.mlffr(cpu_ns, self.platform)

    def sharded_mlffr(self, variant, workers, dispatch_ns=650.0, packets=2000):
        """The fluid-model saturation rate of a sharded data plane:
        ``workers`` shards divide the per-packet forwarding cost, but
        every frame still crosses the single-threaded flow-hash
        dispatcher — so the effective service time is
        ``max(dispatch_ns, cpu_ns / workers)`` and the curve flattens
        once the dispatcher, not the shards, is the bottleneck (the
        MLFFR-style saturation shape ``bench_shard.py`` plots)."""
        if workers < 1:
            raise ValueError("workers must be >= 1, not %r" % (workers,))
        cpu_ns = self.true_cpu_ns(variant, packets)
        effective_ns = max(float(dispatch_ns), cpu_ns / workers) if workers > 1 else cpu_ns
        return fluid.mlffr(effective_ns, self.platform)


def figure9_reports(interface_count=2, packets=2000, variants=None):
    """CPU cost reports for every Figure 9 bar."""
    testbed = Testbed(interface_count)
    results = OrderedDict()
    for variant in variants or VARIANTS:
        results[variant] = testbed.measure_cpu(variant, packets)
    return results
