"""Time-stepped testbed simulation.

The fluid model (:mod:`repro.sim.fluid`) computes equilibria; this
simulator runs the same hardware — Tulip NICs with FIFOs and DMA rings,
a shared PCI bus, a CPU with a per-packet cost, Click queues — forward
in time, so transients (ring fill, FIFO build-up) and the discrete
drop mechanisms are visible.  The tests cross-validate its steady state
against the fluid solver.

The CPU is abstracted to a time budget per step: each forwarded packet
costs the configuration's measured per-packet nanoseconds (the same
number the fluid model uses), spent moving one frame from an RX ring
through the (abstract) forwarding path into a Click queue, and from
queue into a TX ring.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fluid import Outcomes
from .nic import TulipNIC
from .pci import PCIBus

_QUEUE_CAPACITY = 64


@dataclass
class _Port:
    nic: TulipNIC
    arrival_credit: float = 0.0
    queue: list = None

    def __post_init__(self):
        self.queue = []


class TimesteppedTestbed:
    """Hardware-level simulation of one configuration at one load."""

    def __init__(self, platform, cpu_ns_per_packet, frame_bytes=64, queue_capacity=None):
        self.platform = platform
        self.cpu_ns = cpu_ns_per_packet
        self.frame_bytes = frame_bytes
        self.queue_capacity = (
            _QUEUE_CAPACITY if queue_capacity is None else int(queue_capacity)
        )
        self.pci = PCIBus(platform.pci_bytes_per_sec)
        port_pairs = max(1, platform.nic_ports // 2)
        self.ports = [
            _Port(TulipNIC("rxtx%d" % i, self.pci, platform.line_rate_pps, frame_bytes))
            for i in range(port_pairs)
        ]
        self.queue_drops = 0
        self.forwarded = 0
        self._frame = bytes(frame_bytes)

    def run(self, input_rate_pps, duration_s, dt=20e-6):
        """Simulate ``duration_s`` of offered load; returns Outcomes."""
        per_port_rate = input_rate_pps / len(self.ports)
        steps = int(duration_s / dt)
        for _ in range(steps):
            self.pci.refill(dt)
            # Arrivals from the wire into each NIC FIFO.
            for port in self.ports:
                port.arrival_credit += per_port_rate * dt
                while port.arrival_credit >= 1.0:
                    port.nic.receive_frame(self._frame)
                    port.arrival_credit -= 1.0
            # NIC DMA engines move frames across the bus.
            for port in self.ports:
                port.nic.advance(dt)
            # The CPU: polling loop, bounded by its per-packet budget.
            cpu_budget = dt * 1e9 / self.cpu_ns
            progress = True
            while cpu_budget >= 1.0 and progress:
                progress = False
                for port in self.ports:
                    if cpu_budget < 1.0:
                        break
                    frame = port.nic.rx_dequeue()
                    if frame is None:
                        continue
                    cpu_budget -= 1.0
                    progress = True
                    if len(port.queue) >= self.queue_capacity:
                        self.queue_drops += 1
                        continue
                    port.queue.append(frame)
                    # ToDevice side: move from queue to the TX ring when
                    # there is room (same CPU pass, cost already counted
                    # in the per-packet budget).
                    if port.queue and port.nic.tx_room() > 0:
                        port.nic.tx_enqueue(port.queue.pop(0))
            # Drain queues into TX rings opportunistically.
            for port in self.ports:
                while port.queue and port.nic.tx_room() > 0:
                    port.nic.tx_enqueue(port.queue.pop(0))

        sent = sum(p.nic.transmitted for p in self.ports)
        missed = sum(p.nic.missed_frames for p in self.ports)
        fifo = sum(p.nic.fifo_overflows for p in self.ports)
        return Outcomes(
            input_rate=input_rate_pps,
            sent=sent / duration_s,
            missed_frames=missed / duration_s,
            fifo_overflows=fifo / duration_s,
            queue_drops=self.queue_drops / duration_s,
        )


def simulate(
    input_rate_pps, cpu_ns_per_packet, platform, duration_s=0.05, queue_capacity=None
):
    """One operating point through the time-stepped simulator."""
    testbed = TimesteppedTestbed(
        platform, cpu_ns_per_packet, queue_capacity=queue_capacity
    )
    return testbed.run(input_rate_pps, duration_s)
