"""Parasol-style autotuning of the runtime's knobs.

Every execution layer grew hand-picked constants — the adaptive
engine's promotion thresholds, the FDD expansion budget, the shard
queue capacity and chunk size, the supervisor's error budget — each
defensible in isolation and never revisited together.  This package
turns them into a declared, searchable parameter space:

- :mod:`repro.tune.space` — ``Param``/``ParamSpace``: typed domains
  (int / log-int / choice) with cross-parameter validity constraints,
  assembled from the ``TUNABLES`` declarations the runtime modules
  export next to their config classes.
- :mod:`repro.tune.workloads` — the standard iprouter and firewall
  workloads as tuning subjects (deterministic metered base cost,
  classifier trees, skewed frame generators).
- :mod:`repro.tune.objective` — a calibrated cost model mapping a knob
  assignment to an effective per-packet cost, scored through the fluid
  equilibrium solver (:func:`repro.sim.fluid.mlffr`) as the cheap
  objective; finalists validate on the time-stepped simulator and a
  byte-equivalence run against the reference interpreter.
- :mod:`repro.tune.search` — the driver: seeded random sampling plus
  successive halving, with the default assignment carried through every
  rung so the tuned result never loses to the shipped constants.
- :mod:`repro.tune.artifact` — ``TunedProfile``: the JSON artifact,
  content-addressed to the graph fingerprint and workload, consumed by
  ``ExecutionProfile.with_tuning`` and ``click-optimize --tuned``.
"""

from .artifact import TunedProfile
from .objective import CostModel
from .search import SearchReport, tune
from .space import Param, ParamSpace, default_space
from .workloads import WORKLOADS, Workload

__all__ = [
    "CostModel",
    "Param",
    "ParamSpace",
    "SearchReport",
    "TunedProfile",
    "WORKLOADS",
    "Workload",
    "default_space",
    "tune",
]
