"""The ``TunedProfile`` artifact: a searched knob assignment at rest.

One JSON document records everything a consumer needs: the workload
and graph fingerprint the search ran against (content addressing — a
tuned profile silently applied to a different graph is a bug, so
consumers compare fingerprints), the knob assignment itself, the
modeled score, and the search/validation provenance.  It is consumed
by :meth:`repro.runtime.ExecutionProfile.with_tuning` (which applies
the ``params``) and by ``click-optimize --tuned``.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["TunedProfile"]

VERSION = 1


class TunedProfile:
    """A searched knob assignment plus its provenance (see module
    docstring).  ``params`` maps the dotted tunable names the runtime
    modules declare to plain JSON-safe values."""

    __slots__ = (
        "workload",
        "graph_fingerprint",
        "mode",
        "workers",
        "supervised",
        "params",
        "score",
        "baseline_score",
        "search",
        "validation",
        "version",
    )

    def __init__(
        self,
        workload,
        graph_fingerprint,
        mode,
        params,
        score,
        baseline_score=None,
        workers=1,
        supervised=False,
        search=None,
        validation=None,
        version=VERSION,
    ):
        self.workload = workload
        self.graph_fingerprint = graph_fingerprint
        self.mode = mode
        self.workers = int(workers)
        self.supervised = bool(supervised)
        self.params = dict(params)
        self.score = score
        self.baseline_score = baseline_score
        self.search = dict(search) if search else {}
        self.validation = dict(validation) if validation else {}
        self.version = version

    @property
    def key(self):
        """Content address: graph fingerprint + workload + execution
        mode + the sorted assignment, hashed.  Two artifacts with the
        same key tuned the same thing to the same point."""
        canonical = "%s|%s|%s|%s" % (
            self.graph_fingerprint,
            self.workload,
            self.mode,
            json.dumps(self.params, sort_keys=True),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def speedup(self):
        """Modeled tuned-over-default MLFFR ratio (None without a
        baseline)."""
        if not self.baseline_score:
            return None
        return self.score / self.baseline_score

    @property
    def cpu_speedup(self):
        """Modeled default-over-tuned effective CPU cost ratio — the
        discriminating number on I/O-bound platforms, where every
        sub-knee candidate ties on MLFFR (None when the search did not
        record effective costs)."""
        effective = self.search.get("effective_ns")
        baseline = self.search.get("baseline_effective_ns")
        if not effective or not baseline:
            return None
        return baseline / effective

    def as_dict(self):
        """The artifact as a JSON-safe dict (the on-disk schema)."""
        return {
            "version": self.version,
            "key": self.key,
            "workload": self.workload,
            "graph_fingerprint": self.graph_fingerprint,
            "mode": self.mode,
            "workers": self.workers,
            "supervised": self.supervised,
            "params": dict(self.params),
            "score": self.score,
            "baseline_score": self.baseline_score,
            "search": dict(self.search),
            "validation": dict(self.validation),
        }

    def to_json(self):
        """Serialize (stable key order, human-diffable)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload):
        """Rehydrate from :meth:`as_dict` output; unknown keys are
        ignored so newer writers stay readable."""
        return cls(
            payload["workload"],
            payload["graph_fingerprint"],
            payload["mode"],
            payload["params"],
            payload["score"],
            baseline_score=payload.get("baseline_score"),
            workers=payload.get("workers", 1),
            supervised=payload.get("supervised", False),
            search=payload.get("search"),
            validation=payload.get("validation"),
            version=payload.get("version", VERSION),
        )

    @classmethod
    def from_json(cls, text):
        """Rehydrate from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path):
        """Write the artifact to ``path``; returns the path."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return path

    @classmethod
    def load(cls, path):
        """Read an artifact from ``path``."""
        with open(path) as fh:
            return cls.from_json(fh.read())

    def __repr__(self):
        return "TunedProfile(%s/%s, key=%s)" % (self.workload, self.mode, self.key)
