"""``click-tune``: search the runtime knob space for a workload.

Runs the Parasol-style search (:func:`repro.tune.search.tune`) against
one of the standard workloads, prints the search report, and writes
the :class:`~repro.tune.artifact.TunedProfile` JSON artifact that
``click-optimize --tuned`` and ``ExecutionProfile.with_tuning``
consume::

    click-tune --workload iprouter --out tuned.json
    click-tune --workload firewall --mode fdd --budget 32 --seed 7
    click-optimize config.click --tuned tuned.json
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _build_parser():
    from .workloads import WORKLOADS

    parser = argparse.ArgumentParser(
        prog="click-tune", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        default="iprouter",
        help="tuning subject (default: iprouter)",
    )
    parser.add_argument(
        "--mode",
        choices=("fast", "adaptive", "fdd"),
        default="adaptive",
        help="execution tier to tune (default: adaptive)",
    )
    parser.add_argument("--seed", type=int, default=0, help="search seed (default: 0)")
    parser.add_argument(
        "--budget", type=int, default=24, help="candidate population size (default: 24)"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker shards to model (default: 1)"
    )
    parser.add_argument(
        "--supervised", action="store_true", help="tune under supervision"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small budget, no finalist validation (CI smoke)",
    )
    parser.add_argument("--out", default=None, help="write the TunedProfile JSON here")
    parser.add_argument(
        "--report", default=None, help="also write the human-readable report here"
    )
    return parser


def _format_report(tuned):
    """The human-readable search report for one artifact."""
    lines = []
    lines.append(
        "tuned %s/%s (fingerprint %s, key %s)"
        % (tuned.workload, tuned.mode, tuned.graph_fingerprint[:12], tuned.key)
    )
    search = tuned.search
    lines.append(
        "search: seed=%s budget=%s" % (search.get("seed"), search.get("budget"))
    )
    for rung in search.get("rungs", ()):
        lines.append(
            "  rung %-14s evaluated %3d -> kept %d"
            % (rung["name"], rung["evaluated"], rung["kept"])
        )
    lines.append("params:")
    for name in sorted(tuned.params):
        lines.append("  %-26s %r" % (name, tuned.params[name]))
    lines.append(
        "modeled MLFFR: %.0f pps (default %.0f pps, %.2fx)"
        % (tuned.score, tuned.baseline_score or 0.0, tuned.speedup or 1.0)
    )
    if tuned.cpu_speedup is not None:
        lines.append(
            "modeled CPU cost: %.1f ns/pkt (default %.1f, %.2fx headroom)"
            % (
                tuned.search.get("effective_ns", 0.0),
                tuned.search.get("baseline_effective_ns", 0.0),
                tuned.cpu_speedup,
            )
        )
    validation = tuned.validation
    if validation:
        timestep = validation.get("timestep", {})
        lines.append(
            "validation: wire_identical=%s timestep loss_free=%s (%.0f of %.0f pps)"
            % (
                validation.get("wire_identical"),
                timestep.get("loss_free"),
                timestep.get("sent_pps", 0.0),
                timestep.get("input_rate_pps", 0.0),
            )
        )
    return "\n".join(lines)


def main(argv=None):
    """Entry point for ``click-tune``; returns a process exit code."""
    from .search import tune

    options = _build_parser().parse_args(argv)
    budget = options.budget
    validate = True
    if options.quick:
        budget = min(budget, 8)
        validate = False
    tuned = tune(
        options.workload,
        mode=options.mode,
        seed=options.seed,
        budget=budget,
        workers=options.workers,
        supervised=options.supervised,
        validate=validate,
    )
    text = _format_report(tuned)
    print(text)
    if options.out:
        tuned.save(options.out)
        print("wrote %s" % options.out)
    if options.report:
        with open(options.report, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
