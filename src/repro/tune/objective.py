"""The tuning objective: knob assignment -> effective cost -> MLFFR.

The cheap objective is a calibrated analytic cost model.  It anchors on
one deterministic measurement — the workload's metered reference
per-packet cost (:meth:`Workload.base_cpu_ns`, a cycle-model number,
not a stopwatch) — then maps a knob assignment to an *effective*
per-packet cost over a fixed packet horizon:

- the tiered engine's tier-1 phase pays a probe cost amortized by the
  sampling stride; promotion happens after ``threshold`` packets when
  the speculation preconditions hold (enough samples per stride, hot
  fraction below the workload's actual skew), after which hot traffic
  runs at the tier-2 rate and cold traffic pays guard misses;
- guard misses accumulate toward ``guard_miss_limit``; each deopt
  re-runs tier 1 and pays a recompile, bounded by ``max_recompiles``;
- FDD mode expands the workload's real classifier trees under the
  candidate node budget (:func:`repro.runtime.fdd.build_diagram`) and
  credits the saved loads and matcher calls, taxed per diagram node;
- sharding takes the max of the dispatch cost (hash + handoff amortized
  by queue capacity + queue memory-footprint tax) and the per-worker
  share;
- supervision adds a small per-packet tax shrinking with the backoff
  and error budget.

The effective cost is scored through the fluid equilibrium solver
(:func:`repro.sim.fluid.mlffr`) — the paper's loss-free forwarding
rate — so candidates are ranked by the number the paper optimizes.
Everything is closed-form over deterministic inputs: the same
assignment always scores identically.
"""

from __future__ import annotations

__all__ = ["CostModel"]

#: Packet horizon the phase-weighted average is taken over.
HORIZON = 100_000

# Calibration constants (ns unless noted).  FAST_FACTOR and TIER2_GAIN
# track the measured fastpath/adaptive bench ratios; the shard dispatch
# anchor matches Testbed.sharded_mlffr's default dispatch_ns.
FAST_FACTOR = 0.33  # compiled tier-1 cost as a share of reference
TIER2_GAIN = 0.82  # hot-path cost after the profile-guided recompile
BATCH_GAIN = 0.94  # batch dispatch rides the branch predictor
PROBE_NS = 120.0  # per *sampled* packet profiling cost
GUARD_MISS_NS = 90.0  # cold packet: guard check + generic fallback
RECOMPILE_NS = 1.5e6  # one tier-2 recompile
LOAD_NS = 14.0  # one redundant header load an FDD elides
MATCH_NS = 35.0  # one generic matcher invocation an FDD elides
NODE_TAX_NS = 0.08  # icache/dispatch tax per materialized FDD node
HASH_NS = 650.0  # flow-hash dispatch per packet (sharded)
HANDOFF_NS = 1200.0  # per-batch SPSC handoff, amortized by capacity
QMEM_NS = 0.11  # queue memory footprint tax per capacity slot
PIPE_NS = 900.0  # process backend: pipe serialization per packet
CHUNK_SYNC_NS = 2.0e5  # process backend: per-chunk synchronization
SUPERVISE_NS = 6.0  # supervised dispatch indirection
TRIP_NS = 400.0  # watchdog probe cost, amortized by backoff
RECORD_NS = 120.0  # error-record bookkeeping, shrinks with budget


class CostModel:
    """Effective per-packet cost and MLFFR score for one workload under
    one execution regime (mode / workers / backend / supervision)."""

    def __init__(
        self, workload, mode="adaptive", workers=1, shard_backend="thread", supervised=False
    ):
        self.workload = workload
        self.mode = mode
        self.workers = int(workers)
        self.shard_backend = shard_backend
        self.supervised = bool(supervised)
        self._fdd_gain_cache = {}

    # -- pieces ------------------------------------------------------------

    def _fdd_gain_ns(self, node_budget):
        """Per-hot-packet ns the workload's diagrams save under
        ``node_budget``, from real :func:`build_diagram` expansions."""
        node_budget = int(node_budget)
        cached = self._fdd_gain_cache.get(node_budget)
        if cached is not None:
            return cached
        from ..runtime.fdd import build_diagram

        gain = 0.0
        for tree in self.workload.classifier_trees().values():
            plan = build_diagram(tree, node_budget=node_budget)
            if plan is None:
                continue  # over budget: the generic matcher stays
            per_packet = (
                plan.loads_saved / max(1, plan.paths) * LOAD_NS
                + MATCH_NS
                - plan.nodes * NODE_TAX_NS
            )
            gain += max(0.0, per_packet)
        self._fdd_gain_cache[node_budget] = gain
        return gain

    def effective_ns(self, params):
        """The phase-weighted per-packet cost (ns) of running the
        workload under ``params`` for :data:`HORIZON` packets."""
        base = self.workload.base_cpu_ns()
        hot_share = self.workload.hot_share
        cold_share = 1.0 - hot_share
        if self.mode == "reference":
            average = base
        else:
            fast = base * FAST_FACTOR
            if bool(params.get("batch", False)):
                fast *= BATCH_GAIN
            if self.mode == "fast":
                average = fast
            else:
                sample = int(params["adaptive.sample"])
                threshold = int(params["adaptive.threshold"])
                min_samples = int(params["adaptive.min_samples"])
                guard_miss_limit = int(params["adaptive.guard_miss_limit"])
                hot_fraction = float(params["adaptive.hot_fraction"])
                max_recompiles = int(params["adaptive.max_recompiles"])
                tier1 = fast + PROBE_NS / sample
                speculates = (
                    min_samples <= threshold / sample and hot_fraction <= hot_share
                )
                if not speculates:
                    # Never promotes: the dispatcher keeps sampling forever.
                    average = tier1
                else:
                    hot = fast * TIER2_GAIN
                    if self.mode == "fdd":
                        gain = self._fdd_gain_ns(params["fdd.node_budget"])
                        hot = max(fast * 0.35, hot - gain)
                    warm = hot_share * hot + cold_share * (fast + GUARD_MISS_NS)
                    cold_misses = cold_share * HORIZON
                    deopts = min(float(max_recompiles), cold_misses / guard_miss_limit)
                    tier1_packets = min(
                        float(HORIZON), threshold * (1.0 + deopts)
                    )
                    tier1_frac = tier1_packets / HORIZON
                    average = (
                        tier1_frac * tier1
                        + (1.0 - tier1_frac) * warm
                        + deopts * RECOMPILE_NS / HORIZON
                    )
        if self.workers > 1:
            from ..elements.devices import PollDevice

            capacity = int(params["shard.queue_capacity"])
            dispatch = (
                HASH_NS
                + HANDOFF_NS * PollDevice.BURST / capacity
                + QMEM_NS * capacity
            )
            if self.shard_backend == "process":
                chunk = int(params["shard.chunk_frames"])
                dispatch += PIPE_NS + CHUNK_SYNC_NS / chunk
            average = max(dispatch, average / self.workers)
        if self.supervised:
            backoff = int(params["supervisor.backoff"])
            error_budget = int(params["supervisor.error_budget"])
            average += SUPERVISE_NS + TRIP_NS / backoff + RECORD_NS / error_budget
        return average

    def score(self, params):
        """The fluid-model MLFFR (pps) under ``params`` — the cheap
        objective the search maximizes."""
        from ..sim.fluid import mlffr

        return mlffr(self.effective_ns(params), self.workload.platform)
