"""The search driver: seeded random + successive halving.

Parasol's recipe, sized for a cost-model objective: draw a seeded
random population over the valid region of the knob space, rank it
cheaply (the closed-form effective cost), halve into the fluid-model
MLFFR for the survivors, then validate the finalists on the
time-stepped hardware simulator and a byte-equivalence run against the
reference interpreter.  The shipped defaults are always candidate 0
and are exempt from halving, so the winner can never score below the
defaults — tuning is monotone by construction.

Inert knobs (shard capacities at one worker, the FDD budget outside
FDD mode, supervisor knobs when unsupervised) are canonicalized back
to their defaults before dedup, so the search never wastes budget
distinguishing assignments the runtime cannot tell apart.
"""

from __future__ import annotations

import math
import random

from .artifact import TunedProfile
from .objective import CostModel
from .space import default_space
from .workloads import workload as _workload

__all__ = ["SearchReport", "tune"]

#: Successive-halving keep fraction (1/eta survive each rung).
ETA = 3
#: Finalists validated on the expensive stage.
FINALISTS = 3


class SearchReport:
    """Per-rung accounting for one :func:`tune` run (how many
    candidates each stage saw and kept, plus the seed and budget that
    reproduce it)."""

    def __init__(self, seed, budget):
        self.seed = seed
        self.budget = budget
        self.rungs = []

    def rung(self, name, evaluated, kept):
        """Record one rung's evaluated/kept counts."""
        self.rungs.append({"name": name, "evaluated": evaluated, "kept": kept})

    def as_dict(self):
        """JSON-safe form (embedded in the artifact)."""
        return {"seed": self.seed, "budget": self.budget, "rungs": list(self.rungs)}


def _canonicalize(space, params, mode, workers, supervised):
    """Reset knobs the regime cannot express back to their defaults."""
    defaults = space.defaults()
    canonical = dict(params)
    canonical["shard.workers"] = workers
    if workers <= 1:
        for name in ("shard.queue_capacity", "shard.chunk_frames"):
            canonical[name] = defaults[name]
    if mode != "fdd":
        canonical["fdd.node_budget"] = defaults["fdd.node_budget"]
    if mode in ("reference", "fast"):
        for name in defaults:
            if name.startswith("adaptive."):
                canonical[name] = defaults[name]
    if mode == "reference":
        canonical["batch"] = False
    if not supervised:
        for name in defaults:
            if name.startswith("supervisor."):
                canonical[name] = defaults[name]
    return canonical


def _profile_for(mode, params, supervised):
    """The single-plane ExecutionProfile a finalist runs under."""
    from ..runtime import ExecutionProfile

    if mode == "adaptive":
        profile = ExecutionProfile.tiered()
    elif mode == "fdd":
        profile = ExecutionProfile.fdd()
    else:
        profile = ExecutionProfile(mode=mode)
    if supervised:
        profile = profile.with_supervision()
    return profile.with_tuning(params)


def _wire_identical(subject, mode, params, supervised, packets=512):
    """True when the tuned profile forwards byte-identical traffic to
    the reference interpreter on the workload (single plane; the shard
    contract is the fuzz oracle's job)."""
    from ..runtime import ExecutionProfile

    router, devices, frames = subject.build(ExecutionProfile.reference())
    reference = subject.drive(router, devices, frames, packets)
    router, devices, frames = subject.build(_profile_for(mode, params, supervised))
    tuned = subject.drive(router, devices, frames, packets)
    return tuned == reference


def _timestep_outcome(subject, effective_ns, score, params):
    """Run the finalist's operating point through the time-stepped
    simulator at 90% of its modeled MLFFR; returns a JSON-safe summary
    including whether the point held (approximately) loss-free."""
    from ..sim.timestep import simulate

    rate = 0.9 * score
    outcome = simulate(
        rate,
        effective_ns,
        subject.platform,
        duration_s=0.02,
        queue_capacity=params.get("shard.queue_capacity"),
    )
    return {
        "input_rate_pps": round(rate, 1),
        "sent_pps": round(outcome.sent, 1),
        "loss_free": outcome.sent >= 0.85 * rate,
    }


def tune(
    workload,
    mode="adaptive",
    seed=0,
    budget=24,
    workers=1,
    shard_backend="thread",
    supervised=False,
    validate=True,
):
    """Search the runtime knob space for ``workload``; returns a
    :class:`~repro.tune.artifact.TunedProfile`.

    ``workload`` is a name (``iprouter``/``firewall``) or a
    :class:`~repro.tune.workloads.Workload`.  ``budget`` bounds the
    population size; ``seed`` makes the whole run reproducible (same
    seed, same artifact).  ``validate=False`` skips the expensive
    finalist stage (the CI smoke path still gets the model-ranked
    winner)."""
    subject = _workload(workload) if isinstance(workload, str) else workload
    if budget < 1:
        raise ValueError("budget must be >= 1, not %d" % budget)
    space = default_space(mode=mode, workers=workers, supervised=supervised)
    model = CostModel(
        subject,
        mode=mode,
        workers=workers,
        shard_backend=shard_backend,
        supervised=supervised,
    )
    rng = random.Random(seed)
    report = SearchReport(seed, budget)

    # Population: defaults first (index 0 survives every rung), then
    # seeded random draws, canonicalized and deduplicated.
    candidates = [space.defaults()]
    seen = {repr(sorted(candidates[0].items()))}
    draws = 0
    while len(candidates) < budget and draws < budget * 20:
        draws += 1
        drawn = _canonicalize(
            space, space.sample(rng), mode, workers, supervised
        )
        space.validate(drawn)
        fingerprint = repr(sorted(drawn.items()))
        if fingerprint in seen:  # tiny effective spaces draw duplicates
            continue
        seen.add(fingerprint)
        candidates.append(drawn)

    # Rung 0: closed-form effective cost (cheapest; whole population).
    costs = [model.effective_ns(params) for params in candidates]
    keep = max(FINALISTS, int(math.ceil(len(candidates) / ETA)))
    ranked = sorted(range(len(candidates)), key=lambda index: (costs[index], index))
    survivors = sorted(set(ranked[:keep]) | {0})
    report.rung("effective-cost", len(candidates), len(survivors))

    # Rung 1: fluid-model MLFFR for the survivors.  On an I/O-bound
    # platform every sub-knee candidate forwards at the same loss-free
    # rate, so ties break toward CPU headroom (lower effective cost).
    scores = {index: model.score(candidates[index]) for index in survivors}
    rank_key = lambda index: (-scores[index], costs[index], index)  # noqa: E731
    ranked = sorted(survivors, key=rank_key)
    finalists = sorted(set(ranked[:FINALISTS]) | {0})
    report.rung("fluid-mlffr", len(survivors), len(finalists))

    # Rung 2: expensive validation — time-stepped simulation of the
    # operating point and byte-equivalence against the reference.
    validation = {}
    if validate:
        checked = []
        for index in finalists:
            params = candidates[index]
            if not _wire_identical(subject, mode, params, supervised):
                continue  # never emit a semantics-changing assignment
            checked.append(index)
        finalists = checked or [0]
        report.rung("validate", len(checked) or 1, len(finalists))

    winner = min(finalists, key=rank_key)
    params = candidates[winner]
    score = scores[winner]
    baseline = scores[0]
    if validate:
        validation = {
            "wire_identical": True,
            "timestep": _timestep_outcome(subject, costs[winner], score, params),
        }
    search = report.as_dict()
    search["effective_ns"] = round(costs[winner], 1)
    search["baseline_effective_ns"] = round(costs[0], 1)
    return TunedProfile(
        subject.name,
        subject.fingerprint(),
        mode,
        params,
        round(score, 1),
        baseline_score=round(baseline, 1),
        workers=workers,
        supervised=supervised,
        search=search,
        validation=validation,
    )
