"""Typed parameter domains and the tunable-knob registry.

The runtime modules each export a ``TUNABLES`` tuple of plain-dict
declarations next to the config class whose fields they describe
(:data:`repro.runtime.adaptive.TUNABLES` and friends).  This module
turns those declarations into :class:`Param` objects, assembles them
into a :class:`ParamSpace` with cross-parameter validity constraints
(e.g. the adaptive sampling stride must stay a power of two and below
the promotion threshold), and samples valid assignments for the search
driver.
"""

from __future__ import annotations

import math

__all__ = ["Param", "ParamSpace", "default_space"]

KINDS = ("int", "log_int", "choice")


def _is_power_of_two(value):
    return isinstance(value, int) and value >= 1 and value & (value - 1) == 0


class Param:
    """One tunable knob: a dotted name plus a typed domain.

    Kinds:

    - ``"int"``: uniform integer in ``[low, high]``;
    - ``"log_int"``: integer in ``[low, high]`` sampled uniformly in
      log2 space (right shape for thresholds and budgets spanning
      decades);
    - ``"choice"``: one of an explicit value list (the only kind that
      may carry non-integer values).
    """

    __slots__ = ("name", "kind", "default", "low", "high", "choices")

    def __init__(self, name, kind, default, low=None, high=None, choices=None):
        if kind not in KINDS:
            raise ValueError("kind must be one of %s, not %r" % ("/".join(KINDS), kind))
        self.name = name
        self.kind = kind
        self.default = default
        self.low = low
        self.high = high
        self.choices = list(choices) if choices is not None else None
        if kind == "choice":
            if not self.choices:
                raise ValueError("%s: choice domain needs choices" % name)
        else:
            if low is None or high is None or low > high:
                raise ValueError("%s: need low <= high, got %r..%r" % (name, low, high))
        if not self.valid(default):
            raise ValueError("%s: default %r outside its own domain" % (name, default))

    @classmethod
    def from_declaration(cls, declaration):
        """Build a Param from one runtime ``TUNABLES`` entry (a plain
        dict with ``name``/``kind``/``default`` plus domain fields)."""
        return cls(
            declaration["name"],
            declaration["kind"],
            declaration["default"],
            low=declaration.get("low"),
            high=declaration.get("high"),
            choices=declaration.get("choices"),
        )

    def valid(self, value):
        """True when ``value`` lies in this parameter's domain."""
        if self.kind == "choice":
            return any(value == choice and type(value) is type(choice) for choice in self.choices)
        if not isinstance(value, int) or isinstance(value, bool):
            return False
        return self.low <= value <= self.high

    def sample(self, rng):
        """One domain point drawn from ``rng`` (a ``random.Random``)."""
        if self.kind == "choice":
            return self.choices[rng.randrange(len(self.choices))]
        if self.kind == "int":
            return rng.randint(self.low, self.high)
        exponent = rng.uniform(math.log2(self.low), math.log2(self.high))
        return max(self.low, min(self.high, int(round(2.0 ** exponent))))

    def pin(self, value):
        """A copy of this parameter frozen to ``value`` (used to hold
        construction-time knobs such as the worker count fixed)."""
        return Param(self.name, "choice", value, choices=[value])

    def __repr__(self):
        if self.kind == "choice":
            return "Param(%s, choice%r)" % (self.name, tuple(self.choices))
        return "Param(%s, %s %d..%d)" % (self.name, self.kind, self.low, self.high)


class ParamSpace:
    """An ordered set of :class:`Param` plus validity constraints.

    Constraints are ``(description, predicate)`` pairs over a full
    assignment dict; :meth:`sample` rejection-samples until every
    predicate holds (falling back to the all-defaults assignment if the
    try budget runs out, which by construction is always valid)."""

    def __init__(self, params, constraints=()):
        self.params = {param.name: param for param in params}
        self.constraints = tuple(constraints)
        defaults = self.defaults()
        problem = self.check(defaults)
        if problem is not None:
            raise ValueError("default assignment is invalid: %s" % problem)

    def __len__(self):
        return len(self.params)

    def __iter__(self):
        return iter(self.params.values())

    def defaults(self):
        """The all-defaults assignment — the shipped constants."""
        return {name: param.default for name, param in self.params.items()}

    def check(self, assignment):
        """None when ``assignment`` is valid, else a human-readable
        description of the first violation."""
        for name, param in self.params.items():
            if name not in assignment:
                return "missing %s" % name
            if not param.valid(assignment[name]):
                return "%s=%r outside %r" % (name, assignment[name], param)
        for description, predicate in self.constraints:
            if not predicate(assignment):
                return description
        return None

    def validate(self, assignment):
        """Raise ``ValueError`` unless ``assignment`` is valid."""
        problem = self.check(assignment)
        if problem is not None:
            raise ValueError("invalid assignment: %s" % problem)
        return assignment

    def sample(self, rng, max_tries=64):
        """One valid assignment from ``rng`` (rejection sampling)."""
        for _ in range(max_tries):
            assignment = {
                name: param.sample(rng) for name, param in self.params.items()
            }
            if self.check(assignment) is None:
                return assignment
        return self.defaults()


def _runtime_declarations():
    from ..runtime import adaptive, fdd, profile, shard, supervisor

    declarations = []
    for module in (adaptive, fdd, shard, supervisor, profile):
        declarations.extend(module.TUNABLES)
    return declarations


def default_space(mode="adaptive", workers=1, supervised=False):
    """The runtime's full knob space for one execution regime.

    Collects every ``TUNABLES`` declaration the runtime modules export,
    pins ``shard.workers`` to the requested worker count (worker count
    is construction-time: the tuner models it but never re-shards a
    profile), and attaches the cross-parameter constraints:

    - ``adaptive.sample`` must be a power of two (the dispatcher masks,
      it does not divide);
    - ``adaptive.sample`` and ``adaptive.min_samples`` must not exceed
      ``adaptive.threshold`` (promotion must be reachable).

    ``mode`` and ``supervised`` do not change the space's shape — inert
    knobs are canonicalized back to their defaults by the search driver
    — but are accepted here so call sites read naturally.
    """
    del mode, supervised  # shape-invariant; the driver canonicalizes
    params = []
    for declaration in _runtime_declarations():
        param = Param.from_declaration(declaration)
        if param.name == "shard.workers":
            param = param.pin(workers)
        params.append(param)
    constraints = (
        (
            "adaptive.sample must be a power of two",
            lambda a: _is_power_of_two(a["adaptive.sample"]),
        ),
        (
            "adaptive.sample must not exceed adaptive.threshold",
            lambda a: a["adaptive.sample"] <= a["adaptive.threshold"],
        ),
        (
            "adaptive.min_samples must not exceed adaptive.threshold",
            lambda a: a["adaptive.min_samples"] <= a["adaptive.threshold"],
        ),
    )
    return ParamSpace(params, constraints)
