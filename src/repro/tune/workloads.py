"""The standard tuning subjects: iprouter and firewall under skew.

A :class:`Workload` bundles everything the tuner needs about one
configuration: a graph (for the fingerprint the artifact is addressed
by), a router builder taking an :class:`~repro.runtime.profile.ExecutionProfile`,
a deterministic skewed frame generator (the same 90/10 split the
adaptive benchmarks use), the metered reference per-packet cost the
cost model calibrates against, and the live classifier trees the FDD
term expands.  Everything here is deterministic — the cycle meter is a
cost model, not a stopwatch — so the same seed always reproduces the
same search.
"""

from __future__ import annotations

from ..elements.devices import PollDevice

__all__ = ["WORKLOADS", "Workload", "workload"]

SKEW = 10  # 1 in SKEW packets takes the cold path (hot share 0.9)


class Workload:
    """One named tuning subject (see module docstring)."""

    def __init__(self, name, graph_factory, builder, platform=None):
        self.name = name
        self._graph_factory = graph_factory
        self._builder = builder
        if platform is None:
            from ..sim.platforms import P0

            platform = P0
        self.platform = platform
        self.hot_share = 1.0 - 1.0 / SKEW
        self._base_cpu_ns = None
        self._trees = None

    def graph(self):
        """A fresh copy of the workload's configuration graph."""
        return self._graph_factory()

    def fingerprint(self):
        """The graph's content fingerprint (artifact addressing)."""
        return self.graph().fingerprint()

    def build(self, profile, metered=False):
        """``(router, devices, frames)`` running under ``profile``;
        ``frames(count)`` yields the deterministic skewed workload as
        ``(device_name, frame)`` pairs."""
        return self._builder(profile, metered)

    def drive(self, router, devices, frames, count):
        """Feed ``count`` workload frames and run the router to
        quiescence; returns the transmitted frames per device."""
        for device_name, frame in frames(count):
            devices[device_name].receive_frame(frame)
        router.run_tasks(count // PollDevice.BURST + 16)
        return {name: list(device.transmitted) for name, device in devices.items()}

    def base_cpu_ns(self, packets=2000, warmup=64):
        """Metered reference per-packet cost (ns), PIO overhead
        included — the calibration anchor for the cost model.  Cached;
        deterministic."""
        if self._base_cpu_ns is None:
            from ..runtime import ExecutionProfile

            router, devices, frames = self.build(
                ExecutionProfile.reference(), metered=True
            )
            self.drive(router, devices, frames, warmup)
            router.meter.__init__()
            sent_before = sum(len(d.transmitted) for d in devices.values())
            self.drive(router, devices, frames, packets)
            forwarded = sum(len(d.transmitted) for d in devices.values()) - sent_before
            report = router.meter.report(
                max(1, forwarded), clock_mhz=self.platform.clock_mhz
            )
            self._base_cpu_ns = report.true_total_ns + self.platform.pio_overhead_ns
        return self._base_cpu_ns

    def classifier_trees(self):
        """``{name: tree}`` for the configuration's compilable
        classifiers — what the FDD objective term expands under a
        candidate node budget.  Cached."""
        if self._trees is None:
            from ..runtime import ExecutionProfile
            from ..runtime.fdd import router_trees

            router, _devices, _frames = self.build(ExecutionProfile.reference())
            self._trees = router_trees(router)
        return self._trees

    def __repr__(self):
        return "Workload(%s)" % self.name


def _iprouter_builder(profile, metered=False):
    from ..sim.testbed import HOST_ETHERS, Testbed, host_ip

    testbed = Testbed(2)
    meter = None
    if metered:
        from ..sim.cpu import CycleMeter

        meter = CycleMeter()
    router, devices = testbed.build_router(
        testbed.variant_graph("base"), meter=meter, profile=profile
    )

    def frames(count):
        from ..net.headers import build_ether_udp_packet

        result = []
        for seq in range(count):
            rx = 1 if seq % SKEW == SKEW - 1 else 0
            tx = (rx + 1) % 2
            result.append(
                (
                    testbed.interfaces[rx].device,
                    build_ether_udp_packet(
                        HOST_ETHERS[rx],
                        testbed.interfaces[rx].ether,
                        host_ip(rx),
                        host_ip(tx),
                        src_port=1000 + seq % 7,
                        dst_port=2000,
                        payload=b"\x00" * 14,
                        identification=seq & 0xFFFF,
                    ),
                )
            )
        return result

    return router, devices, frames


def _iprouter_graph():
    from ..sim.testbed import Testbed

    return Testbed(2).variant_graph("base")


def _dns_query_packet():
    from ..net.headers import IP_PROTO_UDP, IPHeader

    ip = IPHeader(
        src="10.0.0.99", dst="170.0.0.2", protocol=IP_PROTO_UDP, total_length=36
    )
    udp = (
        (3456).to_bytes(2, "big")
        + (53).to_bytes(2, "big")
        + (16).to_bytes(2, "big")
        + bytes(2)
        + bytes(8)
    )
    return ip.pack() + udp


def _firewall_builder(profile, metered=False):
    from ..configs.firewall import dns5_packet, firewall_graph
    from ..elements.devices import LoopbackDevice
    from ..elements.runtime import Router

    devices = {
        "eth0": LoopbackDevice("eth0", tx_capacity=1 << 30),
        "eth1": LoopbackDevice("eth1", tx_capacity=1 << 30),
    }
    meter = None
    if metered:
        from ..sim.cpu import CycleMeter

        meter = CycleMeter()
    router = Router(firewall_graph(), devices=devices, meter=meter, profile=profile)
    ether = b"\x00\x50\x56\x00\x00\x01" + b"\x00\x50\x56\x00\x00\x02" + b"\x08\x00"
    hot = ether + dns5_packet()
    cold = ether + _dns_query_packet()

    def frames(count):
        return [
            ("eth0", cold if seq % SKEW == SKEW - 1 else hot) for seq in range(count)
        ]

    return router, devices, frames


def _firewall_graph():
    from ..configs.firewall import firewall_graph

    return firewall_graph()


WORKLOADS = {
    "iprouter": lambda: Workload("iprouter", _iprouter_graph, _iprouter_builder),
    "firewall": lambda: Workload("firewall", _firewall_graph, _firewall_builder),
}


def workload(name):
    """A fresh :class:`Workload` by name (``iprouter``/``firewall``)."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            "unknown workload %r (want one of %s)" % (name, "/".join(sorted(WORKLOADS)))
        ) from None
    return factory()
