"""Differential fuzzing and verification (`click-fuzz`).

Four execution modes (reference interpreter, static fast path, batched
fast path, tiered adaptive recompilation) and the `paper` optimization
pipeline all promise the same observable behaviour for any legal
configuration.  This package hunts violations of that promise: it
generates (configuration, traffic) cases, runs every case through the
full mode matrix on both the unoptimized and the pipeline-optimized
graph, compares transmitted bytes and element counters, and shrinks any
divergence to a minimal self-contained repro file.

See docs/VERIFY.md for the architecture and the replay workflow.
"""

from .chaos import compare_chaos, seeded_plan
from .genconfig import generate_case, stock_cases
from .oracle import MODES, compare_case, run_case
from .shrink import load_repro, shrink_case, write_repro

__all__ = [
    "MODES",
    "compare_case",
    "compare_chaos",
    "generate_case",
    "load_repro",
    "run_case",
    "seeded_plan",
    "shrink_case",
    "stock_cases",
    "write_repro",
]
