"""``click-chaos``: seeded chaos testing of the supervised runtime.

The differential fuzzer (:mod:`repro.verify.cli`) hunts divergence on
*healthy* runs.  This harness hunts it on *faulted* runs: a seeded
:class:`repro.sim.faults.FaultPlan` flaps devices, corrupts frames,
raises injected exceptions inside elements and attacks the codegen
cache while a stock trace plays — under every execution mode, each
supervised by :class:`repro.runtime.supervisor.Supervisor`.

The contract being checked is the resilience guarantee:

- **no crash** — a supervised router survives any plan; an escaped
  exception in any mode is a harness failure (kind ``crash``);
- **byte equivalence** — every mode transmits byte-identical frames.
  Only transmitted bytes compare (unlike click-fuzz, counters do not:
  the supervisor's drop points add per-mode bookkeeping, and fault
  wrappers perturb handler call counts in mode-specific places — the
  wire is the contract).

Chaos runs skip the optimized axis on purpose: the optimizers rename
and merge elements, so a plan's element names would silently stop
matching.

Everything is deterministic: plans derive from ``--seed``, fault ticks
advance once per ``["run"]`` trace event, and count-based faults hit
the same packet in every mode.

``shard-*`` modes pull the sharded data plane into the torture matrix.
Two rules change with them: the plan must be *sharded-safe*
(``FaultPlan.seeded(..., sharded=True)`` replaces count-ordered
element errors — which a partitioned plane cannot order — with a
``worker_crash`` fault, the device-failure analog that kills one shard
worker mid-trace and forces a journal replay; ``worker_crash`` is a
no-op on plain routers, so one plan stays valid for the whole matrix),
and the wire check weakens to the sharding contract (per-flow
byte-identical, per-device multiset-identical).

``--recovery`` switches to the *self-healing* harness
(:mod:`repro.runtime.recovery`): instead of the mode matrix, each case
runs three scripted outage scenarios — a ``crash-storm`` (repeated
worker kills, one landing mid-commit inside a two-phase update), a
``hang`` (a wedged worker the watchdog/heartbeat deadline must catch),
and a ``crash-loop`` (a poison frame that kills its shard on every
replay until quarantine strips it) — against the sharded plane under a
recovery policy, with zero operator intervention.  The wire check is
the degraded contract
(:func:`repro.verify.oracle.degraded_transmit_difference`): no frame
lost or duplicated, strict per-flow order except for flows the outage
actually re-homed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..sim.faults import FaultPlan
from .genconfig import stock_cases
from .oracle import (
    MODES,
    SHARD_MODES,
    degraded_transmit_difference,
    device_names,
    first_transmit_difference,
    mode_profile,
    overflow_drops,
    run_case,
    sharded_transmit_difference,
)

#: Element classes seeded plans never target: device drivers (their
#: faults come from the device side of the plan) and sinks too trivial
#: to fail interestingly.
_PLAN_SKIP_CLASSES = ("PollDevice", "ToDevice")


def element_candidates(config_text):
    """Element names a seeded plan may inject errors into, from the
    flattened graph (stable across modes; excludes device drivers)."""
    from ..core.toolchain import load_config

    graph = load_config(config_text, "<chaos>")
    if graph.element_classes:
        from ..core.flatten import flatten

        graph = flatten(graph)
    return sorted(
        name
        for name, decl in graph.elements.items()
        if decl.class_name not in _PLAN_SKIP_CLASSES
    )


def seeded_plan(case, seed, sharded=False):
    """The deterministic fault plan for one case: drawn from ``seed``
    and the case's own devices, elements, and trace shape.  With
    ``sharded=True`` the plan is sharded-safe (worker crashes instead
    of count-ordered element errors) and remains valid — the crash is a
    no-op — on plain routers."""
    events = case["events"]
    ticks = sum(1 for event in events if event[0] == "run")
    frames = sum(1 for event in events if event[0] == "frame")
    return FaultPlan.seeded(
        seed,
        devices=device_names(case["config"]),
        elements=element_candidates(case["config"]),
        ticks=max(1, ticks),
        events=max(1, frames),
        sharded=sharded,
    )


def compare_chaos(case, plan, modes=None):
    """Run one case under ``plan`` in every mode, supervised, and check
    the resilience contract.

    Returns a JSON-safe dict: ``status`` is ``"ok"``, ``"divergence"``
    (transmitted bytes differ), or ``"crash"`` (an exception escaped the
    supervisor in some mode); ``failures`` lists each violation;
    ``reports`` carries every mode's resilience report."""
    modes = [m for m in (modes or list(MODES)) if m in MODES or m in SHARD_MODES]
    if "reference" not in modes:
        modes = ["reference"] + modes
    failures = []
    skips = []
    reports = {}
    reference = None
    for mode in modes:
        routers = []
        status, payload = run_case(
            case, mode, plan=plan, supervised=True, collect=routers.append
        )
        if routers and getattr(routers[-1], "is_sharded", False):
            # The sharded plane's report aggregates its shards'
            # supervisors (plus crash/replay counts).
            reports[mode] = routers[-1].report().as_dict()
        elif routers and getattr(routers[-1], "supervisor", None) is not None:
            reports[mode] = routers[-1].supervisor.report().as_dict()
        if status == "error":
            failures.append(
                {
                    "mode": mode,
                    "kind": "crash",
                    "detail": "%s: %s" % (payload[0], payload[1]),
                }
            )
            continue
        if mode == "reference":
            reference = payload
            continue
        if reference is None:
            continue  # reference crashed; already recorded
        transmit_diff = (
            sharded_transmit_difference
            if mode in SHARD_MODES
            else first_transmit_difference
        )
        diff = transmit_diff(reference["transmitted"], payload["transmitted"])
        if diff is not None:
            drops = max(
                overflow_drops(reference["counters"]),
                overflow_drops(payload["counters"]),
            )
            if mode in SHARD_MODES and drops:
                # Out of the shard contract (see compare_case): per-shard
                # queue copies scale aggregate capacity, so which packets
                # overflow under fault pressure is load-dependent.
                skips.append(
                    {
                        "mode": mode,
                        "reason": "lossy-overflow: %d queue drop(s) (%s)"
                        % (drops, diff),
                    }
                )
                continue
            failures.append({"mode": mode, "kind": "transmitted", "detail": diff})
    if any(f["kind"] == "crash" for f in failures):
        status = "crash"
    elif failures:
        status = "divergence"
    else:
        status = "ok"
    return {
        "status": status,
        "failures": failures,
        "skips": skips,
        "reports": reports,
        "plan": plan.to_dict(),
    }


# -- self-healing (recovery) harness -------------------------------------------

RECOVERY_PLAN_KINDS = ("crash-storm", "hang", "crash-loop")
RECOVERY_WORKERS = 4
#: Scheduler runs appended to every recovery trace so backoff restarts,
#: buffered redelivery, and quarantine all complete inside the trace.
_RECOVERY_DRAIN_RUNS = 12


def _recovery_config(policy):
    """The :class:`~repro.runtime.recovery.RecoveryConfig` recovery
    scenarios run under: tight detection deadlines (the harness *wants*
    hangs caught inside the trace) and a short backoff ceiling so every
    restart lands within the appended drain runs."""
    from ..runtime.recovery import RecoveryConfig

    return RecoveryConfig(
        policy=policy,
        restart_budget=5,
        backoff_base=1,
        backoff_factor=2.0,
        backoff_limit=4,
        jitter=1,
        watchdog_timeout=0.75,
        heartbeat_timeout=2.0,
        prepare_timeout=2.0,
    )


def recovery_trace(case):
    """The case's trace adapted for recovery runs: one ``update`` event
    (re-applying the case's own configuration) inserted at the midpoint
    run, so a phase="commit" worker kill has a live two-phase commit to
    land in, and trailing ``run`` drains appended so backoff restarts
    and buffered redelivery finish inside the trace."""
    events = [list(event) for event in case["events"]]
    runs = sum(1 for event in events if event[0] == "run")
    halfway, seen, insert_at = max(1, runs // 2), 0, len(events)
    for position, event in enumerate(events):
        if event[0] == "run":
            seen += 1
            if seen >= halfway:
                insert_at = position + 1
                break
    events.insert(insert_at, ["update", case["config"]])
    events.extend([["run", 1] for _ in range(_RECOVERY_DRAIN_RUNS)])
    return events


def recovery_plan(case, kind, seed, workers=RECOVERY_WORKERS):
    """The deterministic fault plan for one self-healing scenario.

    Returns ``(plan, poison_hex)``.  ``poison_hex`` is the armed frame
    for ``crash-loop`` (None otherwise): quarantine drops it from the
    degraded plane's traffic, so the healthy reference must drop it
    from its trace too before the wire comparison.
    """
    import random

    events = recovery_trace(case)
    ticks = sum(1 for event in events if event[0] == "run")
    rng = random.Random("%d/%s/%s" % (seed, kind, case["name"]))
    active = max(4, ticks - _RECOVERY_DRAIN_RUNS)
    if kind == "crash-storm":
        spread = max(1, active // 4)
        faults = [
            {"kind": "worker_kill", "at": spread, "worker": 1 % workers},
            {"kind": "worker_kill", "at": spread * 2, "worker": 2 % workers},
            {"kind": "worker_kill", "at": spread * 3, "worker": 3 % workers},
            # ``at`` counts committed updates (1-based): this one fires
            # inside the inserted update's stage->commit window.
            {"kind": "worker_kill", "at": 1, "phase": "commit", "worker": 0},
        ]
        return FaultPlan(faults, seed=seed, name="recovery-crash-storm"), None
    if kind == "hang":
        faults = [
            {
                "kind": "worker_hang",
                "at": max(1, active // 3),
                "worker": rng.randrange(workers),
                "seconds": 30.0,
            }
        ]
        return FaultPlan(faults, seed=seed, name="recovery-hang"), None
    if kind == "crash-loop":
        frames = [event[2] for event in events if event[0] == "frame"]
        if not frames:
            raise ValueError("case %r has no frame events to poison" % case["name"])
        counts = {}
        for hex_frame in frames:
            counts[hex_frame] = counts.get(hex_frame, 0) + 1
        singles = sorted(set(h for h in frames if counts[h] == 1))
        poison = rng.choice(singles or sorted(set(frames)))
        faults = [{"kind": "worker_poison", "at": 0, "frame": poison}]
        return FaultPlan(faults, seed=seed, name="recovery-crash-loop"), poison
    raise ValueError(
        "unknown recovery plan kind %r (choose from %s)"
        % (kind, ", ".join(RECOVERY_PLAN_KINDS))
    )


def _affected_predicate(affected_keys):
    """A predicate over *output* flow keys
    (:func:`~repro.runtime.flowhash.output_flow_key` tuples) matching
    every flow whose *dispatch* key the recovery manager re-homed.

    Dispatch keys are ``flow_key`` bytes; output groups refine them, so
    the mapping is reconstructed per group kind.  Fragment groups lose
    the original datagram's ports, so they match on the portless
    10-byte prefix — conservative (may mark a sibling flow affected,
    weakening its check to multiset-only) but never misses a flow that
    really was re-homed.
    """
    keys = {bytes(key) for key in affected_keys}
    prefixes = {key[:10] for key in keys if key[:1] == b"\x04"}

    def predicate(flow):
        kind = flow[0]
        if kind == "ip":
            key = b"\x04" + bytes((flow[1],)) + flow[2]
            if len(flow) > 3:
                key += flow[3]
            return key in keys or key[:10] in prefixes
        if kind == "frag":
            return (b"\x04" + bytes((flow[2],)) + flow[1])[:10] in prefixes
        if kind == "icmperr":
            proto, addrs, ports = flow[1]
            key = b"\x04" + bytes((proto,)) + addrs + ports
            return key in keys or key[:10] in prefixes
        return bytes(flow[1][:14]) in keys
    return predicate


def _recovery_shortfall(kind, checks):
    """The scenario's own success bar, beyond the wire contract: did
    the machinery under test actually fire?"""
    if kind == "crash-storm":
        if checks["detections"] < 3:
            return "crash-storm: only %d worker death(s) detected (expected >= 3)" % checks["detections"]
        if checks["restarts"] < 1:
            return "crash-storm: no shard ever restarted"
    elif kind == "hang":
        if checks["detections"] < 1:
            return "hang: the wedged worker was never detected"
        if checks["restarts"] < 1:
            return "hang: the wedged worker never restarted"
    elif kind == "crash-loop":
        if checks["quarantined"] < 1:
            return "crash-loop: the poison frame was never quarantined"
        if checks["restarts"] < 1:
            return "crash-loop: the poisoned shard never came back"
    return None


def compare_recovery(case, kind, policy="resteer", backend="thread", seed=1, workers=RECOVERY_WORKERS):
    """Run one self-healing scenario and check the degraded contract.

    The faulted sharded plane (``workers`` shards on ``backend``, with
    automatic recovery under ``policy``) must transmit the same frame
    multiset as a *healthy* single-plane reference — byte-identical per
    flow except where re-steering is allowed to break order — and the
    scenario's recovery machinery (detection, restart, quarantine) must
    actually have fired.  Zero operator intervention: nobody calls
    ``crash_worker``; the recovery manager does all the healing.

    Returns a JSON-safe dict shaped like :func:`compare_chaos` results,
    plus ``kind``/``policy``/``backend``/``checks`` and the sharded
    plane's full report.
    """
    if policy not in ("buffer", "resteer"):
        raise ValueError(
            "recovery scenarios need a non-fatal policy (buffer or resteer), not %r" % policy
        )
    plan, poison_hex = recovery_plan(case, kind, seed, workers=workers)
    events = recovery_trace(case)
    recovery_case = dict(case, events=events)
    reference_case = dict(
        case,
        events=[
            event
            for event in events
            if not (poison_hex is not None and event[0] == "frame" and event[2] == poison_hex)
        ],
    )
    mode = "shard-%s" % backend
    failures = []
    skips = []
    checks = {}
    report = None

    ref_status, reference = run_case(reference_case, "reference")
    if ref_status == "error":
        failures.append(
            {"mode": "reference", "kind": "crash", "detail": "%s: %s" % (reference[0], reference[1])}
        )

    profile = (
        mode_profile("fast")
        .with_workers(workers, backend)
        .with_recovery(config=_recovery_config(policy))
    )
    routers = []
    status, payload = run_case(
        recovery_case, "fast", plan=plan, profile=profile, collect=routers.append
    )
    affected = None
    if routers:
        router = routers[-1]
        report = router.report().as_dict()
        manager = getattr(router, "_recovery", None)
        if manager is not None and manager.affected_flows:
            affected = _affected_predicate(manager.affected_flows)
    if status == "error":
        failures.append(
            {"mode": mode, "kind": "crash", "detail": "%s: %s" % (payload[0], payload[1])}
        )
    elif ref_status == "ok":
        diff = degraded_transmit_difference(
            reference["transmitted"], payload["transmitted"], affected=affected
        )
        if diff is not None:
            drops = max(
                overflow_drops(reference["counters"]),
                overflow_drops(payload["counters"]),
            )
            if drops:
                # Same escape hatch as compare_chaos: per-shard queue
                # copies make overflow membership load-dependent.
                skips.append(
                    {
                        "mode": mode,
                        "reason": "lossy-overflow: %d queue drop(s) (%s)" % (drops, diff),
                    }
                )
            else:
                failures.append({"mode": mode, "kind": "transmitted", "detail": diff})

    if report is not None:
        recovery_report = report.get("recovery") or {}
        checks = {
            "detections": recovery_report.get("detections", 0),
            "restarts": recovery_report.get("restarts", 0),
            "restart_attempts": recovery_report.get("restart_attempts", 0),
            "benched": len(recovery_report.get("benched", [])),
            "quarantined": len(recovery_report.get("quarantined", [])),
            "frames_resteered": recovery_report.get("frames_resteered", 0),
            "frames_buffered": recovery_report.get("frames_buffered", 0),
            "updates_recommitted": recovery_report.get("updates_recommitted", 0),
        }
        if not any(f["kind"] == "crash" for f in failures):
            shortfall = _recovery_shortfall(kind, checks)
            if shortfall:
                failures.append({"mode": mode, "kind": "recovery", "detail": shortfall})
    if any(f["kind"] == "crash" for f in failures):
        status = "crash"
    elif failures:
        status = "divergence"
    else:
        status = "ok"
    return {
        "status": status,
        "kind": kind,
        "policy": policy,
        "backend": backend,
        "failures": failures,
        "skips": skips,
        "checks": checks,
        "report": report,
        "plan": plan.to_dict(),
    }


# -- CLI -----------------------------------------------------------------------

_CONFIG_CHOICES = ("iprouter", "firewall", "both")


def _parser():
    parser = argparse.ArgumentParser(
        description="Chaos harness: replay seeded fault plans (device "
        "flaps, frame corruption, injected element errors, cache "
        "attacks) against the supervised router under every execution "
        "mode and verify it neither crashes nor diverges on the wire."
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="seed for fault-plan generation"
    )
    parser.add_argument(
        "--config",
        default="both",
        choices=_CONFIG_CHOICES,
        help="which stock configuration(s) to torture (default: %(default)s)",
    )
    parser.add_argument(
        "--modes",
        default=",".join(MODES),
        metavar="LIST",
        help="comma-separated mode matrix (default: %(default)s)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=96,
        metavar="N",
        help="traffic events per case trace",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="replay this fault-plan JSON instead of seeding one "
        "(a single plan, or a click-chaos --plan-out mapping)",
    )
    parser.add_argument(
        "--plan-out",
        default=None,
        metavar="FILE",
        help="write the per-case fault plans here (replayable via --plan)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON run report here (- for stderr)",
    )
    parser.add_argument(
        "--recovery",
        default=None,
        choices=("buffer", "resteer", "both"),
        metavar="POLICY",
        help="run the self-healing harness instead of the mode matrix: "
        "crash-storm/hang/crash-loop scenarios against the sharded plane "
        "under this recovery policy (buffer, resteer, or both); --modes "
        "is ignored in this mode",
    )
    parser.add_argument(
        "--recovery-backend",
        default="thread",
        choices=("thread", "process", "both"),
        help="shard backend(s) the recovery scenarios run on "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--recovery-kinds",
        default=",".join(RECOVERY_PLAN_KINDS),
        metavar="LIST",
        help="comma-separated recovery scenarios (default: %(default)s)",
    )
    return parser


def _parse_modes(spec):
    modes = [m.strip() for m in spec.split(",") if m.strip()]
    unknown = [m for m in modes if m not in MODES and m not in SHARD_MODES]
    if unknown:
        raise SystemExit(
            "click-chaos: unknown mode(s) %s (choose from %s)"
            % (", ".join(unknown), ", ".join(list(MODES) + list(SHARD_MODES)))
        )
    return modes


def _cases(args):
    wanted = {
        "iprouter": ("iprouter-mtu1500",),
        "firewall": ("firewall",),
        "both": ("iprouter-mtu1500", "firewall"),
    }[args.config]
    stock = {case["name"]: case for case in stock_cases(events_count=args.events)}
    return [stock[name] for name in wanted]


def _load_plans(path, cases):
    """A --plan file is either one FaultPlan (applied to every case) or
    a --plan-out mapping ``{"plans": {case name: plan}}``."""
    with open(path) as handle:
        data = json.load(handle)
    if "plans" in data:
        by_name = data["plans"]
        return {
            case["name"]: FaultPlan.from_dict(by_name[case["name"]])
            for case in cases
            if case["name"] in by_name
        }
    plan = FaultPlan.from_dict(data)
    return {case["name"]: plan for case in cases}


def _write_json(dest, payload):
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if dest == "-":
        sys.stderr.write(text)
    else:
        with open(dest, "w") as handle:
            handle.write(text)


def _recovery_main(args, cases):
    """The --recovery branch: every case x scenario x policy x backend,
    each checked against the degraded contract with zero operator
    intervention."""
    policies = ("buffer", "resteer") if args.recovery == "both" else (args.recovery,)
    backends = (
        ("thread", "process")
        if args.recovery_backend == "both"
        else (args.recovery_backend,)
    )
    kinds = [k.strip() for k in args.recovery_kinds.split(",") if k.strip()]
    unknown = [k for k in kinds if k not in RECOVERY_PLAN_KINDS]
    if unknown:
        raise SystemExit(
            "click-chaos: unknown recovery scenario(s) %s (choose from %s)"
            % (", ".join(unknown), ", ".join(RECOVERY_PLAN_KINDS))
        )
    started = time.time()
    records = []
    counts = {"ok": 0, "divergence": 0, "crash": 0}
    for case in cases:
        for kind in kinds:
            for policy in policies:
                for backend in backends:
                    result = compare_recovery(
                        case, kind, policy=policy, backend=backend, seed=args.seed
                    )
                    counts[result["status"]] += 1
                    records.append({"name": case["name"], **result})
                    label = "%s/%s/%s/%s" % (case["name"], kind, policy, backend)
                    if result["status"] == "ok":
                        checks = result["checks"]
                        print(
                            "click-chaos: %s healed: %d detection(s), "
                            "%d restart(s), %d benched, %d quarantined"
                            % (
                                label,
                                checks.get("detections", 0),
                                checks.get("restarts", 0),
                                checks.get("benched", 0),
                                checks.get("quarantined", 0),
                            )
                        )
                    else:
                        print(
                            "click-chaos: %s %s: %s"
                            % (
                                label,
                                result["status"].upper(),
                                result["failures"][0]["detail"],
                            )
                        )
    summary = dict(counts)
    summary["scenarios"] = len(records)
    summary["seconds"] = round(time.time() - started, 3)
    print(
        "click-chaos: %(scenarios)d recovery scenario(s): %(ok)d healed, "
        "%(divergence)d divergent, %(crash)d crashed in %(seconds).1fs" % summary
    )
    if args.plan_out:
        _write_json(
            args.plan_out,
            {
                "seed": args.seed,
                "plans": {
                    "%s/%s/%s/%s"
                    % (r["name"], r["kind"], r["policy"], r["backend"]): r["plan"]
                    for r in records
                },
            },
        )
    if args.report:
        _write_json(
            args.report,
            {
                "seed": args.seed,
                "config": args.config,
                "recovery": args.recovery,
                "backends": list(backends),
                "kinds": list(kinds),
                "summary": summary,
                "scenarios": records,
            },
        )
    return 0 if not (counts["divergence"] or counts["crash"]) else 1


def main(argv=None):
    """The ``click-chaos`` entry point; returns the process exit status
    (0 resilient, 1 crash or divergence, 2 usage error via argparse)."""
    args = _parser().parse_args(argv)
    cases = _cases(args)
    if args.recovery:
        return _recovery_main(args, cases)
    modes = _parse_modes(args.modes)
    sharded = any(mode in SHARD_MODES for mode in modes)
    if args.plan:
        plans = _load_plans(args.plan, cases)
    else:
        plans = {
            case["name"]: seeded_plan(case, args.seed, sharded=sharded)
            for case in cases
        }

    started = time.time()
    records = []
    counts = {"ok": 0, "divergence": 0, "crash": 0}
    for case in cases:
        plan = plans.get(case["name"])
        if plan is None:
            continue
        result = compare_chaos(case, plan, modes=modes)
        counts[result["status"]] += 1
        records.append({"name": case["name"], **result})
        if result["status"] == "ok":
            print(
                "click-chaos: %s survived %d fault(s) across %d mode(s)"
                % (case["name"], len(plan), len(modes))
            )
        else:
            print(
                "click-chaos: %s %s: %s"
                % (
                    case["name"],
                    result["status"].upper(),
                    result["failures"][0]["detail"],
                )
            )

    summary = dict(counts)
    summary["cases"] = len(records)
    summary["seconds"] = round(time.time() - started, 3)
    print(
        "click-chaos: %(cases)d case(s): %(ok)d resilient, "
        "%(divergence)d divergent, %(crash)d crashed in %(seconds).1fs" % summary
    )
    if args.plan_out:
        _write_json(
            args.plan_out,
            {"seed": args.seed, "plans": {name: plan.to_dict() for name, plan in plans.items()}},
        )
    if args.report:
        _write_json(
            args.report,
            {
                "seed": args.seed,
                "config": args.config,
                "mode_matrix": modes,
                "summary": summary,
                "cases": records,
            },
        )
    return 0 if not (counts["divergence"] or counts["crash"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
