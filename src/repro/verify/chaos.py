"""``click-chaos``: seeded chaos testing of the supervised runtime.

The differential fuzzer (:mod:`repro.verify.cli`) hunts divergence on
*healthy* runs.  This harness hunts it on *faulted* runs: a seeded
:class:`repro.sim.faults.FaultPlan` flaps devices, corrupts frames,
raises injected exceptions inside elements and attacks the codegen
cache while a stock trace plays — under every execution mode, each
supervised by :class:`repro.runtime.supervisor.Supervisor`.

The contract being checked is the resilience guarantee:

- **no crash** — a supervised router survives any plan; an escaped
  exception in any mode is a harness failure (kind ``crash``);
- **byte equivalence** — every mode transmits byte-identical frames.
  Only transmitted bytes compare (unlike click-fuzz, counters do not:
  the supervisor's drop points add per-mode bookkeeping, and fault
  wrappers perturb handler call counts in mode-specific places — the
  wire is the contract).

Chaos runs skip the optimized axis on purpose: the optimizers rename
and merge elements, so a plan's element names would silently stop
matching.

Everything is deterministic: plans derive from ``--seed``, fault ticks
advance once per ``["run"]`` trace event, and count-based faults hit
the same packet in every mode.

``shard-*`` modes pull the sharded data plane into the torture matrix.
Two rules change with them: the plan must be *sharded-safe*
(``FaultPlan.seeded(..., sharded=True)`` replaces count-ordered
element errors — which a partitioned plane cannot order — with a
``worker_crash`` fault, the device-failure analog that kills one shard
worker mid-trace and forces a journal replay; ``worker_crash`` is a
no-op on plain routers, so one plan stays valid for the whole matrix),
and the wire check weakens to the sharding contract (per-flow
byte-identical, per-device multiset-identical).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..sim.faults import FaultPlan
from .genconfig import stock_cases
from .oracle import (
    MODES,
    SHARD_MODES,
    device_names,
    first_transmit_difference,
    overflow_drops,
    run_case,
    sharded_transmit_difference,
)

#: Element classes seeded plans never target: device drivers (their
#: faults come from the device side of the plan) and sinks too trivial
#: to fail interestingly.
_PLAN_SKIP_CLASSES = ("PollDevice", "ToDevice")


def element_candidates(config_text):
    """Element names a seeded plan may inject errors into, from the
    flattened graph (stable across modes; excludes device drivers)."""
    from ..core.toolchain import load_config

    graph = load_config(config_text, "<chaos>")
    if graph.element_classes:
        from ..core.flatten import flatten

        graph = flatten(graph)
    return sorted(
        name
        for name, decl in graph.elements.items()
        if decl.class_name not in _PLAN_SKIP_CLASSES
    )


def seeded_plan(case, seed, sharded=False):
    """The deterministic fault plan for one case: drawn from ``seed``
    and the case's own devices, elements, and trace shape.  With
    ``sharded=True`` the plan is sharded-safe (worker crashes instead
    of count-ordered element errors) and remains valid — the crash is a
    no-op — on plain routers."""
    events = case["events"]
    ticks = sum(1 for event in events if event[0] == "run")
    frames = sum(1 for event in events if event[0] == "frame")
    return FaultPlan.seeded(
        seed,
        devices=device_names(case["config"]),
        elements=element_candidates(case["config"]),
        ticks=max(1, ticks),
        events=max(1, frames),
        sharded=sharded,
    )


def compare_chaos(case, plan, modes=None):
    """Run one case under ``plan`` in every mode, supervised, and check
    the resilience contract.

    Returns a JSON-safe dict: ``status`` is ``"ok"``, ``"divergence"``
    (transmitted bytes differ), or ``"crash"`` (an exception escaped the
    supervisor in some mode); ``failures`` lists each violation;
    ``reports`` carries every mode's resilience report."""
    modes = [m for m in (modes or list(MODES)) if m in MODES or m in SHARD_MODES]
    if "reference" not in modes:
        modes = ["reference"] + modes
    failures = []
    skips = []
    reports = {}
    reference = None
    for mode in modes:
        routers = []
        status, payload = run_case(
            case, mode, plan=plan, supervised=True, collect=routers.append
        )
        if routers and getattr(routers[-1], "is_sharded", False):
            # The sharded plane's report aggregates its shards'
            # supervisors (plus crash/replay counts).
            reports[mode] = routers[-1].report().as_dict()
        elif routers and getattr(routers[-1], "supervisor", None) is not None:
            reports[mode] = routers[-1].supervisor.report().as_dict()
        if status == "error":
            failures.append(
                {
                    "mode": mode,
                    "kind": "crash",
                    "detail": "%s: %s" % (payload[0], payload[1]),
                }
            )
            continue
        if mode == "reference":
            reference = payload
            continue
        if reference is None:
            continue  # reference crashed; already recorded
        transmit_diff = (
            sharded_transmit_difference
            if mode in SHARD_MODES
            else first_transmit_difference
        )
        diff = transmit_diff(reference["transmitted"], payload["transmitted"])
        if diff is not None:
            drops = max(
                overflow_drops(reference["counters"]),
                overflow_drops(payload["counters"]),
            )
            if mode in SHARD_MODES and drops:
                # Out of the shard contract (see compare_case): per-shard
                # queue copies scale aggregate capacity, so which packets
                # overflow under fault pressure is load-dependent.
                skips.append(
                    {
                        "mode": mode,
                        "reason": "lossy-overflow: %d queue drop(s) (%s)"
                        % (drops, diff),
                    }
                )
                continue
            failures.append({"mode": mode, "kind": "transmitted", "detail": diff})
    if any(f["kind"] == "crash" for f in failures):
        status = "crash"
    elif failures:
        status = "divergence"
    else:
        status = "ok"
    return {
        "status": status,
        "failures": failures,
        "skips": skips,
        "reports": reports,
        "plan": plan.to_dict(),
    }


# -- CLI -----------------------------------------------------------------------

_CONFIG_CHOICES = ("iprouter", "firewall", "both")


def _parser():
    parser = argparse.ArgumentParser(
        description="Chaos harness: replay seeded fault plans (device "
        "flaps, frame corruption, injected element errors, cache "
        "attacks) against the supervised router under every execution "
        "mode and verify it neither crashes nor diverges on the wire."
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="seed for fault-plan generation"
    )
    parser.add_argument(
        "--config",
        default="both",
        choices=_CONFIG_CHOICES,
        help="which stock configuration(s) to torture (default: %(default)s)",
    )
    parser.add_argument(
        "--modes",
        default=",".join(MODES),
        metavar="LIST",
        help="comma-separated mode matrix (default: %(default)s)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=96,
        metavar="N",
        help="traffic events per case trace",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="replay this fault-plan JSON instead of seeding one "
        "(a single plan, or a click-chaos --plan-out mapping)",
    )
    parser.add_argument(
        "--plan-out",
        default=None,
        metavar="FILE",
        help="write the per-case fault plans here (replayable via --plan)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON run report here (- for stderr)",
    )
    return parser


def _parse_modes(spec):
    modes = [m.strip() for m in spec.split(",") if m.strip()]
    unknown = [m for m in modes if m not in MODES and m not in SHARD_MODES]
    if unknown:
        raise SystemExit(
            "click-chaos: unknown mode(s) %s (choose from %s)"
            % (", ".join(unknown), ", ".join(list(MODES) + list(SHARD_MODES)))
        )
    return modes


def _cases(args):
    wanted = {
        "iprouter": ("iprouter-mtu1500",),
        "firewall": ("firewall",),
        "both": ("iprouter-mtu1500", "firewall"),
    }[args.config]
    stock = {case["name"]: case for case in stock_cases(events_count=args.events)}
    return [stock[name] for name in wanted]


def _load_plans(path, cases):
    """A --plan file is either one FaultPlan (applied to every case) or
    a --plan-out mapping ``{"plans": {case name: plan}}``."""
    with open(path) as handle:
        data = json.load(handle)
    if "plans" in data:
        by_name = data["plans"]
        return {
            case["name"]: FaultPlan.from_dict(by_name[case["name"]])
            for case in cases
            if case["name"] in by_name
        }
    plan = FaultPlan.from_dict(data)
    return {case["name"]: plan for case in cases}


def _write_json(dest, payload):
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if dest == "-":
        sys.stderr.write(text)
    else:
        with open(dest, "w") as handle:
            handle.write(text)


def main(argv=None):
    """The ``click-chaos`` entry point; returns the process exit status
    (0 resilient, 1 crash or divergence, 2 usage error via argparse)."""
    args = _parser().parse_args(argv)
    modes = _parse_modes(args.modes)
    cases = _cases(args)
    sharded = any(mode in SHARD_MODES for mode in modes)
    if args.plan:
        plans = _load_plans(args.plan, cases)
    else:
        plans = {
            case["name"]: seeded_plan(case, args.seed, sharded=sharded)
            for case in cases
        }

    started = time.time()
    records = []
    counts = {"ok": 0, "divergence": 0, "crash": 0}
    for case in cases:
        plan = plans.get(case["name"])
        if plan is None:
            continue
        result = compare_chaos(case, plan, modes=modes)
        counts[result["status"]] += 1
        records.append({"name": case["name"], **result})
        if result["status"] == "ok":
            print(
                "click-chaos: %s survived %d fault(s) across %d mode(s)"
                % (case["name"], len(plan), len(modes))
            )
        else:
            print(
                "click-chaos: %s %s: %s"
                % (
                    case["name"],
                    result["status"].upper(),
                    result["failures"][0]["detail"],
                )
            )

    summary = dict(counts)
    summary["cases"] = len(records)
    summary["seconds"] = round(time.time() - started, 3)
    print(
        "click-chaos: %(cases)d case(s): %(ok)d resilient, "
        "%(divergence)d divergent, %(crash)d crashed in %(seconds).1fs" % summary
    )
    if args.plan_out:
        _write_json(
            args.plan_out,
            {"seed": args.seed, "plans": {name: plan.to_dict() for name, plan in plans.items()}},
        )
    if args.report:
        _write_json(
            args.report,
            {
                "seed": args.seed,
                "config": args.config,
                "mode_matrix": modes,
                "summary": summary,
                "cases": records,
            },
        )
    return 0 if not (counts["divergence"] or counts["crash"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
