"""``click-fuzz``: the differential fuzzing driver.

Follows the tool-chain CLI conventions (:mod:`repro.core.cli`): a JSON
``--report`` destination where ``-`` means stderr, deterministic output
for fixed inputs, and exit status carrying the verdict — 0 when every
case agrees across the whole mode matrix, 1 when any divergence
survives, 2 when the run itself could not proceed.

Two ways to run:

- ``click-fuzz --seed 7 --budget 200`` fuzzes: the deterministic stock
  cases first (IP router at two MTUs, the firewall), then seeded random
  cases — mutated routers and registry-composed pipelines — until the
  budget is spent.  Every divergence is delta-debugged down to a minimal
  case and written as a self-contained repro file under ``--repro-dir``.
- ``click-fuzz --repro FILE`` replays one repro file through the full
  matrix and reports whether the divergence is still present (exit 1) or
  fixed (exit 0).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .genconfig import generate_case, stock_cases
from .oracle import MODES, SHARD_MODES, compare_case
from .shrink import element_count, load_repro, shrink_case, write_repro


def _parser():
    parser = argparse.ArgumentParser(
        description="Differential fuzzer: hunt mode-divergence bugs by "
        "running generated (config, traffic) cases under every execution "
        "mode and optimization axis and comparing the results."
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="random seed for case generation"
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=50,
        metavar="N",
        help="total number of cases to run (stock cases included)",
    )
    parser.add_argument(
        "--modes",
        default=",".join(MODES),
        metavar="LIST",
        help="comma-separated mode matrix; shard-* labels run the "
        "sharded data plane (default: %(default)s)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=64,
        metavar="N",
        help="traffic events per generated case",
    )
    parser.add_argument(
        "--repro",
        default=None,
        metavar="FILE",
        help="replay one repro file instead of fuzzing",
    )
    parser.add_argument(
        "--repro-dir",
        default="fuzz-repros",
        metavar="DIR",
        help="where shrunken repro files for divergences land",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report divergences without delta-debugging them",
    )
    parser.add_argument(
        "--no-stock",
        action="store_true",
        help="skip the deterministic stock cases",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON run report here (- for stderr)",
    )
    return parser


def _write_report(dest, payload):
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if dest == "-":
        sys.stderr.write(text)
    else:
        with open(dest, "w") as handle:
            handle.write(text)


def _parse_modes(spec):
    modes = [m.strip() for m in spec.split(",") if m.strip()]
    unknown = [m for m in modes if m not in MODES and m not in SHARD_MODES]
    if unknown:
        raise SystemExit(
            "click-fuzz: unknown mode(s) %s (choose from %s)"
            % (", ".join(unknown), ", ".join(list(MODES) + list(SHARD_MODES)))
        )
    return modes


def _replay(args, modes):
    case = load_repro(args.repro)
    result = compare_case(case, modes=modes)
    record = {
        "name": case["name"],
        "file": args.repro,
        "status": result["status"],
        "divergences": result["divergences"],
        "elements": element_count(case),
        "events": len(case["events"]),
    }
    if result.get("skips"):
        record["skips"] = result["skips"]
        print(
            "click-fuzz: %s out of shard contract (%s)"
            % (case["name"], result["skips"][0]["reason"])
        )
    if result["status"] == "divergence":
        print(
            "click-fuzz: %s still diverges (%d way(s)); first: %s"
            % (
                case["name"],
                len(result["divergences"]),
                result["divergences"][0]["detail"],
            )
        )
    elif result["status"] == "error":
        print("click-fuzz: %s errored: %s" % (case["name"], result.get("detail")))
    elif result.get("skips"):
        print("click-fuzz: %s agrees within the shard contract" % case["name"])
    else:
        print("click-fuzz: %s agrees across the matrix" % case["name"])
    if args.report:
        _write_report(args.report, {"mode_matrix": modes, "replay": record})
    return 1 if result["status"] == "divergence" else 0


def _fuzz_cases(args):
    cases = []
    if not args.no_stock:
        cases.extend(stock_cases(events_count=max(args.events, 96)))
    index = 0
    while len(cases) < args.budget:
        cases.append(generate_case(args.seed, index, events_count=args.events))
        index += 1
    return cases[: args.budget]


def main(argv=None):
    """The ``click-fuzz`` entry point; returns the process exit status
    (0 clean, 1 divergence, 2 usage error via argparse)."""
    args = _parser().parse_args(argv)
    modes = _parse_modes(args.modes)
    if args.repro:
        return _replay(args, modes)

    started = time.time()
    records = []
    repro_files = []
    counts = {"ok": 0, "divergence": 0, "error": 0}
    skipped = 0
    for case in _fuzz_cases(args):
        result = compare_case(case, modes=modes)
        counts[result["status"]] += 1
        record = {"name": case["name"], "status": result["status"]}
        if result.get("skips"):
            # Out-of-contract shard comparisons (lossy overflow): not
            # divergences, but never silent either.
            record["skips"] = result["skips"]
            skipped += 1
            print(
                "click-fuzz: %s out of shard contract (%s)"
                % (case["name"], result["skips"][0]["reason"])
            )
        if result["status"] == "error":
            record["detail"] = result.get("detail")
        if result["status"] == "divergence":
            record["divergences"] = result["divergences"]
            shrunk = case
            if not args.no_shrink:
                shrunk = shrink_case(case, modes=modes)
                record["shrunk_elements"] = element_count(shrunk)
                record["shrunk_events"] = len(shrunk["events"])
            os.makedirs(args.repro_dir, exist_ok=True)
            path = os.path.join(args.repro_dir, "%s.repro.json" % case["name"])
            write_repro(path, shrunk, result=result, seed=args.seed)
            repro_files.append(path)
            record["repro"] = path
            print(
                "click-fuzz: DIVERGENCE %s (%s) -> %s"
                % (case["name"], result["divergences"][0]["detail"], path)
            )
        records.append(record)

    summary = dict(counts)
    summary["cases"] = len(records)
    summary["shard_contract_skips"] = skipped
    summary["seconds"] = round(time.time() - started, 3)
    line = (
        "click-fuzz: %(cases)d case(s): %(ok)d ok, %(divergence)d divergent, "
        "%(error)d errored in %(seconds).1fs" % summary
    )
    if skipped:
        line += " (%d outside the shard contract)" % skipped
    print(line)
    if args.report:
        _write_report(
            args.report,
            {
                "seed": args.seed,
                "budget": args.budget,
                "mode_matrix": modes,
                "summary": summary,
                "cases": records,
                "repro_files": repro_files,
            },
        )
    return 1 if counts["divergence"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
