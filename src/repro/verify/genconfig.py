"""Seeded configuration generation: stock configs, graph mutators, and
a random composer of legal pipelines.

The composer consults the element registry's legal-composition metadata
(:func:`repro.elements.registry.composition_table`) rather than
hard-coded knowledge: an element joins the middle of a push chain only
if the registry says it is one-in/one-out and agnostic, branch counts
are drawn from the spec's legal output counts, and every generated graph
is validated with ``click-check`` before it becomes a case.  Mutators
perturb the stock IP router the same way (insert a transparent element
on an edge, resize a queue, wrap an edge in Strip/Unstrip) and fall back
to the unmutated graph whenever a perturbation fails validation.
"""

from __future__ import annotations

from ..configs.firewall import firewall_config
from ..configs.iprouter import default_interfaces, ip_router_config
from ..core.check import check
from ..core.toolchain import load_config, save_config
from ..elements.registry import composition_table
from ..graph.router import RouterGraph
from . import gentraffic

# Transparent one-in/one-out elements a mutator may drop onto any edge,
# with a config generator for each.  Each candidate is validated against
# the registry metadata at use time (agnostic, 1/1) — if an element ever
# changes shape, the generator silently stops using it instead of
# emitting illegal graphs.
_TRANSPARENT = [
    ("Null", lambda rng: None),
    ("Counter", lambda rng: None),
    ("Paint", lambda rng: str(rng.randrange(0, 8))),
    ("Counter", lambda rng: None),
]

_MIDDLE = _TRANSPARENT + [
    ("Strip", lambda rng: str(rng.choice([2, 4, 14]))),
    ("CheckLength", lambda rng: str(rng.choice([46, 64, 120, 1500]))),
]


def _is_transparent_unary(table, class_name):
    """Registry metadata says this element may sit on any edge: one
    input, one output (legal), both agnostic."""
    info = table.get(class_name)
    return (
        info is not None
        and 1 in info["input_counts"]
        and 1 in info["output_counts"]
        and info["input_codes"][0] == "a"
        and info["output_codes"][0] == "a"
    )


def _validated(graph):
    collector = check(graph)
    return not collector.errors


def random_pipeline(rng, table=None):
    """A random legal push pipeline: PollDevice -> [middle elements,
    possibly a Classifier or Tee branch] -> Queue -> ToDevice."""
    table = table or composition_table()
    graph = RouterGraph()
    graph.add_element("src", "PollDevice", "eth0")
    previous = "src"

    if rng.random() < 0.5:
        # A classifier near the front exercises the compiled matcher,
        # the jump-table terminal, and click-fastclassifier.
        graph.add_element("cl", "Classifier", "12/0800, -")
        graph.add_connection(previous, 0, "cl", 0)
        graph.add_element("clsink", "Discard", None)
        graph.add_connection("cl", 1, "clsink", 0)
        previous = "cl"

    strip_budget = 0
    for index in range(rng.randrange(1, 5)):
        class_name, make_config = rng.choice(_MIDDLE)
        config = make_config(rng)
        info = table.get(class_name)
        if info is None or 1 not in info["input_counts"] or 1 not in info["output_counts"]:
            continue  # registry says it cannot sit mid-chain
        name = "m%d" % index
        graph.add_element(name, class_name, config)
        graph.add_connection(previous, 0, name, 0)
        previous = name
        if class_name == "Strip":
            # Balance every Strip with an Unstrip so frames leave whole
            # (and the pair stresses the packet data-cache discipline).
            strip_budget = int(config)
        elif strip_budget and rng.random() < 0.7:
            graph.add_element("u%d" % index, "Unstrip", str(strip_budget))
            graph.add_connection(previous, 0, "u%d" % index, 0)
            previous = "u%d" % index
            strip_budget = 0
    if strip_budget:
        graph.add_element("unstrip", "Unstrip", str(strip_budget))
        graph.add_connection(previous, 0, "unstrip", 0)
        previous = "unstrip"

    if rng.random() < 0.3:
        # A Tee branch: legal output counts come from the registry.
        info = table.get("Tee")
        branches = rng.choice([c for c in info["output_counts"] if 2 <= c <= 3] or [2])
        graph.add_element("tee", "Tee", None)
        graph.add_connection(previous, 0, "tee", 0)
        graph.add_element("teecount", "Counter", None)
        graph.add_element("teesink", "Discard", None)
        graph.add_connection("tee", 1, "teecount", 0)
        graph.add_connection("teecount", 0, "teesink", 0)
        for extra in range(2, branches):
            graph.add_element("teesink%d" % extra, "Discard", None)
            graph.add_connection("tee", extra, "teesink%d" % extra, 0)
        previous = "tee"

    queue_class = rng.choice(["Queue", "FrontDropQueue"])
    graph.add_element("q", queue_class, str(rng.choice([4, 16, 64])))
    graph.add_connection(previous, 0, "q", 0)
    graph.add_element("dst", "ToDevice", "eth1")
    graph.add_connection("q", 0, "dst", 0)
    return graph


def mutate_iprouter(rng, graph):
    """Apply 1-3 behaviour-preserving-shaped mutations to a parsed stock
    router; any mutation that fails click-check is rolled back."""
    table = composition_table()
    for _ in range(rng.randrange(1, 4)):
        candidate = graph.copy()
        choice = rng.random()
        try:
            if choice < 0.4 and candidate.connections:
                conn = rng.choice(candidate.connections)
                class_name, make_config = rng.choice(_TRANSPARENT)
                if not _is_transparent_unary(table, class_name):
                    continue
                decl = candidate.add_element(None, class_name, make_config(rng))
                candidate.remove_connection(conn)
                candidate.add_connection(conn.from_element, conn.from_port, decl.name, 0)
                candidate.add_connection(decl.name, 0, conn.to_element, conn.to_port)
            elif choice < 0.7 and candidate.connections:
                # Wrap an edge in a Strip/Unstrip pair.
                conn = rng.choice(candidate.connections)
                nbytes = rng.choice([2, 4, 8])
                strip = candidate.add_element(None, "Strip", str(nbytes))
                unstrip = candidate.add_element(None, "Unstrip", str(nbytes))
                candidate.remove_connection(conn)
                candidate.add_connection(conn.from_element, conn.from_port, strip.name, 0)
                candidate.add_connection(strip.name, 0, unstrip.name, 0)
                candidate.add_connection(unstrip.name, 0, conn.to_element, conn.to_port)
            else:
                queues = [
                    d for d in candidate.elements.values() if d.class_name == "Queue"
                ]
                if not queues:
                    continue
                rng.choice(queues).config = str(rng.choice([4, 16, 256]))
        except Exception:  # noqa: BLE001 - a failed mutation is just skipped
            continue
        if _validated(candidate):
            graph = candidate
    return graph


def stock_cases(events_count=96):
    """The deterministic always-run cases: the stock IP router (both
    MTUs, so fragmentation is exercised) and the stock firewall."""
    import random

    cases = []
    for mtu in (1500, 576):
        interfaces = default_interfaces(2)
        rng = random.Random(0xC11C + mtu)
        cases.append(
            {
                "name": "iprouter-mtu%d" % mtu,
                "config": ip_router_config(interfaces, mtu=mtu),
                "events": gentraffic.iprouter_events(
                    rng, interfaces, count=events_count, mtu=mtu
                ),
                "optimize": True,
            }
        )
    rng = random.Random(0xF12E)
    cases.append(
        {
            "name": "firewall",
            "config": firewall_config(),
            "events": gentraffic.firewall_events(rng, count=min(64, events_count)),
            "optimize": True,
        }
    )
    return cases


def generate_case(seed, index, events_count=64):
    """Case number ``index`` of the stream seeded with ``seed``."""
    import random

    rng = random.Random((seed & 0xFFFFFFFF) * 1000003 + index)
    roll = rng.random()
    if roll < 0.20:
        interfaces = default_interfaces(2)
        mtu = rng.choice([576, 1500])
        return {
            "name": "gen%d-iprouter" % index,
            "config": ip_router_config(
                interfaces, mtu=mtu, queue_capacity=rng.choice([16, 64])
            ),
            "events": gentraffic.iprouter_events(
                rng, interfaces, count=events_count, mtu=mtu
            ),
            "optimize": True,
        }
    if roll < 0.40:
        interfaces = default_interfaces(2)
        mtu = rng.choice([576, 1500])
        graph = load_config(ip_router_config(interfaces, mtu=mtu), "<gen>")
        graph = mutate_iprouter(rng, graph)
        return {
            "name": "gen%d-iprouter-mutant" % index,
            "config": save_config(graph),
            "events": gentraffic.iprouter_events(
                rng, interfaces, count=events_count, mtu=mtu
            ),
            "optimize": True,
        }
    if roll < 0.55:
        return {
            "name": "gen%d-firewall" % index,
            "config": firewall_config(queue_capacity=rng.choice([16, 64])),
            "events": gentraffic.firewall_events(rng, count=events_count),
            "optimize": True,
        }
    for _ in range(5):
        graph = random_pipeline(rng)
        if _validated(graph):
            break
    return {
        "name": "gen%d-pipeline" % index,
        "config": save_config(graph),
        "events": gentraffic.pipeline_events(rng, ["eth0"], count=events_count),
        "optimize": True,
    }
