"""Adversarial traffic generation for the differential oracle.

Extends the equivalence tests' hostile corpus (corrupt checksums, TTL
edges, wrong IP versions, truncations, broadcast sources) with the cases
the fuzzer exists to catch: oversize datagrams with and without DF (the
fragmentation paths), runt frames shorter than an Ethernet header, ARP
requests, traffic addressed to the router itself, and deterministic
mid-run control events — ARP-table churn (epoch bumps), baked-guard
invalidation, and forced adaptive deoptimization.

Everything is driven by a seeded ``random.Random``; the same seed always
produces the same event list, so every case is replayable.
"""

from __future__ import annotations

import struct

from ..net.checksum import internet_checksum
from ..net.headers import build_arp_request, build_ether_udp_packet
from ..sim.testbed import HOST_ETHERS, host_ip

# A deterministic "moved host": re-inserting an ARP entry with this
# address mid-run forces an epoch bump while traffic is in flight.
MOVED_ETHER = "00:20:6F:00:00:77"


def set_dont_fragment(frame):
    """Set DF in the IP header of an Ethernet/IP frame and fix the
    header checksum (full recompute over the patched header)."""
    frame = bytearray(frame)
    header_length = (frame[14] & 0xF) * 4
    flags_field = struct.unpack_from("!H", frame, 14 + 6)[0]
    struct.pack_into("!H", frame, 14 + 6, flags_field | (0x2 << 13))
    frame[14 + 10: 14 + 12] = b"\x00\x00"
    checksum = internet_checksum(frame[14: 14 + header_length])
    struct.pack_into("!H", frame, 14 + 10, checksum)
    return bytes(frame)


def _hostile_frame(rng, frame, kind):
    """One mutation from the equivalence tests' hostile mix."""
    frame = bytearray(frame)
    if kind == 1:  # corrupt IP checksum
        frame[14 + 10] ^= 0xFF
    elif kind == 2:  # wrong IP version
        frame[14] = (6 << 4) | (frame[14] & 0x0F)
    elif kind == 3:  # truncated mid-header
        frame = frame[: 14 + 12]
    elif kind == 4:  # broadcast source address
        frame[14 + 12: 14 + 16] = b"\xff\xff\xff\xff"
    elif kind == 5:  # runt: shorter than an Ethernet header
        frame = frame[: rng.randrange(0, 14)]
    return bytes(frame)


def iprouter_events(rng, interfaces, count=96, mtu=1500):
    """The event trace for an IP-router-shaped configuration: seeded ARP
    tables, good and hostile traffic on every interface, fragmentation
    triggers sized against ``mtu``, and mid-run churn."""
    events = []
    n = len(interfaces)
    for index in range(n):
        events.append(["insert", "arpq%d" % index, host_ip(index), HOST_ETHERS[index]])

    pending = 0
    for sequence in range(count):
        rx = sequence % n
        tx = (rx + 1) % n
        device = interfaces[rx].device
        kind = rng.randrange(12)
        ttl = 1 if kind == 6 else 64
        payload_length = 14
        if kind in (7, 8):  # oversize: forces the fragmentation paths
            payload_length = mtu - 28 + rng.choice([8, 200, 701])
        frame = build_ether_udp_packet(
            HOST_ETHERS[rx],
            interfaces[rx].ether,
            host_ip(rx),
            # kind 9 targets the router itself (the host path).
            interfaces[rx].ip if kind == 9 else host_ip(tx),
            src_port=1000 + sequence % 7,
            dst_port=2000,
            payload=b"\xa5" * payload_length,
            ttl=ttl,
            identification=sequence & 0xFFFF,
        )
        if kind in (1, 2, 3, 4, 5):
            frame = _hostile_frame(rng, frame, kind)
        elif kind == 8:  # oversize with DF: ICMP "fragmentation needed"
            frame = set_dont_fragment(frame)
        elif kind == 10:  # ARP request for the router's address
            frame = build_arp_request(HOST_ETHERS[rx], host_ip(rx), interfaces[rx].ip)
        events.append(["frame", device, bytes(frame).hex()])
        pending += 1
        if pending >= 8:
            events.append(["run", 4])
            pending = 0
        if sequence == count // 3:
            events.append(["deopt"])
        if sequence == count // 2:
            # The host behind interface 0 "moves": same IP, new Ethernet
            # address.  insert() bumps the querier's epoch, so any baked
            # tier-2 header guard must fail safe into the generic probe.
            events.append(["insert", "arpq0", host_ip(0), MOVED_ETHER])
            events.append(["bump_epochs"])
    events.append(["run", 64])
    events.append(["run", 64])
    return events


def firewall_events(rng, count=64):
    """Traffic for the stock firewall: the DNS exemplar plus mutations
    that walk other IPFilter rules and the hostile corpus."""
    from ..configs.firewall import dns5_packet

    base = (
        b"\x00\x50\x56\x00\x00\x01"
        + b"\x00\x50\x56\x00\x00\x02"
        + b"\x08\x00"
        + dns5_packet()
    )
    events = []
    pending = 0
    for sequence in range(count):
        kind = rng.randrange(8)
        frame = bytearray(base)
        if kind in (1, 2, 3, 4, 5):
            frame = bytearray(_hostile_frame(rng, frame, kind))
        elif kind == 6:  # different ports: other filter rules fire
            struct.pack_into("!H", frame, 14 + 20, rng.choice([25, 53, 80, 6000]))
            struct.pack_into("!H", frame, 14 + 22, rng.choice([53, 123, 2049, 8080]))
            # The UDP checksum is not verified by the firewall path, but
            # the IP header is untouched, so no fixup is needed.
        events.append(["frame", "eth0", bytes(frame).hex()])
        pending += 1
        if pending >= 8:
            events.append(["run", 4])
            pending = 0
        if sequence == count // 2:
            events.append(["deopt"])
    events.append(["run", 48])
    return events


def pipeline_events(rng, input_devices, count=64):
    """Traffic for generated pipeline configurations: valid UDP frames
    of varied sizes, foreign ethertypes, broadcasts, and runts."""
    ethers = ["00:20:6F:00:00:%02X" % i for i in range(4)] + ["ff:ff:ff:ff:ff:ff"]
    events = []
    pending = 0
    for sequence in range(count):
        device = input_devices[sequence % len(input_devices)]
        kind = rng.randrange(8)
        frame = build_ether_udp_packet(
            rng.choice(ethers[:-1]),
            rng.choice(ethers),
            "10.0.0.%d" % rng.randrange(1, 255),
            "10.0.1.%d" % rng.randrange(1, 255),
            src_port=rng.randrange(1024, 65535),
            dst_port=rng.choice([53, 80, 2000]),
            payload=bytes(rng.randrange(256) for _ in range(rng.choice([0, 14, 64, 400]))),
            identification=sequence & 0xFFFF,
        )
        if kind == 1:  # foreign ethertype
            frame = bytearray(frame)
            struct.pack_into("!H", frame, 12, rng.choice([0x0806, 0x86DD, 0x9999]))
            frame = bytes(frame)
        elif kind == 2:  # runt
            frame = frame[: rng.randrange(0, 14)]
        elif kind == 3:  # truncated payload
            frame = frame[: 14 + rng.randrange(0, 28)]
        events.append(["frame", device, bytes(frame).hex()])
        pending += 1
        if pending >= 8:
            events.append(["run", 4])
            pending = 0
        if sequence == count // 2:
            events.append(["deopt"])
            events.append(["bump_epochs"])
    events.append(["run", 48])
    return events
