"""The differential oracle: run one case under every execution mode and
optimization axis, and compare everything externally observable.

A *case* is a JSON-serializable dict::

    {"name": str,           # label for reports
     "config": str,         # Click-language configuration text
     "events": [event...],  # the traffic/control trace (below)
     "optimize": bool}      # also run the `paper`-pipeline-optimized graph

Events are small lists so cases round-trip through JSON repro files:

- ``["frame", DEVICE, HEX]``     — frame arrives on DEVICE's receive ring
- ``["run", N]``                 — N scheduler passes (``Router.run_tasks``)
- ``["insert", ELEMENT, IP, ETH]`` — ARP-table insert (epoch bump included,
  exactly as a real ARP reply would); a no-op when ELEMENT is missing, so
  config shrinking never invalidates a trace
- ``["bump_epochs"]``            — invalidate every baked ARP header guard
- ``["deopt"]``                  — force the adaptive engine back to tier 1
  (a no-op in the other modes, which is what makes it a valid
  differential event: it may change *which tier* runs, never behaviour)
- ``["hotswap"]`` / ``["hotswap", CONFIG]`` — transactionally hot-swap the
  live router mid-trace (to the same configuration text, or to CONFIG),
  transferring queue/ARP/counter state and carrying the execution mode;
  a valid differential event because the swap preserves observable state
  in every mode
- ``["update"]`` / ``["update", CONFIG]`` — install the configuration as
  an incremental control-plane update (:mod:`repro.control`): pure data
  deltas patch tables in place, structural deltas run a delta-scoped
  hot-swap; both must match a full rebuild bit for bit in every mode

Cases may also carry a fault plan (see :mod:`repro.sim.faults` and
:mod:`repro.verify.chaos`): ``run_case(..., plan=..., supervised=True)``
wires a :class:`FaultInjector` under the router (ticked once per
``["run"]`` event) and supervises it.

Within one graph the comparison is strict: transmitted bytes per device
plus every element's read handlers (counters, drop reasons).  Across the
optimized/unoptimized axis only transmitted bytes compare — the rewrites
rename and merge elements, so handler sets legitimately differ.
``shard-*`` modes (the same tiers fanned across a
:class:`~repro.runtime.shard.ShardedRouter`) weaken the relation to the
sharding contract: per-flow byte-identical sequences and per-device
multiset equality (:func:`sharded_transmit_difference`), with counters
exempt from the diff.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.pipeline import named_pipeline
from ..core.toolchain import load_config, save_config
from ..elements.devices import LoopbackDevice
from ..elements.runtime import build_router
from ..runtime.adaptive import AdaptiveConfig
from ..runtime.profile import ExecutionProfile

#: Mode label -> (Router mode, batch flavor).  ``batch`` is the batched
#: fast path; a forced mid-run deopt rides in as a ``["deopt"]`` event.
MODES = OrderedDict(
    [
        ("reference", ("reference", False)),
        ("fast", ("fast", False)),
        ("batch", ("fast", True)),
        ("adaptive", ("adaptive", False)),
        ("fdd", ("fdd", False)),
    ]
)

#: Sharded twins of every mode: the same execution tier fanned across
#: worker shards on the deterministic thread backend.  The comparison
#: contract changes with them — per-flow byte-identical, per-device
#: multiset-identical, counters reconciled by summation rather than
#: compared (see :func:`sharded_transmit_difference`).
SHARD_WORKERS = 2
SHARD_MODES = OrderedDict(("shard-%s" % label, label) for label in MODES)

#: Eager promotion thresholds so small fuzz traces still cross the
#: tier-1 -> tier-2 transition (mirrors the equivalence tests).
EAGER = dict(threshold=48, sample=4, min_samples=12)


def mode_profile(mode, supervised=False):
    """The :class:`~repro.runtime.profile.ExecutionProfile` the oracle
    runs a mode label under (eager adaptive thresholds included, so
    short fuzz traces still cross the tier transition).  ``shard-*``
    labels return the base mode's profile sharded across
    :data:`SHARD_WORKERS` thread-backend workers."""
    base = SHARD_MODES.get(mode)
    if base is not None:
        return mode_profile(base, supervised=supervised).with_workers(SHARD_WORKERS)
    router_mode, batch = MODES[mode]
    if router_mode == "adaptive":
        profile = ExecutionProfile.tiered(config=AdaptiveConfig(**EAGER))
    elif router_mode == "fdd":
        profile = ExecutionProfile.fdd(config=AdaptiveConfig(**EAGER))
    else:
        profile = ExecutionProfile(mode=router_mode, batch=batch)
    if supervised:
        profile = profile.with_supervision()
    return profile

_DEVICE_CLASSES = ("PollDevice", "ToDevice")


def device_names(config_text):
    """Every device name the configuration references, scanned from the
    *unoptimized* parse (optimizers may rename element classes, but they
    never change which devices a configuration talks to)."""
    graph = load_config(config_text, "<fuzz>")
    if graph.element_classes:
        from ..core.flatten import flatten

        graph = flatten(graph)
    names = []
    for decl in graph.elements.values():
        if decl.class_name in _DEVICE_CLASSES:
            name = decl.config.split(",")[0].strip()
            if name and name not in names:
                names.append(name)
    return names


def optimize_config(config_text):
    """The case's configuration after the `paper` pipeline, round-tripped
    through text exactly as the tool chain would emit it."""
    result = named_pipeline("paper").run(load_config(config_text, "<fuzz>"))
    return save_config(result.graph)


def _execute(router, devices, events, config_text=None, injector=None):
    """Drive one event trace; returns the live router (which changes
    identity across ``hotswap`` events).  ``injector`` is ticked once
    per ``run`` event so device faults land at the same scheduler pass
    in every mode."""
    for event in events:
        kind = event[0]
        if kind == "frame":
            device = devices.get(event[1])
            if device is not None:
                device.receive_frame(bytes.fromhex(event[2]))
        elif kind == "run":
            if injector is not None:
                injector.tick()
            router.run_tasks(int(event[1]))
        elif kind == "insert":
            element = router.find(event[1])
            if element is not None and hasattr(element, "insert"):
                if injector is None:
                    element.insert(event[2], event[3])
                else:
                    # Chaos runs: an injected fault firing inside the
                    # ARP-reply flush is contained at this control-plane
                    # boundary.  The abort point is count-based, so every
                    # mode flushes the same prefix of held packets.
                    try:
                        element.insert(event[2], event[3])
                    except Exception:  # noqa: BLE001
                        pass
        elif kind == "bump_epochs":
            router.bump_arp_epochs()
        elif kind == "deopt":
            router.force_deopt()
        elif kind == "hotswap":
            text = event[1] if len(event) > 1 else config_text
            if text is not None:
                if getattr(router, "is_sharded", False):
                    # The sharded plane swaps every shard transactionally
                    # and keeps its own identity.
                    router.hotswap_all(text)
                else:
                    from ..elements.hotswap import hotswap

                    router = hotswap(router, load_config(text, "<hotswap>")).router
        elif kind == "update":
            # An incremental control-plane update: routed in place or
            # through a delta-scoped swap by ControlPlane.  A valid
            # differential event because both installation paths must
            # preserve observable state in every mode.
            text = event[1] if len(event) > 1 else config_text
            if text is not None:
                if getattr(router, "is_sharded", False):
                    router.apply_update(text)
                else:
                    from ..control import ControlPlane

                    plane = ControlPlane(router)
                    plane.apply(text)
                    router = plane.router
        else:
            raise ValueError("unknown fuzz event %r" % (kind,))
    return router


def observe(router, devices):
    """The externally visible state, as JSON-safe data: transmitted
    frames (hex) per device and every element read handler (a sharded
    router reports its shards' handlers reconciled by summation)."""
    transmitted = {
        name: [bytes(frame).hex() for frame in device.transmitted]
        for name, device in sorted(devices.items())
    }
    if getattr(router, "is_sharded", False):
        counters = router.merged_counters()
    else:
        counters = {}
        for name, element in sorted(router.elements.items()):
            for handler_name, fn in sorted(element.read_handlers().items()):
                value = fn()
                if not isinstance(value, (int, float, str, bool, type(None))):
                    value = repr(value)
                counters["%s.%s" % (name, handler_name)] = value
    return {"transmitted": transmitted, "counters": counters}


def run_case(
    case,
    mode,
    config_text=None,
    plan=None,
    supervised=False,
    collect=None,
    profile=None,
):
    """Run one case under one mode; returns ``("ok", observation)`` or
    ``("error", [exception type name, message])``.  ``config_text``
    overrides the case's config (the optimized-axis text).  ``plan`` is
    an optional :class:`repro.sim.faults.FaultPlan` injected under the
    router; ``supervised`` attaches the resilient supervisor; ``collect``
    is called with the final router (for resilience reports).
    ``profile`` overrides the mode-derived
    :class:`~repro.runtime.profile.ExecutionProfile` outright."""
    text = case["config"] if config_text is None else config_text
    if profile is None:
        profile = mode_profile(mode, supervised=supervised)
        if case.get("divide_capacity") and profile.workers > 1:
            # Strict shard contract: split every bounded queue's
            # capacity across the shards so aggregate capacity matches
            # the single-plane router (docs/SHARDING.md).
            profile = profile.with_workers(profile.workers, divide_capacity=True)
    elif supervised and not profile.supervised:
        profile = profile.with_supervision()
    router = None
    try:
        devices = {
            name: LoopbackDevice(name, tx_capacity=1 << 30)
            for name in device_names(case["config"])
        }
        injector = None
        if plan is not None:
            from ..sim.faults import FaultInjector

            injector = FaultInjector(plan)
            devices = injector.wrap_devices(devices)
        if profile.workers > 1:
            # The sharded plane starts its workers lazily, so the fault
            # injector attaches (enabling the crash-replay journal)
            # before the first operation.
            router = build_router(load_config(text, "<fuzz>"), devices=devices, profile=profile)
            if injector is not None:
                injector.prepare_router(router)
        else:
            # Build in reference mode, wire faults, then apply the target
            # profile — the compiler must see the fault wrappers.
            router = build_router(load_config(text, "<fuzz>"), devices=devices)
            if injector is not None:
                injector.prepare_router(router)
            router.configure(profile)
        router = _execute(
            router, devices, case["events"], config_text=text, injector=injector
        )
    except Exception as exc:  # noqa: BLE001 - the comparison IS the handling
        if router is not None and getattr(router, "is_sharded", False):
            router.close()
        return ("error", [type(exc).__name__, str(exc)])
    if collect is not None:
        collect(router)
    observation = observe(router, devices)
    if getattr(router, "is_sharded", False):
        # Stop the worker threads; the final ShardReport stays readable
        # through router.report() for collectors that held the router.
        router.close()
    return ("ok", observation)


def first_transmit_difference(a, b):
    """A compact human-readable description of the first difference
    between two transmitted-frames observations."""
    for device in sorted(set(a) | set(b)):
        frames_a, frames_b = a.get(device, []), b.get(device, [])
        if frames_a == frames_b:
            continue
        for index, (x, y) in enumerate(zip(frames_a, frames_b)):
            if x != y:
                return "%s[%d]: %s... != %s..." % (device, index, x[:48], y[:48])
        return "%s: %d vs %d frames" % (device, len(frames_a), len(frames_b))
    return None


def _first_counter_difference(a, b):
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            return "%s: %r != %r" % (key, a.get(key), b.get(key))
    return None


def sharded_transmit_difference(a, b):
    """The sharded comparison contract (a weaker relation than
    byte-for-byte order): per device the transmitted *multiset* must
    match, and per ``(device, flow)`` — keyed by
    :func:`~repro.runtime.flowhash.output_flow_key` on the emitted
    frame — the frame *sequence* must be byte-identical.  Cross-flow
    interleaving is the one freedom sharding is allowed."""
    from ..runtime.flowhash import output_flow_key

    for device in sorted(set(a) | set(b)):
        frames_a, frames_b = a.get(device, []), b.get(device, [])
        if frames_a == frames_b:
            continue
        if sorted(frames_a) != sorted(frames_b):
            return "%s: multiset differs (%d vs %d frames)" % (
                device,
                len(frames_a),
                len(frames_b),
            )
        flows_a, flows_b = {}, {}
        for hex_frame in frames_a:
            flows_a.setdefault(output_flow_key(bytes.fromhex(hex_frame)), []).append(hex_frame)
        for hex_frame in frames_b:
            flows_b.setdefault(output_flow_key(bytes.fromhex(hex_frame)), []).append(hex_frame)
        for flow in flows_a:
            if flows_a[flow] != flows_b.get(flow):
                return "%s: per-flow order differs for flow %r" % (device, flow)
    return None


def degraded_transmit_difference(a, b, affected=None):
    """The degraded-mode wire contract
    (:mod:`repro.runtime.recovery`): ``a`` is the healthy reference
    observation, ``b`` the observation of a plane that lost (and
    possibly recovered) shards under a non-fatal recovery policy.

    Per device the transmitted *multiset* must still match exactly —
    degraded mode may delay or re-home frames but never lose or
    duplicate them.  Per ``(device, flow)`` the sequence must be
    byte-identical for every flow that was *not* affected by the
    outage; an affected flow (one that was re-steered, or buffered and
    redelivered) is only held to the multiset guarantee, because its
    order is preserved *from the re-home point*, not across it.

    ``affected`` is a predicate over the emitted frame's
    :func:`~repro.runtime.flowhash.output_flow_key` (or a set of such
    keys); ``None`` means no flow may reorder — the ``buffer`` policy's
    strict contract.
    """
    from ..runtime.flowhash import output_flow_key

    if affected is None:
        predicate = lambda flow: False  # noqa: E731 - strict contract
    elif callable(affected):
        predicate = affected
    else:
        keys = set(affected)
        predicate = keys.__contains__
    for device in sorted(set(a) | set(b)):
        frames_a, frames_b = a.get(device, []), b.get(device, [])
        if frames_a == frames_b:
            continue
        if sorted(frames_a) != sorted(frames_b):
            return "%s: multiset differs (%d vs %d frames) - degraded mode lost or duplicated frames" % (
                device,
                len(frames_a),
                len(frames_b),
            )
        flows_a, flows_b = {}, {}
        for hex_frame in frames_a:
            flows_a.setdefault(output_flow_key(bytes.fromhex(hex_frame)), []).append(hex_frame)
        for hex_frame in frames_b:
            flows_b.setdefault(output_flow_key(bytes.fromhex(hex_frame)), []).append(hex_frame)
        for flow in flows_a:
            if flows_a[flow] == flows_b.get(flow):
                continue
            if predicate(flow):
                # Affected flow: order may break at the re-home point,
                # but its per-device multiset must survive.
                if sorted(flows_a[flow]) != sorted(flows_b.get(flow, [])):
                    return "%s: affected flow %r lost frames" % (device, flow)
                continue
            return "%s: per-flow order differs for unaffected flow %r" % (
                device,
                flow,
            )
    return None


def overflow_drops(counters):
    """Total packets lost to queue overflow across the observation —
    the sum of every ``*.drops`` read handler (Queue admission drops and
    FrontDropQueue front drops)."""
    return sum(
        value
        for key, value in counters.items()
        if key.endswith(".drops") and isinstance(value, int)
    )


def compare_case(case, modes=None):
    """Run the full matrix for one case and diff it.

    Returns a JSON-safe dict: ``status`` is ``"ok"`` (matrix agrees),
    ``"divergence"`` (with a ``divergences`` list), or ``"error"``
    (every run failed identically — the case itself is bad).

    ``shard-*`` modes are compared under the flow-aware relation
    (:func:`sharded_transmit_difference`) and their counters are not
    diffed against the reference: shard reconciliation sums numeric
    handlers, but order-dependent observables (BTB hit rates, adaptive
    promotion sample counts) legitimately differ across a partition.

    Traces that overflow a bounded queue are *out of contract* for the
    shard modes: every shard owns a private copy of each queue, so
    aggregate capacity — and therefore which packets drop under
    pressure — scales with the worker count.  Like count-ordered
    element faults, load-dependent loss is exactly what partitioning
    does not preserve.  Such cases are reported under ``skips`` (axis,
    mode, reason), never silently passed and never miscounted as
    divergences; when no queue overflowed, a multiset mismatch is still
    a real divergence.  A case carrying ``"divide_capacity": True``
    opts the shard modes into divide-capacity mode (every bounded
    queue's capacity split across the shards, so aggregate capacity
    matches the single plane) — under that mode lossy traces are back
    in contract and are compared, not skipped."""
    modes = [m for m in (modes or list(MODES)) if m in MODES or m in SHARD_MODES]
    if "reference" not in modes:
        modes = ["reference"] + modes
    axes = [("plain", None)]
    if case.get("optimize", True):
        try:
            axes.append(("optimized", optimize_config(case["config"])))
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            return {
                "status": "error",
                "detail": "optimizer failed: %s: %s" % (type(exc).__name__, exc),
                "divergences": [],
            }

    divergences = []
    skips = []
    references = {}
    for axis, text in axes:
        reference = run_case(case, "reference", config_text=text)
        references[axis] = reference
        for mode in modes:
            if mode == "reference":
                continue
            result = run_case(case, mode, config_text=text)
            if result[0] != reference[0]:
                divergences.append(
                    {
                        "axis": axis,
                        "mode": mode,
                        "kind": "exception",
                        "detail": "reference=%r %s=%r" % (reference, mode, result),
                    }
                )
                continue
            if result[0] == "error":
                if result[1][0] != reference[1][0]:
                    divergences.append(
                        {
                            "axis": axis,
                            "mode": mode,
                            "kind": "exception",
                            "detail": "%s vs %s" % (reference[1][0], result[1][0]),
                        }
                    )
                continue
            sharded = mode in SHARD_MODES
            transmit_diff = (
                sharded_transmit_difference if sharded else first_transmit_difference
            )
            diff = transmit_diff(
                reference[1]["transmitted"], result[1]["transmitted"]
            )
            if diff is not None:
                drops = max(
                    overflow_drops(reference[1]["counters"]),
                    overflow_drops(result[1]["counters"]),
                )
                if sharded and drops and not case.get("divide_capacity"):
                    skips.append(
                        {
                            "axis": axis,
                            "mode": mode,
                            "reason": "lossy-overflow: %d queue drop(s); "
                            "aggregate capacity scales with shards (%s)"
                            % (drops, diff),
                        }
                    )
                    continue
                divergences.append(
                    {"axis": axis, "mode": mode, "kind": "transmitted", "detail": diff}
                )
                continue
            if sharded:
                continue
            diff = _first_counter_difference(
                reference[1]["counters"], result[1]["counters"]
            )
            if diff is not None:
                divergences.append(
                    {"axis": axis, "mode": mode, "kind": "counters", "detail": diff}
                )

    # Across the optimization axis: transmitted bytes only.
    if len(axes) == 2:
        plain, optimized = references["plain"], references["optimized"]
        if plain[0] != optimized[0] or (
            plain[0] == "error" and plain[1][0] != optimized[1][0]
        ):
            divergences.append(
                {
                    "axis": "optimized-vs-plain",
                    "mode": "reference",
                    "kind": "exception",
                    "detail": "plain=%r optimized=%r" % (plain, optimized),
                }
            )
        elif plain[0] == "ok":
            diff = first_transmit_difference(
                plain[1]["transmitted"], optimized[1]["transmitted"]
            )
            if diff is not None:
                divergences.append(
                    {
                        "axis": "optimized-vs-plain",
                        "mode": "reference",
                        "kind": "transmitted",
                        "detail": diff,
                    }
                )

    if divergences:
        return {"status": "divergence", "divergences": divergences, "skips": skips}
    if all(reference[0] == "error" for reference in references.values()):
        detail = references["plain"][1]
        return {
            "status": "error",
            "detail": "%s: %s" % (detail[0], detail[1]),
            "divergences": [],
            "skips": skips,
        }
    return {"status": "ok", "divergences": [], "skips": skips}


def case_fails(case, modes=None):
    """True when the matrix disagrees — the shrinker's predicate."""
    return compare_case(case, modes=modes)["status"] == "divergence"
