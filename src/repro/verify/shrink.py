"""Delta-debugging shrinker: minimize a failing case's event trace and
configuration, and write a self-contained repro file.

Trace minimization is classic ddmin over the event list (a case with
fewer events that still diverges is strictly better).  Config
minimization walks the graph splicing out every one-in/one-out element
whose removal keeps ``click-check`` happy and the divergence alive, to a
fixpoint.  The result round-trips through a JSON repro file that
``click-fuzz --repro FILE`` replays.
"""

from __future__ import annotations

import json

from ..core.check import check
from ..core.toolchain import load_config, save_config
from .oracle import case_fails, compare_case

REPRO_VERSION = 1


def _with_events(case, events):
    shrunk = dict(case)
    shrunk["events"] = list(events)
    return shrunk


def ddmin_events(case, fails, max_rounds=12):
    """Minimize ``case['events']`` with ddmin: returns the smallest
    event list found that still satisfies ``fails``."""
    events = list(case["events"])
    granularity = 2
    rounds = 0
    while len(events) >= 2 and rounds < max_rounds:
        rounds += 1
        chunk = max(1, len(events) // granularity)
        reduced = False
        start = 0
        while start < len(events):
            candidate = events[:start] + events[start + chunk:]
            if candidate and fails(_with_events(case, candidate)):
                events = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return events


def _splice_candidates(graph):
    """Elements that are structurally removable: exactly one incoming
    and one outgoing connection, single ports on both sides."""
    names = []
    for name in graph.elements:
        incoming = graph.connections_to(name)
        outgoing = graph.connections_from(name)
        if len(incoming) == 1 and len(outgoing) == 1:
            names.append(name)
    return names


def _prune_disconnected(graph):
    """Drop elements no connection touches (branch removal strands its
    sinks; click-check would reject their dangling ports anyway)."""
    changed = True
    while changed:
        changed = False
        for name in list(graph.elements):
            if not graph.connections_to(name) and not graph.connections_from(name):
                graph.remove_element(name)
                changed = True


def _bypass_attempts(graph):
    """Candidate (element, incoming, outgoing) bypasses for elements the
    splice pass cannot touch — branch points like Tee or Classifier get
    routed around one output at a time, abandoning the other branches."""
    for name in graph.elements:
        incoming = graph.connections_to(name)
        outgoing = graph.connections_from(name)
        if len(incoming) == 1 and len(outgoing) >= 2:
            for out in outgoing:
                yield name, incoming[0], out


def _reductions(graph):
    """Every one-step smaller graph worth trying, best candidates first."""
    for name in _splice_candidates(graph):
        candidate = graph.copy()
        try:
            candidate.splice_out(name)
        except Exception:  # noqa: BLE001 - not removable, move on
            continue
        yield candidate
    for name, before, after in _bypass_attempts(graph):
        candidate = graph.copy()
        candidate.remove_element(name)
        candidate.add_connection(
            before.from_element, before.from_port, after.to_element, after.to_port
        )
        _prune_disconnected(candidate)
        yield candidate


def shrink_config(case, fails):
    """Remove every element the divergence does not need — splicing out
    pass-throughs and routing around branch points — to a fixpoint;
    returns the minimized config text."""
    text = case["config"]
    changed = True
    while changed:
        changed = False
        graph = load_config(text, "<shrink>")
        for candidate in _reductions(graph):
            if check(candidate).errors:
                continue
            candidate_text = save_config(candidate)
            shrunk = dict(case)
            shrunk["config"] = candidate_text
            try:
                still_fails = fails(shrunk)
            except Exception:  # noqa: BLE001 - invalid shrink, move on
                continue
            if still_fails:
                text = candidate_text
                changed = True
                break
    return text


def shrink_case(case, modes=None, fails=None):
    """Minimize events then config (then events once more, since a
    smaller config often needs even fewer events).  Returns the
    minimized case; the original is untouched."""
    fails = fails or (lambda c: case_fails(c, modes=modes))
    if not fails(case):
        return case
    shrunk = _with_events(case, ddmin_events(case, fails))
    shrunk["config"] = shrink_config(shrunk, fails)
    shrunk = _with_events(shrunk, ddmin_events(shrunk, fails))
    return shrunk


def element_count(case):
    """How many elements the case's configuration declares (the size the
    acceptance bar for shrunken repros is measured in)."""
    return len(load_config(case["config"], "<count>").elements)


def write_repro(path, case, result=None, seed=None):
    """Write a self-contained JSON repro file for ``click-fuzz --repro``."""
    payload = {
        "version": REPRO_VERSION,
        "name": case.get("name", "repro"),
        "seed": seed,
        "config": case["config"],
        "events": case["events"],
        "optimize": case.get("optimize", True),
        "result": result if result is not None else compare_case(case),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_repro(path):
    """Load a repro file back into a runnable case."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != REPRO_VERSION:
        raise ValueError("unsupported repro version %r" % payload.get("version"))
    return {
        "name": payload.get("name", "repro"),
        "config": payload["config"],
        "events": [list(event) for event in payload["events"]],
        "optimize": payload.get("optimize", True),
    }
