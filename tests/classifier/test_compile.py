"""Unit tests for decision-tree → Python code generation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifier.compile import CompiledClassifier, compile_tree, generate_source
from repro.classifier.ipfilter import compile_expressions
from repro.classifier.language import compile_patterns
from repro.classifier.tree import DecisionTree


class TestGeneratedSource:
    def test_figure3_shape(self):
        """The generated code for Classifier(12/0800, -) has the same
        shape as Figure 3b: one masked comparison with inlined constants,
        two returns."""
        tree = compile_patterns(["12/0800", "-"])
        source = generate_source(tree)
        assert "0x08000000" in source
        assert "return 0" in source
        assert "return 1" in source
        assert source.count("int.from_bytes") == 1

    def test_full_mask_drops_and_operation(self):
        tree = DecisionTree.from_text("  1  12/08004500%ffffffff  yes->[0]  no->[1]\n")
        source = generate_source(tree)
        assert "&" not in source.split("def classify")[1]

    def test_constant_tree(self):
        tree = DecisionTree([], constant_output=1)
        assert CompiledClassifier(tree)(b"anything") == 1

    def test_drop_tree(self):
        tree = DecisionTree([], constant_output=None)
        assert CompiledClassifier(tree)(b"anything") is None

    def test_shared_nodes_become_helpers(self):
        from repro.classifier.tree import Expr, make_leaf

        shared_tree = DecisionTree(
            [
                Expr(0, 0xFF000000, 0x45000000, 2, 2),
                Expr(8, 0x00FF0000, 0x00060000, make_leaf(0), make_leaf(1)),
            ]
        )
        source = generate_source(shared_tree)
        assert "_step_2" in source


class TestCompiledBehaviour:
    def test_matches_interpreter_on_simple_classifier(self):
        tree = compile_patterns(["12/0806 20/0001", "12/0806 20/0002", "12/0800", "-"])
        compiled = CompiledClassifier(tree)
        frames = [
            bytes(12) + b"\x08\x06" + bytes(6) + b"\x00\x01" + bytes(40),
            bytes(12) + b"\x08\x06" + bytes(6) + b"\x00\x02" + bytes(40),
            bytes(12) + b"\x08\x00" + bytes(46),
            bytes(12) + b"\x86\xdd" + bytes(46),
        ]
        for frame in frames:
            assert compiled(frame) == tree.match(frame)

    def test_short_packets_handled(self):
        tree = compile_patterns(["12/0800", "-"])
        compiled = CompiledClassifier(tree)
        for size in range(0, 20):
            data = bytes(size)
            assert compiled(data) == tree.match(data)

    def test_compile_tree_optimizes_first(self):
        tree = compile_expressions(["tcp dst port 80", "tcp dst port 443", "-"])
        compiled = compile_tree(tree)
        assert len(compiled.tree.exprs) <= len(tree.exprs)

    @settings(max_examples=50)
    @given(st.binary(max_size=80))
    def test_compiled_always_agrees_with_interpreter(self, data):
        """Core fastclassifier invariant: compiled code and interpreted
        tree classify every byte string identically."""
        tree = compile_expressions(
            ["icmp", "tcp dst port 80", "udp src port 53", "src net 18.26.4.0/24", "-"]
        )
        compiled = compile_tree(tree)
        assert compiled(data) == tree.match(data)

    @settings(max_examples=25)
    @given(
        st.lists(
            st.sampled_from(["12/0800", "12/0806", "12/08??", "14/45", "12/0800 14/45", "-"]),
            min_size=1,
            max_size=4,
        ),
        st.binary(max_size=64),
    )
    def test_pattern_language_compiles_faithfully(self, patterns, data):
        tree = compile_patterns(patterns)
        compiled = compile_tree(tree)
        assert compiled(data) == tree.match(data)

    def test_very_deep_trees_compile(self):
        """Large rule sets would exceed Python's indentation limit if the
        generator inlined everything; deep subtrees must spill into
        helper functions and still classify identically."""
        rules = [
            "allow tcp && src host 10.0.%d.%d && dst port %d" % (i // 250, i % 250, 1000 + i)
            for i in range(80)
        ] + ["deny all"]
        from repro.classifier.ipfilter import compile_filter_rules

        tree = compile_filter_rules(rules)
        compiled = compile_tree(tree)
        # No generated line may breach the tokenizer's 100-level limit.
        worst_indent = max(
            (len(line) - len(line.lstrip())) // 4
            for line in compiled.source.splitlines()
            if line.strip()
        )
        assert worst_indent < 60
        from repro.net.headers import IP_PROTO_TCP, IPHeader

        probe = IPHeader(
            src="10.0.0.57", dst="9.9.9.9", protocol=IP_PROTO_TCP, total_length=40
        ).pack() + (1234).to_bytes(2, "big") + (1057).to_bytes(2, "big") + bytes(16)
        assert compiled(probe) == compiled.tree.match(probe) == 0
