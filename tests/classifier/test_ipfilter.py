"""Unit tests for the IPFilter / IPClassifier expression language."""

import pytest

from repro.classifier.ipfilter import (
    FilterError,
    compile_expressions,
    compile_filter_rules,
    parse_expression,
)
from repro.net.headers import IP_PROTO_ICMP, IP_PROTO_TCP, IP_PROTO_UDP, IPHeader, build_udp_packet


def tcp_packet(src="10.0.0.2", dst="18.26.4.9", sport=1234, dport=80, flags=0x02):
    ip = IPHeader(src=src, dst=dst, protocol=IP_PROTO_TCP, total_length=40)
    tcp = (
        sport.to_bytes(2, "big")
        + dport.to_bytes(2, "big")
        + bytes(8)
        + b"\x50"
        + bytes([flags])
        + bytes(6)
    )
    return ip.pack() + tcp


def udp_packet(src="10.0.0.2", dst="18.26.4.9", sport=1234, dport=53):
    return build_udp_packet(src, dst, src_port=sport, dst_port=dport, payload=b"\x00" * 14)


def icmp_packet(icmp_type=8, src="10.0.0.2", dst="18.26.4.9"):
    ip = IPHeader(src=src, dst=dst, protocol=IP_PROTO_ICMP, total_length=28)
    return ip.pack() + bytes([icmp_type, 0]) + bytes(6)


def fragment(src="10.0.0.2", dst="18.26.4.9", offset_units=10):
    ip = IPHeader(
        src=src, dst=dst, protocol=IP_PROTO_UDP, total_length=40, fragment_offset=offset_units
    )
    return ip.pack() + bytes(20)


def matches(expr, packet):
    tree = compile_expressions([expr])
    return tree.match(packet) == 0


class TestPrimaries:
    def test_protocols(self):
        assert matches("tcp", tcp_packet())
        assert not matches("tcp", udp_packet())
        assert matches("udp", udp_packet())
        assert matches("icmp", icmp_packet())

    def test_ip_proto_number(self):
        assert matches("ip proto 6", tcp_packet())
        assert matches("ip proto tcp", tcp_packet())

    def test_src_host(self):
        assert matches("src host 10.0.0.2", tcp_packet(src="10.0.0.2"))
        assert not matches("src host 10.0.0.2", tcp_packet(src="10.0.0.3"))

    def test_bare_address(self):
        assert matches("src 10.0.0.2", tcp_packet(src="10.0.0.2"))

    def test_undirected_host_matches_either_end(self):
        assert matches("host 10.0.0.2", tcp_packet(src="10.0.0.2", dst="1.1.1.1"))
        assert matches("host 10.0.0.2", tcp_packet(src="1.1.1.1", dst="10.0.0.2"))
        assert not matches("host 10.0.0.2", tcp_packet(src="1.1.1.1", dst="2.2.2.2"))

    def test_src_and_dst_host(self):
        assert matches("src and dst host 10.0.0.2", tcp_packet(src="10.0.0.2", dst="10.0.0.2"))
        assert not matches("src and dst host 10.0.0.2", tcp_packet(src="10.0.0.2", dst="1.1.1.1"))

    def test_net(self):
        assert matches("src net 18.26.4.0/24", tcp_packet(src="18.26.4.99"))
        assert not matches("src net 18.26.4.0/24", tcp_packet(src="18.26.5.1"))

    def test_net_with_mask_keyword(self):
        assert matches("src net 18.26.4.0 mask 255.255.255.0", tcp_packet(src="18.26.4.99"))

    def test_dst_port(self):
        assert matches("tcp dst port 80", tcp_packet(dport=80))
        assert not matches("tcp dst port 80", tcp_packet(dport=81))

    def test_port_names(self):
        assert matches("udp dst port dns", udp_packet(dport=53))
        assert matches("tcp dst port smtp", tcp_packet(dport=25))

    def test_undirected_port(self):
        assert matches("tcp port 80", tcp_packet(sport=80, dport=5))
        assert matches("tcp port 80", tcp_packet(sport=5, dport=80))

    def test_port_without_proto_matches_tcp_and_udp(self):
        assert matches("dst port 53", udp_packet(dport=53))
        assert matches("dst port 53", tcp_packet(dport=53))
        assert not matches("dst port 53", icmp_packet())

    def test_port_ignores_fragments(self):
        assert not matches("udp dst port 53", fragment())

    def test_icmp_type(self):
        assert matches("icmp type echo", icmp_packet(icmp_type=8))
        assert matches("icmp type 8", icmp_packet(icmp_type=8))
        assert not matches("icmp type echo", icmp_packet(icmp_type=0))

    def test_tcp_flags(self):
        assert matches("tcp opt syn", tcp_packet(flags=0x02))
        assert matches("tcp opt ack", tcp_packet(flags=0x12))
        assert not matches("tcp opt ack", tcp_packet(flags=0x02))

    def test_ip_frag(self):
        assert matches("ip frag", fragment())
        assert not matches("ip frag", udp_packet())
        assert matches("ip unfrag", udp_packet())

    def test_ip_vers_and_hl(self):
        assert matches("ip vers 4", udp_packet())
        assert matches("ip hl 20", udp_packet())

    def test_constants(self):
        assert matches("any", udp_packet())
        assert not matches("none", udp_packet())

    def test_port_ranges(self):
        expr = "tcp dst port 1024-65535"
        assert matches(expr, tcp_packet(dport=1024))
        assert matches(expr, tcp_packet(dport=40000))
        assert matches(expr, tcp_packet(dport=65535))
        assert not matches(expr, tcp_packet(dport=1023))
        assert not matches(expr, tcp_packet(dport=80))

    def test_odd_port_range_boundaries(self):
        expr = "udp src port 1000-1006"
        for port in (999, 1000, 1003, 1006, 1007):
            assert matches(expr, udp_packet(sport=port)) == (1000 <= port <= 1006)

    def test_ip_tos_and_ttl(self):
        from repro.net.headers import IPHeader, IP_PROTO_UDP

        marked = IPHeader(
            src="1.0.0.2", dst="2.0.0.2", tos=0xB8, ttl=7, protocol=IP_PROTO_UDP,
            total_length=28,
        ).pack() + bytes(8)
        assert matches("ip tos 184", marked)
        assert matches("ip dscp 46", marked)  # 0xB8 >> 2
        assert matches("ip ttl 7", marked)
        assert not matches("ip ttl 8", marked)


class TestBooleanStructure:
    def test_paper_example(self):
        """§3's example specification: src 10.0.0.2 & tcp src port 25."""
        expr = "src 10.0.0.2 && tcp src port 25"
        assert matches(expr, tcp_packet(src="10.0.0.2", sport=25))
        assert not matches(expr, tcp_packet(src="10.0.0.3", sport=25))
        assert not matches(expr, tcp_packet(src="10.0.0.2", sport=26))
        assert not matches(expr, udp_packet(src="10.0.0.2", sport=25))

    def test_or(self):
        expr = "tcp dst port 80 || tcp dst port 443"
        assert matches(expr, tcp_packet(dport=80))
        assert matches(expr, tcp_packet(dport=443))
        assert not matches(expr, tcp_packet(dport=25))

    def test_not(self):
        assert matches("! tcp", udp_packet())
        assert not matches("not tcp", tcp_packet())

    def test_parentheses(self):
        expr = "src 10.0.0.2 && (tcp dst port 80 || udp dst port 53)"
        assert matches(expr, tcp_packet(src="10.0.0.2", dport=80))
        assert matches(expr, udp_packet(src="10.0.0.2", dport=53))
        assert not matches(expr, udp_packet(src="10.0.0.3", dport=53))

    def test_juxtaposition_is_conjunction(self):
        assert matches("src 10.0.0.2 tcp", tcp_packet(src="10.0.0.2"))
        assert not matches("src 10.0.0.2 tcp", udp_packet(src="10.0.0.2"))

    def test_word_operators(self):
        assert matches("tcp and dst port 80", tcp_packet(dport=80))
        assert matches("tcp or udp", udp_packet())

    @pytest.mark.parametrize("bad", ["src", "port", "ip bogus 4", "tcp &&", "(tcp", "@@"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(FilterError):
            parse_expression(bad)


class TestRangeDecomposition:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=80)
    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_blocks_cover_range_exactly(self, a, b):
        """The prefix decomposition matches an integer iff it is in the
        range — for every range."""
        from repro.classifier.ipfilter import _range_blocks

        low, high = min(a, b), max(a, b)
        blocks = _range_blocks(low, high)
        assert len(blocks) <= 30

        def member(value):
            return any((value & mask) == base for base, mask in blocks)

        probes = {low, high, max(0, low - 1), min(0xFFFF, high + 1), (low + high) // 2, 0, 0xFFFF}
        for probe in probes:
            assert member(probe) == (low <= probe <= high), probe


class TestIPClassifier:
    def test_multi_output(self):
        tree = compile_expressions(["icmp", "tcp dst port 80", "-"])
        assert tree.match(icmp_packet()) == 0
        assert tree.match(tcp_packet(dport=80)) == 1
        assert tree.match(udp_packet()) == 2

    def test_drop_without_catch_all(self):
        tree = compile_expressions(["icmp"])
        assert tree.match(udp_packet()) is None


class TestIPFilter:
    def test_allow_deny(self):
        tree = compile_filter_rules(
            ["deny src 10.0.0.9", "allow tcp dst port 80", "deny all"]
        )
        assert tree.match(tcp_packet(src="10.0.0.9", dport=80)) is None
        assert tree.match(tcp_packet(src="10.0.0.2", dport=80)) == 0
        assert tree.match(udp_packet()) is None

    def test_implicit_final_deny(self):
        tree = compile_filter_rules(["allow icmp"])
        assert tree.match(udp_packet()) is None
        assert tree.match(icmp_packet()) == 0

    def test_unknown_action_rejected(self):
        with pytest.raises(FilterError):
            compile_filter_rules(["permit all"])
