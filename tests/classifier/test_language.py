"""Unit tests for the Classifier pattern language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.classifier.language import PatternError, compile_patterns, parse_pattern

IP_FRAME = bytes(12) + b"\x08\x00" + bytes(46)
ARP_FRAME = bytes(12) + b"\x08\x06" + bytes(46)
ARP_REPLY = bytes(12) + b"\x08\x06" + bytes(6) + b"\x00\x02" + bytes(38)
OTHER_FRAME = bytes(12) + b"\x86\xdd" + bytes(46)


class TestParsePattern:
    def test_simple_clause(self):
        words = parse_pattern("12/0800")
        assert words == [(12, 0xFFFF0000, 0x08000000)]

    def test_catch_all(self):
        assert parse_pattern("-") is None

    def test_wildcard_digits(self):
        words = parse_pattern("12/08??")
        assert words == [(12, 0xFF000000, 0x08000000)]

    def test_mask_suffix(self):
        words = parse_pattern("33/02%12")
        # Byte 33 sits in word 32, byte position 1; the mask is 0x12 and
        # the value is restricted to the masked bits.
        assert words == [(32, 0x12 << 16, 0x02 << 16)]

    def test_conjunction_merges_words(self):
        words = parse_pattern("12/0800 14/45")
        assert words == [(12, 0xFFFFFF00, 0x08004500)]

    def test_multi_word_clause(self):
        words = parse_pattern("12/080045000000")
        assert len(words) == 2

    def test_contradiction_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("12/08 12/09")

    @pytest.mark.parametrize("bad", ["12/080", "xx/08", "12/", "12", "", "12/08%1"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(PatternError):
            parse_pattern(bad)

    def test_wildcard_with_mask_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("12/0?%0f")


class TestCompilePatterns:
    def test_figure3_classifier(self):
        tree = compile_patterns(["12/0800", "-"])
        assert tree.match(IP_FRAME) == 0
        assert tree.match(ARP_FRAME) == 1
        assert tree.match(OTHER_FRAME) == 1

    def test_ip_router_input_classifier(self):
        """The Figure 1 classifier: ARP queries, ARP responses, IP, other."""
        tree = compile_patterns(["12/0806 20/0001", "12/0806 20/0002", "12/0800", "-"])
        assert tree.match(bytes(12) + b"\x08\x06" + bytes(6) + b"\x00\x01" + bytes(40)) == 0
        assert tree.match(ARP_REPLY) == 1
        assert tree.match(IP_FRAME) == 2
        assert tree.match(OTHER_FRAME) == 3

    def test_first_match_wins(self):
        tree = compile_patterns(["12/08??", "12/0800"])
        assert tree.match(IP_FRAME) == 0

    def test_no_match_drops(self):
        tree = compile_patterns(["12/0800"])
        assert tree.match(ARP_FRAME) is None

    def test_patterns_after_catch_all_unreachable(self):
        tree = compile_patterns(["-", "12/0800"])
        assert tree.match(IP_FRAME) == 0
        assert tree.match(ARP_FRAME) == 0

    def test_empty_config_rejected(self):
        with pytest.raises(PatternError):
            compile_patterns([])

    def test_noutputs_matches_pattern_count(self):
        tree = compile_patterns(["12/0806 20/0001", "12/0806 20/0002", "12/0800", "-"])
        assert tree.noutputs == 4

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_ethertype_dispatch_property(self, ethertype):
        """For any ethertype, the compiled Figure 3 classifier agrees with
        the obvious predicate."""
        tree = compile_patterns(["12/0800", "-"])
        frame = bytes(12) + ethertype.to_bytes(2, "big") + bytes(46)
        expected = 0 if ethertype == 0x0800 else 1
        assert tree.match(frame) == expected
