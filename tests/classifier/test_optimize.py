"""Unit tests for decision-tree optimization (the BPF+-style passes)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifier.ipfilter import compile_expressions
from repro.classifier.language import compile_patterns
from repro.classifier.optimize import (
    deduplicate_nodes,
    graft,
    optimize,
    prune_redundant_tests,
    remove_unreachable,
)
from repro.classifier.tree import FAILURE, DecisionTree, Expr, make_leaf


def behaviour(tree, packets):
    return [tree.match(p) for p in packets]


def random_packets():
    return [
        bytes(60),
        bytes(12) + b"\x08\x00" + b"\x45" + bytes(45),
        bytes(12) + b"\x08\x06" + bytes(46),
        b"\x45" + bytes(19) + b"\x00\x35\x00\x35" + bytes(36),
        bytes(range(60)),
    ]


class TestRemoveUnreachable:
    def test_drops_orphans(self):
        tree = DecisionTree(
            [
                Expr(12, 0xFFFF, 0x0800, make_leaf(0), make_leaf(1)),
                Expr(16, 0xFF, 0x45, make_leaf(0), make_leaf(1)),  # orphan
            ]
        )
        slim = remove_unreachable(tree)
        assert len(slim.exprs) == 1
        assert behaviour(slim, random_packets()) == behaviour(tree, random_packets())


class TestDeduplicate:
    def test_merges_identical_subtrees(self):
        # Two identical nodes reached from different branches.
        tree = DecisionTree(
            [
                Expr(12, 0xFFFF, 0x0800, 2, 3),
                Expr(16, 0xFF000000, 0x45000000, make_leaf(0), FAILURE),
                Expr(16, 0xFF000000, 0x45000000, make_leaf(0), FAILURE),
            ]
        )
        slim = deduplicate_nodes(tree)
        assert len(slim.exprs) == 2
        assert behaviour(slim, random_packets()) == behaviour(tree, random_packets())


class TestPruneRedundant:
    def test_repeated_test_collapses(self):
        # The same test twice in a row on the yes path.
        tree = DecisionTree(
            [
                Expr(12, 0xFFFF, 0x0800, 2, make_leaf(1)),
                Expr(12, 0xFFFF, 0x0800, make_leaf(0), make_leaf(1)),
            ]
        )
        slim = prune_redundant_tests(tree)
        assert len(slim.exprs) == 1
        assert behaviour(slim, random_packets()) == behaviour(tree, random_packets())

    def test_contradictory_test_resolved(self):
        # After ethertype 0x0800 succeeds, 0x0806 must fail.
        tree = DecisionTree(
            [
                Expr(12, 0xFFFF0000, 0x08000000, 2, make_leaf(2)),
                Expr(12, 0xFFFF0000, 0x08060000, make_leaf(0), make_leaf(1)),
            ]
        )
        slim = prune_redundant_tests(tree)
        assert len(slim.exprs) == 1
        assert slim.match(bytes(12) + b"\x08\x00" + bytes(40)) == 1

    def test_negative_fact_used(self):
        # no-branch of a test implies the identical later test also fails.
        tree = DecisionTree(
            [
                Expr(12, 0xFFFF, 0x0800, make_leaf(0), 2),
                Expr(12, 0xFFFF, 0x0800, make_leaf(1), make_leaf(2)),
            ]
        )
        slim = prune_redundant_tests(tree)
        assert len(slim.exprs) == 1
        assert behaviour(slim, random_packets()) == behaviour(tree, random_packets())


class TestOptimizePipeline:
    def test_preserves_behaviour_on_overlapping_filters(self):
        tree = compile_expressions(
            ["tcp dst port 80", "tcp dst port 443", "tcp", "udp dst port 53", "-"]
        )
        optimized = optimize(tree)
        packets = random_packets() + [
            # Real-ish packets exercising each output.
            _tcp(dport=80), _tcp(dport=443), _tcp(dport=25), _udp(dport=53), _udp(dport=54),
        ]
        assert behaviour(optimized, packets) == behaviour(tree, packets)

    def test_shrinks_redundant_proto_checks(self):
        """Five rules all guard on the same 0x45 byte and proto; the
        optimizer must collapse most of the repeats."""
        tree = compile_expressions(
            ["tcp dst port 80", "tcp dst port 443", "tcp dst port 25", "-"]
        )
        optimized = optimize(tree)
        assert len(optimized.exprs) < len(tree.exprs)

    @settings(max_examples=30)
    @given(st.lists(st.sampled_from(
        ["tcp", "udp", "icmp", "tcp dst port 80", "udp src port 53",
         "src net 18.26.4.0/24", "ip frag", "icmp type echo"]
    ), min_size=1, max_size=5))
    def test_optimize_is_semantics_preserving(self, patterns):
        tree = compile_expressions(patterns + ["-"])
        optimized = optimize(tree)
        packets = random_packets() + [
            _tcp(dport=80), _udp(sport=53), _tcp(src="18.26.4.1"), _icmp(), _frag(),
        ]
        assert behaviour(optimized, packets) == behaviour(tree, packets)


class TestGraft:
    def test_adjacent_classifier_combination(self):
        """Classifier(12/0800, -) feeding Classifier(14/45, -) on port 0
        behaves like the two in sequence."""
        first = compile_patterns(["12/0800", "-"])
        second = compile_patterns(["14/45", "-"])
        # Combined outputs: second's 0 -> 0, second's 1 -> 1; first's
        # old output 1 (non-IP) stays 1... map non-overlapping: second 0->0,
        # second 1->2, first's 1 stays 1.
        combined = graft(first, 0, second, {0: 0, 1: 2})
        ip_45 = bytes(12) + b"\x08\x00\x45" + bytes(45)
        ip_other = bytes(12) + b"\x08\x00\x55" + bytes(45)
        non_ip = bytes(12) + b"\x08\x06" + bytes(46)
        assert combined.match(ip_45) == 0
        assert combined.match(ip_other) == 2
        assert combined.match(non_ip) == 1

    def test_graft_drop_mapping(self):
        first = compile_patterns(["12/0800", "-"])
        second = compile_patterns(["14/45"])  # no catch-all: drops
        combined = graft(first, 0, second, {0: 0})
        assert combined.match(bytes(12) + b"\x08\x00\x55" + bytes(45)) is None


def _tcp(src="10.0.0.2", dst="18.26.4.9", sport=1234, dport=80):
    from repro.net.headers import IP_PROTO_TCP, IPHeader

    ip = IPHeader(src=src, dst=dst, protocol=IP_PROTO_TCP, total_length=40)
    return ip.pack() + sport.to_bytes(2, "big") + dport.to_bytes(2, "big") + bytes(16)


def _udp(src="10.0.0.2", dst="18.26.4.9", sport=1234, dport=53):
    from repro.net.headers import build_udp_packet

    return build_udp_packet(src, dst, src_port=sport, dst_port=dport, payload=bytes(14))


def _icmp(icmp_type=8):
    from repro.net.headers import IP_PROTO_ICMP, IPHeader

    ip = IPHeader(src="10.0.0.2", dst="18.26.4.9", protocol=IP_PROTO_ICMP, total_length=28)
    return ip.pack() + bytes([icmp_type, 0]) + bytes(6)


def _frag():
    from repro.net.headers import IP_PROTO_UDP, IPHeader

    ip = IPHeader(
        src="10.0.0.2", dst="18.26.4.9", protocol=IP_PROTO_UDP,
        total_length=40, fragment_offset=10,
    )
    return ip.pack() + bytes(20)
