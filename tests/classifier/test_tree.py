"""Unit tests for classifier decision trees."""

import pytest

from repro.classifier.tree import (
    FAILURE,
    DecisionTree,
    Expr,
    TreeBuilder,
    TreeError,
    is_leaf,
    leaf_output,
    make_leaf,
)


def ethertype_tree():
    """Figure 3's classifier: Ethernet type 0x0800 -> 0, else 1.
    The ethertype occupies bytes 12-13, the high half of the big-endian
    word at offset 12."""
    return DecisionTree([Expr(12, 0xFFFF0000, 0x08000000, make_leaf(0), make_leaf(1))])


IP_FRAME = bytes(12) + b"\x08\x00" + bytes(20)
ARP_FRAME = bytes(12) + b"\x08\x06" + bytes(20)


class TestLeafEncoding:
    def test_leaves(self):
        assert is_leaf(make_leaf(0))
        assert is_leaf(make_leaf(3))
        assert is_leaf(FAILURE)
        assert not is_leaf(1)

    def test_round_trip(self):
        assert leaf_output(make_leaf(5)) == 5
        assert leaf_output(FAILURE) is None

    def test_negative_output_rejected(self):
        with pytest.raises(TreeError):
            make_leaf(-1)


class TestMatching:
    def test_figure3_classifier(self):
        tree = ethertype_tree()
        assert tree.match(IP_FRAME) == 0
        assert tree.match(ARP_FRAME) == 1

    def test_short_packet_zero_padded(self):
        tree = ethertype_tree()
        assert tree.match(b"\x00" * 13) == 1  # can't match 0x0800

    def test_failure_leaf_drops(self):
        tree = DecisionTree([Expr(12, 0xFFFF0000, 0x08000000, make_leaf(0), FAILURE)])
        assert tree.match(ARP_FRAME) is None

    def test_constant_tree(self):
        tree = DecisionTree([], constant_output=2)
        assert tree.match(b"anything") == 2
        assert DecisionTree([], constant_output=None).match(b"x") is None

    def test_multi_step(self):
        # IP (ethertype 0x0800) then check the IP version/IHL byte (14).
        tree = DecisionTree(
            [
                Expr(12, 0xFFFF0000, 0x08000000, 2, make_leaf(2)),
                Expr(12, 0x0000FF00, 0x00004500, make_leaf(0), make_leaf(1)),
            ]
        )
        ip_45 = bytes(12) + b"\x08\x00\x45" + bytes(19)
        assert tree.match(ip_45) == 0
        assert tree.match(IP_FRAME) == 1  # ethertype IP but byte 14 != 0x45
        assert tree.match(ARP_FRAME) == 2

    def test_steps_counts_traversal(self):
        tree = ethertype_tree()
        assert tree.steps(IP_FRAME) == 1


class TestValidation:
    def test_branch_past_end_rejected(self):
        with pytest.raises(TreeError):
            DecisionTree([Expr(0, 0xFF, 0x45, 5, make_leaf(0))])

    def test_unaligned_offset_rejected(self):
        with pytest.raises(TreeError):
            DecisionTree([Expr(2, 0xFF, 0x45, make_leaf(0), make_leaf(1))])

    def test_value_outside_mask_rejected(self):
        with pytest.raises(TreeError):
            DecisionTree([Expr(0, 0x0F, 0x45, make_leaf(0), make_leaf(1))])


class TestOutputs:
    def test_noutputs_inferred(self):
        assert ethertype_tree().noutputs == 2

    def test_noutputs_explicit(self):
        tree = DecisionTree(
            [Expr(12, 0xFFFF, 0x0800, make_leaf(0), FAILURE)], noutputs=3
        )
        assert tree.noutputs == 3

    def test_outputs_used(self):
        tree = DecisionTree([Expr(12, 0xFFFF, 0x0800, make_leaf(0), FAILURE)])
        assert tree.outputs_used() == {0}


class TestTextFormat:
    def test_round_trip(self):
        tree = DecisionTree(
            [
                Expr(12, 0x0000FFFF, 0x00000800, 2, make_leaf(1)),
                Expr(16, 0xFF000000, 0x45000000, make_leaf(0), FAILURE),
            ]
        )
        text = tree.to_text()
        parsed = DecisionTree.from_text(text)
        assert parsed.signature()[0] == tree.signature()[0]

    def test_constant_round_trip(self):
        tree = DecisionTree([], constant_output=1)
        assert DecisionTree.from_text(tree.to_text()).constant_output == 1

    def test_drop_round_trip(self):
        tree = DecisionTree([], constant_output=None)
        assert DecisionTree.from_text(tree.to_text()).constant_output is None

    def test_bad_dump_rejected(self):
        with pytest.raises(TreeError):
            DecisionTree.from_text("garbage\n")

    def test_dump_mentions_drop(self):
        tree = DecisionTree([Expr(12, 0xFFFF, 0x0800, make_leaf(0), FAILURE)])
        assert "[drop]" in tree.to_text()


class TestSignatures:
    def test_identical_trees_share_signature(self):
        assert ethertype_tree().signature() == ethertype_tree().signature()

    def test_different_trees_differ(self):
        other = DecisionTree([Expr(12, 0xFFFF, 0x0806, make_leaf(0), make_leaf(1))])
        assert other.signature() != ethertype_tree().signature()


class TestTreeBuilder:
    def test_linear_build(self):
        builder = TreeBuilder()
        second = builder.node(16, 0xFF000000, 0x45000000, make_leaf(0), FAILURE)
        root = builder.node(12, 0xFFFF0000, 0x08000000, second, make_leaf(1))
        tree = builder.finish(root)
        frame_with_45_at_16 = bytes(12) + b"\x08\x00" + bytes(2) + b"\x45" + bytes(19)
        assert tree.match(frame_with_45_at_16) == 0
        assert tree.match(IP_FRAME) is None  # byte 16 is zero -> drop
        assert tree.match(ARP_FRAME) == 1

    def test_root_is_index_one(self):
        builder = TreeBuilder()
        second = builder.node(16, 0xFF, 0x45, make_leaf(0), FAILURE)
        root = builder.node(12, 0xFFFF, 0x0800, second, make_leaf(1))
        tree = builder.finish(root)
        assert tree.exprs[0].offset == 12

    def test_unreachable_nodes_dropped(self):
        builder = TreeBuilder()
        builder.node(0, 0xFF, 0x01, make_leaf(0), make_leaf(1))  # orphan
        root = builder.node(12, 0xFFFF, 0x0800, make_leaf(0), make_leaf(1))
        tree = builder.finish(root)
        assert len(tree.exprs) == 1

    def test_leaf_root(self):
        builder = TreeBuilder()
        tree = builder.finish(make_leaf(3))
        assert tree.constant_output == 3

    def test_shared_node(self):
        builder = TreeBuilder()
        shared = builder.node(16, 0xFF, 0x45, make_leaf(0), make_leaf(1))
        root = builder.node(12, 0xFFFF, 0x0800, shared, shared)
        tree = builder.finish(root)
        assert len(tree.exprs) == 2
        assert tree.exprs[0].yes == tree.exprs[0].no == 2
