"""Tests of the reference configurations."""

import pytest

from repro.configs.firewall import FIREWALL_RULES, dns5_packet, firewall_graph
from repro.configs.iprouter import (
    FORWARDING_PATH_CLASSES,
    default_interfaces,
    ip_router_config,
    ip_router_graph,
    two_router_network,
)
from repro.configs.simple import crossed_pairs, simple_graph
from repro.core.check import check


class TestIPRouterConfig:
    def test_parses_and_checks_clean(self):
        collector = check(ip_router_graph())
        assert collector.ok, collector.format()

    def test_sixteen_forwarding_path_classes(self):
        assert len(FORWARDING_PATH_CLASSES) == 16
        graph = ip_router_graph()
        present = {d.class_name for d in graph.elements.values()}
        assert set(FORWARDING_PATH_CLASSES) <= present

    def test_scales_to_more_interfaces(self):
        graph = ip_router_graph(default_interfaces(4))
        assert len(graph.elements_of_class("ARPQuerier")) == 4
        assert check(graph).ok

    def test_route_table_covers_all_interfaces(self):
        graph = ip_router_graph(default_interfaces(3))
        (rt,) = graph.elements_of_class("LookupIPRoute")
        assert rt.config.count(",") >= 5  # 3 host + 3 net routes

    def test_extra_routes_appended(self):
        graph = ip_router_graph(extra_routes=["9.0.0.0/8 2.0.0.2 2"])
        (rt,) = graph.elements_of_class("LookupIPRoute")
        assert "9.0.0.0/8 2.0.0.2 2" in rt.config

    def test_config_text_is_self_describing(self):
        text = ip_router_config()
        assert "Figure 1" in text
        assert "Classifier(12/0806 20/0001" in text

    def test_two_router_network_checks_clean(self):
        routers, _, _ = two_router_network()
        for name, graph in routers.items():
            assert check(graph).ok, name


class TestSimpleConfig:
    def test_crossed_pairs(self):
        assert crossed_pairs(2) == [("eth0", "eth1"), ("eth1", "eth0")]
        assert crossed_pairs(4)[3] == ("eth3", "eth0")

    def test_parses_and_checks_clean(self):
        assert check(simple_graph(crossed_pairs(2))).ok

    def test_minimal_element_count(self):
        graph = simple_graph([("eth0", "eth1")])
        # device, queue, device — nothing else.
        assert len(graph.elements) == 3


class TestFirewallConfig:
    def test_seventeen_rules(self):
        assert len(FIREWALL_RULES) == 17
        names = [name for name, _ in FIREWALL_RULES]
        assert names[-2] == "DNS-5"
        assert names[-1] == "Default"

    def test_parses_and_checks_clean(self):
        assert check(firewall_graph()).ok

    def test_dns5_packet_matches_only_dns5(self):
        """The measurement packet must traverse most of the rule list:
        it must NOT match any earlier allow/deny rule."""
        from repro.classifier.ipfilter import compile_filter_rules, parse_expression
        from repro.classifier.optimize import optimize
        from repro.classifier.tree import TreeBuilder, make_leaf
        from repro.classifier.ipfilter import _compile_node

        packet = dns5_packet()
        for index, (name, rule) in enumerate(FIREWALL_RULES[:-2]):
            action, _, expr_text = rule.partition(" ")
            builder = TreeBuilder()
            node = parse_expression(expr_text)
            entry = _compile_node(builder, node, make_leaf(0), None)
            tree = builder.finish(entry, noutputs=1)
            assert tree.match(packet) is None, "packet matched %s early" % name

    def test_firewall_passes_dns5_and_blocks_default(self):
        from repro.classifier.ipfilter import compile_filter_rules
        from repro.net.headers import build_udp_packet

        tree = compile_filter_rules([rule for _, rule in FIREWALL_RULES])
        assert tree.match(dns5_packet()) == 0
        random_traffic = build_udp_packet("8.8.8.8", "9.9.9.9", dst_port=9999)
        assert tree.match(random_traffic) is None
