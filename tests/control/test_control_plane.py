"""Tests for the control plane (repro.control): update routing by
delta shape, all-or-nothing staging, scoped structural swaps, and the
click-update CLI."""

import json

import pytest

from repro.control import ControlPlane, ControlPlaneError
from repro.elements.hotswap import SwapReport
from repro.lang.lexer import split_config_args
from repro.runtime import ExecutionProfile
from repro.sim.testbed import Testbed


def build_plane(profile=None):
    testbed = Testbed(2)
    router, devices = testbed.build_router(
        testbed.variant_graph("base"), profile=profile or ExecutionProfile.fast()
    )
    return testbed, ControlPlane(router), devices


def drive(testbed, plane, devices, count=64, start=0):
    frames = testbed.evaluation_frames(count + start)[start:]
    for device_name, frame in frames:
        devices[device_name].receive_frame(frame)
    plane.router.run_tasks(count)
    return sum(len(device.transmitted) for device in devices.values())


def routes_of(plane, name="rt"):
    return split_config_args(plane.router.graph.elements[name].config)


class TestInPlace:
    def test_route_patch_kind_and_identity(self):
        testbed, plane, devices = build_plane()
        router = plane.router
        report = plane.update_routes("rt", routes_of(plane))
        assert isinstance(report, SwapReport)
        assert report.kind == "in-place"
        assert report.elements_patched == 1
        assert set(report.phases) == {"diff", "stage", "patch"}
        assert plane.router is router  # no new router generation
        assert drive(testbed, plane, devices) > 0

    def test_route_patch_changes_forwarding(self):
        """Swapping the two network routes re-aims the traffic: packets
        for network 2 now leave via interface 0's queue and vice versa —
        the patched table is really live under the compiled fast path."""
        testbed, plane, devices = build_plane()
        before = drive(testbed, plane, devices, 32)
        assert before > 0
        per_device_before = {
            name: len(device.transmitted) for name, device in devices.items()
        }
        routes = routes_of(plane)
        swapped = []
        for route in routes:
            parts = route.split()
            if parts[-1] == "1":
                parts[-1] = "2"
            elif parts[-1] == "2":
                parts[-1] = "1"
            swapped.append(" ".join(parts))
        report = plane.update_routes("rt", swapped)
        assert report.kind == "in-place"
        drive(testbed, plane, devices, 32, start=32)
        per_device_after = {
            name: len(device.transmitted) for name, device in devices.items()
        }
        deltas = {
            name: per_device_after[name] - per_device_before[name]
            for name in per_device_after
        }
        # Forwarding continued, but the output interfaces flipped: the
        # device that was quiet before the patch now transmits.
        assert sum(deltas.values()) > 0
        assert plane.router.graph.elements["rt"].config == ", ".join(swapped)

    def test_classifier_patch_in_place(self):
        testbed, plane, devices = build_plane()
        rules = split_config_args(plane.router.graph.elements["c0"].config)
        report = plane.update_rules("c0", rules)
        assert report.kind == "in-place"
        assert drive(testbed, plane, devices) > 0

    def test_patch_deopts_adaptive_chains(self):
        from repro.runtime.adaptive import AdaptiveConfig

        config = AdaptiveConfig(threshold=48, sample=4, min_samples=12)
        testbed, plane, devices = build_plane(
            profile=ExecutionProfile.tiered(config=config)
        )
        drive(testbed, plane, devices, 256)  # promote hot chains to tier 2
        report = plane.router.adaptive.profile_report().as_dict()
        assert any(chain["tier"] == 2 for chain in report["chains"].values())
        plane.update_routes("rt", routes_of(plane))
        report = plane.router.adaptive.profile_report().as_dict()
        assert any("control-plane patch of rt" in reason for reason in report["deopts"])

    def test_noop_update(self):
        _, plane, _ = build_plane()
        report = plane.apply(plane.router.graph.copy())
        assert report.kind == "no-op"
        assert report.total_seconds >= 0


class TestRejection:
    def test_bad_route_rejected_nothing_applied(self):
        testbed, plane, devices = build_plane()
        before = plane.router.graph.elements["rt"].config
        with pytest.raises(ControlPlaneError, match="rejected; nothing applied"):
            plane.update_routes("rt", ["999.999.0.0/16 0"])
        assert plane.router.graph.elements["rt"].config == before
        assert drive(testbed, plane, devices) > 0

    def test_out_of_range_port_rejected(self):
        _, plane, _ = build_plane()
        with pytest.raises(ControlPlaneError, match="hot-swap"):
            plane.update_routes("rt", routes_of(plane)[:-1] + ["9.0.0.0/8 7"])

    def test_batch_staging_is_all_or_nothing(self):
        """One bad element in a multi-element delta: the good one must
        not be half-applied."""
        _, plane, _ = build_plane()
        from repro.graph.diff import ElementChange, GraphDelta

        graph = plane.router.graph
        good = ElementChange(
            "rt", "LookupIPRoute", "LookupIPRoute",
            graph.elements["rt"].config, graph.elements["rt"].config,
        )
        bad = ElementChange(
            "c0", "Classifier", "Classifier",
            graph.elements["c0"].config, "totally/bogus rules",
        )
        before_routes = plane.router.elements["rt"].routes
        with pytest.raises(ControlPlaneError):
            plane.apply(GraphDelta(changed=[good, bad]))
        assert plane.router.elements["rt"].routes == before_routes

    def test_unknown_element_rejected(self):
        _, plane, _ = build_plane()
        with pytest.raises(ControlPlaneError, match="no element named"):
            plane.update_routes("nope", ["1.0.0.0/8 1"])


class TestStructural:
    def spliced_graph(self, plane):
        graph = plane.router.graph.copy()
        graph.add_element("xcount", "Counter", None)
        # Splice onto a forwarding output (port 0 is the host path,
        # which the evaluation traffic never takes).
        conn = next(
            c for c in graph.connections if c.from_element == "rt" and c.from_port == 1
        )
        graph.remove_connection(conn)
        graph.add_connection(conn.from_element, conn.from_port, "xcount", 0)
        graph.add_connection("xcount", 0, conn.to_element, conn.to_port)
        return graph

    def test_structural_update_scoped_swap(self):
        testbed, plane, devices = build_plane()
        old = plane.router
        drive(testbed, plane, devices, 32)
        report = plane.apply(self.spliced_graph(plane))
        assert report.kind == "scoped-swap"
        assert report.chains_reused > 0
        assert report.chains_recompiled > 0
        assert "diff" in report.phases and "compile" in report.phases
        assert plane.router is not old and old.retired
        assert "xcount" in plane.router.elements
        # State carried, traffic continues through the new generation.
        assert report.transferred
        assert drive(testbed, plane, devices, 32, start=32) > 0
        assert plane.router["xcount"].count > 0

    def test_history_and_batch(self):
        _, plane, _ = build_plane()
        reports = plane.apply_batch(
            [plane.router.graph.copy(), self.spliced_graph(plane)]
        )
        assert [report.kind for report in reports] == ["no-op", "scoped-swap"]
        assert [report.kind for report in plane.history] == ["no-op", "scoped-swap"]

    def test_failed_swap_keeps_old_router(self):
        _, plane, _ = build_plane()
        old = plane.router
        graph = plane.router.graph.copy()
        graph.add_element("dangling", "Counter", None)  # unconnected ports
        with pytest.raises(ControlPlaneError, match="old router still serving"):
            plane.apply(graph)
        assert plane.router is old and not old.retired


class TestCli:
    def write_config(self, tmp_path):
        from repro.core.toolchain import save_config

        testbed = Testbed(2)
        path = tmp_path / "router.click"
        path.write_text(save_config(testbed.variant_graph("base")))
        return path

    def test_routes_patch_and_json(self, tmp_path, capsys):
        from repro.control.cli import main

        path = self.write_config(tmp_path)
        config = path.read_text()
        rt_config = next(
            line for line in config.splitlines() if line.startswith("rt ::")
        )
        table = rt_config[rt_config.index("(") + 1 : rt_config.rindex(")")]
        status = main([str(path), "--routes", "rt=%s" % table, "--json"])
        assert status == 0
        [entry] = json.loads(capsys.readouterr().out)
        assert entry["kind"] == "in-place"
        assert entry["update"] == "routes rt"

    def test_diff_only(self, tmp_path, capsys):
        from repro.control.cli import main

        path = self.write_config(tmp_path)
        update = tmp_path / "update.click"
        update.write_text(path.read_text().replace("Queue(64)", "Queue(32)"))
        status = main([str(path), "--update", str(update), "--diff-only"])
        assert status == 0
        assert "pure-data" in capsys.readouterr().out

    def test_rejected_update_exits_nonzero(self, tmp_path, capsys):
        from repro.control.cli import main

        path = self.write_config(tmp_path)
        status = main([str(path), "--routes", "rt=999.999.0.0/16 0"])
        assert status == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_console_script_entry(self):
        from repro.core.cli import update_main

        with pytest.raises(SystemExit):
            update_main(["--help"])
