"""Tests for the peephole cleanup pattern library."""

import pytest

from repro.core.patterns import CLEANUP_PATTERNS, DOUBLE_PAINT, STRIP_UNSTRIP
from repro.core.xform import xform
from repro.elements import Router
from repro.lang.build import parse_graph
from repro.net.packet import Packet


class TestStripUnstrip:
    def test_inverse_pair_removed(self):
        graph = parse_graph(
            "f :: Idle; c :: Counter; s :: Strip(14); u :: Unstrip(14); d :: Discard;"
            "f -> c -> s -> u -> d;"
        )
        result = xform(graph, patterns=[STRIP_UNSTRIP])
        assert not result.elements_of_class("Strip")
        assert not result.elements_of_class("Unstrip")
        assert result.elements_of_class("Null")

    def test_mismatched_sizes_kept(self):
        graph = parse_graph(
            "f :: Idle; s :: Strip(14); u :: Unstrip(10); d :: Discard; f -> s -> u -> d;"
        )
        result = xform(graph, patterns=[STRIP_UNSTRIP])
        assert result.elements_of_class("Strip")

    def test_behaviour_preserved(self):
        def run(graph_text, use_patterns):
            graph = parse_graph(graph_text)
            if use_patterns:
                graph = xform(graph, patterns=CLEANUP_PATTERNS)
            router = Router(graph)
            entry = [n for n in router.elements if n == "c"][0]
            router.push_packet(entry, 0, Packet(bytes(range(40))))
            return router["q"].pull(0).data

        text = (
            "f :: Idle; c :: Counter; s :: Strip(14); u :: Unstrip(14);"
            "q :: Queue; uq :: Unqueue; d :: Discard; f -> c -> s -> u -> q -> uq -> d;"
        )
        assert run(text, False) == run(text, True)


class TestDoublePaint:
    def test_second_paint_wins(self):
        graph = parse_graph(
            "f :: Idle; a :: Paint(1); b :: Paint(2); q :: Queue; u :: Unqueue;"
            "d :: Discard; f -> a -> b -> q -> u -> d;"
        )
        result = xform(graph, patterns=[DOUBLE_PAINT])
        paints = result.elements_of_class("Paint")
        assert len(paints) == 1
        assert paints[0].config == "2"

    def test_triple_paint_collapses_to_last(self):
        graph = parse_graph(
            "f :: Idle; a :: Paint(1); b :: Paint(2); c :: Paint(3); d :: Discard;"
            "f -> a -> b -> c -> d;"
        )
        result = xform(graph, patterns=[DOUBLE_PAINT])
        paints = result.elements_of_class("Paint")
        assert len(paints) == 1
        assert paints[0].config == "3"


class TestCleanupOnCompounds:
    def test_flattened_abstractions_get_cleaned(self):
        """Compounds that each strip-then-restore compose into inverse
        pairs only visible after flattening — the §6.2 argument for
        flattening before optimizing."""
        graph = parse_graph(
            """
            elementclass WithHeader { input -> u :: Unstrip(14) -> output; }
            elementclass WithoutHeader { input -> s :: Strip(14) -> output; }
            f :: Idle; c :: Counter;
            wo :: WithoutHeader; wi :: WithHeader;
            d :: Discard;
            f -> c -> wo -> wi -> d;
            """
        )
        result = xform(graph, patterns=CLEANUP_PATTERNS)
        assert not result.elements_of_class("Strip")
        assert not result.elements_of_class("Unstrip")

    def test_cleanup_is_idempotent(self):
        graph = parse_graph(
            "f :: Idle; a :: Paint(1); b :: Paint(2); d :: Discard; f -> a -> b -> d;"
        )
        once = xform(graph, patterns=CLEANUP_PATTERNS)
        twice = xform(once, patterns=CLEANUP_PATTERNS)
        assert len(once.elements) == len(twice.elements)
