"""Tests for the command-line tool entry points — the Unix-filter
convention the paper's tools follow."""

import os

import pytest

from repro.core import cli
from repro.core.toolchain import load_config
from repro.lang.archive import is_archive

ROUTER = """
feeder :: Idle; feeder -> c;
c :: Classifier(12/0800, -);
c [0] -> Counter -> q :: Queue(64) -> u :: Unqueue -> Discard;
c [1] -> Discard;
"""


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "router.click"
    path.write_text(ROUTER)
    return str(path)


def run_filter(main, config_file, tmp_path, extra=()):
    out_path = str(tmp_path / "out.click")
    code = main([config_file, "-o", out_path, *extra])
    assert code == 0
    with open(out_path) as handle:
        return handle.read()


class TestFilters:
    def test_fastclassifier_main(self, config_file, tmp_path):
        output = run_filter(cli.fastclassifier_main, config_file, tmp_path)
        assert is_archive(output)
        graph = load_config(output)
        assert graph.elements["c"].class_name == "FastClassifier@@c"

    def test_devirtualize_main(self, config_file, tmp_path):
        output = run_filter(cli.devirtualize_main, config_file, tmp_path)
        graph = load_config(output)
        assert graph.elements["c"].class_name.startswith("Devirtualize@@")

    def test_devirtualize_exclusion_flag(self, config_file, tmp_path):
        output = run_filter(
            cli.devirtualize_main, config_file, tmp_path, extra=["-n", "c"]
        )
        graph = load_config(output)
        assert graph.elements["c"].class_name == "Classifier"

    def test_xform_main_with_standard_patterns(self, tmp_path):
        from repro.configs.iprouter import ip_router_config

        path = tmp_path / "ip.click"
        path.write_text(ip_router_config())
        output = run_filter(cli.xform_main, str(path), tmp_path)
        graph = load_config(output)
        assert graph.elements_of_class("IPInputCombo")

    def test_xform_pattern_file(self, config_file, tmp_path):
        pattern_file = tmp_path / "patterns.click"
        pattern_file.write_text(
            "input -> c :: Counter -> output;\n%%\n"
            "input -> t :: Tee(1) -> output;\n"
        )
        output = run_filter(
            cli.xform_main, config_file, tmp_path, extra=["-p", str(pattern_file)]
        )
        graph = load_config(output)
        assert not graph.elements_of_class("Counter")
        assert graph.elements_of_class("Tee")

    def test_undead_main(self, tmp_path):
        path = tmp_path / "dead.click"
        path.write_text(
            "s :: InfiniteSource; sw :: StaticSwitch(0); live :: Counter; dead :: Counter;"
            "s -> sw; sw [0] -> live -> Discard; sw [1] -> dead -> Discard;"
        )
        output = run_filter(cli.undead_main, str(path), tmp_path)
        graph = load_config(output)
        assert "dead" not in graph.elements
        assert not graph.elements_of_class("StaticSwitch")

    def test_align_main(self, tmp_path):
        path = tmp_path / "align.click"
        path.write_text(
            "pd :: PollDevice(eth0) -> Strip(14) -> chk :: CheckIPHeader"
            " -> q :: Queue -> ToDevice(eth0);"
        )
        output = run_filter(cli.align_main, str(path), tmp_path)
        graph = load_config(output)
        assert graph.elements_of_class("Align")
        assert graph.elements_of_class("AlignmentInfo")

    def test_flatten_main(self, tmp_path):
        path = tmp_path / "compound.click"
        path.write_text(
            "elementclass W { input -> c :: Counter -> output; }"
            "f :: Idle; w :: W; f -> w -> Discard;"
        )
        output = run_filter(cli.flatten_main, str(path), tmp_path)
        graph = load_config(output)
        assert not graph.element_classes
        assert "w/c" in graph.elements

    def test_mkmindriver_main(self, config_file, tmp_path):
        output = run_filter(cli.mkmindriver_main, config_file, tmp_path)
        graph = load_config(output)
        assert "mindriver.manifest" in graph.archive

    def test_pretty_main(self, config_file, tmp_path):
        output = run_filter(cli.pretty_main, config_file, tmp_path)
        assert output.startswith("<!DOCTYPE html>")
        assert "Classifier" in output


class TestOptimizeMain:
    """click-optimize: one command for the whole pass pipeline."""

    def test_paper_pipeline_matches_chained_clis(self, tmp_path):
        """`click-optimize --pipeline paper` output is byte-identical to
        the four-stage shell pipe of the individual tools."""
        from repro.configs.iprouter import ip_router_config

        path = tmp_path / "ip.click"
        path.write_text(ip_router_config())
        stage = str(path)
        for index, main in enumerate(
            (cli.fastclassifier_main, cli.xform_main, cli.undead_main,
             cli.align_main, cli.devirtualize_main)
        ):
            out = str(tmp_path / ("stage%d.click" % index))
            assert main([stage, "-o", out]) == 0
            stage = out
        chained = open(stage).read()

        optimized_path = str(tmp_path / "optimized.click")
        assert cli.optimize_main(
            [str(path), "--pipeline", "paper", "-o", optimized_path]
        ) == 0
        assert open(optimized_path).read() == chained

    def test_report_json_covers_all_five_passes(self, tmp_path):
        import json

        from repro.configs.iprouter import ip_router_config

        path = tmp_path / "ip.click"
        path.write_text(ip_router_config())
        report_path = str(tmp_path / "report.json")
        code = cli.optimize_main(
            [str(path), "-o", str(tmp_path / "out.click"), "--report", report_path]
        )
        assert code == 0
        report = json.load(open(report_path))
        assert report["pipeline"] == "paper"
        assert [entry["name"] for entry in report["passes"]] == [
            "fastclassifier", "xform", "undead", "align", "devirtualize",
        ]
        for entry in report["passes"]:
            assert entry["seconds"] > 0
            assert entry["elements_delta"] == (
                entry["elements_after"] - entry["elements_before"]
            )

    def test_report_dash_goes_to_stderr(self, config_file, capsys):
        assert cli.optimize_main([config_file, "-o", os.devnull, "--report", "-"]) == 0
        captured = capsys.readouterr()
        assert '"pipeline": "paper"' in captured.err

    def test_validate_flag(self, config_file):
        assert cli.optimize_main([config_file, "-o", os.devnull, "--validate"]) == 0

    def test_list_pipelines(self, capsys):
        assert cli.optimize_main(["--list-pipelines"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "fastclassifier -> xform" in out

    def test_unknown_pipeline_errors(self, config_file):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="unknown pipeline"):
            cli.optimize_main([config_file, "--pipeline", "turbo"])

    def test_every_filter_accepts_report(self, config_file, tmp_path):
        """--report FILE works on the single-tool CLIs too."""
        import json

        for main, name in (
            (cli.fastclassifier_main, "fastclassifier"),
            (cli.devirtualize_main, "devirtualize"),
            (cli.xform_main, "xform"),
            (cli.undead_main, "undead"),
            (cli.align_main, "align"),
            (cli.flatten_main, "flatten"),
            (cli.mkmindriver_main, "mkmindriver"),
        ):
            report_path = str(tmp_path / (name + ".json"))
            code = main(
                [config_file, "-o", str(tmp_path / (name + ".click")),
                 "--report", report_path]
            )
            assert code == 0
            report = json.load(open(report_path))
            assert [entry["name"] for entry in report["passes"]] == [name]


class TestCheckMain:
    def test_clean_config_exits_zero(self, config_file):
        assert cli.check_main([config_file]) == 0

    def test_broken_config_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.click"
        path.write_text("f :: Idle; x :: NoSuchClass; f -> x;")
        assert cli.check_main([str(path)]) == 1
        assert "NoSuchClass" in capsys.readouterr().err


class TestCombineMains:
    def test_combine_then_uncombine(self, tmp_path):
        from repro.configs.iprouter import two_router_network
        from repro.core.toolchain import save_config

        routers, _, _ = two_router_network()
        path_a = tmp_path / "a.click"
        path_b = tmp_path / "b.click"
        path_a.write_text(save_config(routers["A"]))
        path_b.write_text(save_config(routers["B"]))
        combined_path = str(tmp_path / "combined.click")
        code = cli.combine_main(
            [
                "-r", "A=%s" % path_a, "-r", "B=%s" % path_b,
                "-l", "A.eth1=B.eth0", "-l", "B.eth0=A.eth1",
                "-o", combined_path,
            ]
        )
        assert code == 0
        combined = load_config(open(combined_path).read())
        assert combined.elements_of_class("RouterLink")

        out_path = str(tmp_path / "a_back.click")
        assert cli.uncombine_main(["A", combined_path, "-o", out_path]) == 0
        extracted = load_config(open(out_path).read())
        assert sorted(d.config for d in extracted.elements_of_class("ToDevice")) == [
            "eth0", "eth1",
        ]

    def test_pipeline_of_filters(self, config_file, tmp_path):
        """fastclassifier | xform | devirtualize as file-to-file stages."""
        stage1 = run_filter(cli.fastclassifier_main, config_file, tmp_path)
        path1 = tmp_path / "s1.click"
        path1.write_text(stage1)
        stage2 = run_filter(cli.xform_main, str(path1), tmp_path)
        path2 = tmp_path / "s2.click"
        path2.write_text(stage2)
        final = run_filter(cli.devirtualize_main, str(path2), tmp_path)
        graph = load_config(final)
        assert graph.elements["c"].class_name.startswith("Devirtualize@@")
        # Both generated-code members are present, in chain order.
        members = list(graph.archive)
        assert any(m.startswith("fastclassifier") for m in members)
        assert any(m.startswith("devirtualize") for m in members)
