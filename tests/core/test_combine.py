"""Unit tests for click-combine / click-uncombine and ARP elimination
(§7.2, Figure 7)."""

from collections import OrderedDict

import pytest

from repro.configs.iprouter import Interface, ip_router_graph
from repro.core.combine import Link, combine, eliminate_arp, uncombine
from repro.core.flatten import flatten
from repro.errors import ClickSemanticError
from repro.lang.build import parse_graph


def two_routers():
    """Routers A and B: A's eth1 connects point-to-point to B's eth0."""
    from repro.configs.iprouter import two_router_network

    routers, _, _ = two_router_network()
    links = [Link("A", "eth1", "B", "eth0"), Link("B", "eth0", "A", "eth1")]
    return routers, links


class TestCombine:
    def test_combined_structure(self):
        routers, links = two_routers()
        combined = combine(routers, links)
        assert set(combined.element_classes) == {"Router_A", "Router_B"}
        assert len(combined.elements_of_class("RouterLink")) == 2
        assert "A" in combined.elements
        assert "B" in combined.elements

    def test_linked_devices_replaced_by_ports(self):
        routers, links = two_routers()
        combined = combine(routers, links)
        body_a = combined.element_classes["Router_A"].body
        # A's eth1 ToDevice and PollDevice are gone; eth0's remain.
        devices = [
            d.config for d in body_a.elements.values()
            if d.class_name in ("ToDevice", "PollDevice")
        ]
        assert devices == ["eth0", "eth0"]

    def test_flattened_combination_is_checkable(self):
        from repro.core.check import check

        routers, links = two_routers()
        flat = flatten(combine(routers, links))
        collector = check(flat)
        assert collector.ok, collector.format()

    def test_missing_device_rejected(self):
        routers, _ = two_routers()
        with pytest.raises(ClickSemanticError):
            combine(routers, [Link("A", "eth9", "B", "eth0")])

    def test_combined_router_forwards_end_to_end(self):
        """A packet entering A's eth0 for network 3 crosses the link and
        leaves B's eth1 — two routers in one configuration."""
        from repro.elements import LoopbackDevice, Router
        from repro.net.headers import ETHER_HEADER_LEN, IPHeader, build_ether_udp_packet

        routers, links = two_routers()
        combined = flatten(combine(routers, links))
        devices = {"eth0": LoopbackDevice("eth0"), "eth1": LoopbackDevice("eth1")}
        runtime = Router(combined, devices=devices)
        runtime["A/arpq1"].insert("2.0.0.2", "00:00:C0:BB:00:00")
        runtime["B/arpq1"].insert("3.0.0.9", "00:20:6F:99:99:99")
        frame = build_ether_udp_packet(
            "00:20:6F:11:11:11", "00:00:C0:AA:00:00", "1.0.0.5", "3.0.0.9",
            payload=b"\x00" * 14, ttl=64,
        )
        devices["eth0"].receive_frame(frame)
        runtime.run_tasks(100)
        assert len(devices["eth1"].transmitted) == 1
        out = devices["eth1"].transmitted[0]
        header = IPHeader.unpack(out[ETHER_HEADER_LEN:])
        assert str(header.dst) == "3.0.0.9"
        assert header.ttl == 62  # decremented by BOTH routers


class TestUncombine:
    def test_round_trip_restores_devices(self):
        routers, links = two_routers()
        combined = combine(routers, links)
        extracted = uncombine(combined, "A")
        to_devices = sorted(d.config for d in extracted.elements_of_class("ToDevice"))
        poll_devices = sorted(d.config for d in extracted.elements_of_class("PollDevice"))
        assert to_devices == ["eth0", "eth1"]
        assert poll_devices == ["eth0", "eth1"]

    def test_round_trip_preserves_element_set(self):
        routers, links = two_routers()
        original = flatten(routers["A"])
        extracted = uncombine(combine(routers, links), "A")
        original_classes = sorted(d.class_name for d in original.elements.values())
        extracted_classes = sorted(d.class_name for d in extracted.elements.values())
        assert original_classes == extracted_classes

    def test_extracted_router_is_valid(self):
        from repro.core.check import check

        routers, links = two_routers()
        extracted = uncombine(combine(routers, links), "B")
        assert check(extracted).ok

    def test_unknown_router_rejected(self):
        routers, links = two_routers()
        combined = combine(routers, links)
        with pytest.raises(ClickSemanticError):
            uncombine(combined, "C")


class TestARPElimination:
    def test_link_arp_queriers_replaced(self):
        routers, links = two_routers()
        combined = combine(routers, links)
        optimized = eliminate_arp(combined)
        encaps = optimized.elements_of_class("EtherEncap")
        assert len(encaps) == 2  # one per link direction
        # The remaining ARPQueriers are the outward-facing ones.
        remaining = [d.name for d in optimized.elements_of_class("ARPQuerier")]
        assert sorted(remaining) == ["A/arpq0", "B/arpq1"]

    def test_encap_addresses_point_at_peer(self):
        routers, links = two_routers()
        optimized = eliminate_arp(combine(routers, links))
        configs = sorted(d.config for d in optimized.elements_of_class("EtherEncap"))
        # A->B traffic addressed to B's eth0 MAC; B->A to A's eth1 MAC.
        assert any("00:00:C0:BB:00:00" in c for c in configs)
        assert any("00:00:C0:AA:00:01" in c for c in configs)

    def test_uncombine_after_elimination(self):
        """The full tool chain of §7.2: combine | xform | uncombine."""
        routers, links = two_routers()
        optimized = eliminate_arp(combine(routers, links))
        extracted = uncombine(optimized, "A")
        assert len(extracted.elements_of_class("EtherEncap")) == 1
        assert len(extracted.elements_of_class("ARPQuerier")) == 1
        # The restored device elements are intact.
        assert sorted(d.config for d in extracted.elements_of_class("ToDevice")) == [
            "eth0", "eth1",
        ]

    def test_mr_router_still_forwards(self):
        """The ARP-free extracted router forwards identically (it just
        skips the ARP machinery on the point-to-point interface)."""
        from repro.core.check import check
        from repro.elements import LoopbackDevice, Router
        from repro.net.headers import ETHER_HEADER_LEN, EtherHeader, build_ether_udp_packet

        routers, links = two_routers()
        extracted = uncombine(eliminate_arp(combine(routers, links)), "A")
        assert check(extracted).ok, check(extracted).format()
        devices = {"eth0": LoopbackDevice("eth0"), "eth1": LoopbackDevice("eth1")}
        runtime = Router(extracted, devices=devices)
        frame = build_ether_udp_packet(
            "00:20:6F:11:11:11", "00:00:C0:AA:00:00", "1.0.0.5", "2.0.0.7",
            payload=b"\x00" * 14,
        )
        devices["eth0"].receive_frame(frame)
        runtime.run_tasks(50)
        # No ARP dance needed: the frame leaves immediately, addressed
        # to the peer's hardware address.
        assert len(devices["eth1"].transmitted) == 1
        ether = EtherHeader.unpack(devices["eth1"].transmitted[0])
        assert str(ether.dst) == "00:00:C0:BB:00:00"
