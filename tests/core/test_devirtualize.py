"""Unit tests for click-devirtualize (§6.1)."""

from repro.configs.iprouter import ip_router_graph
from repro.core.devirtualize import devirtualize, devirtualized_class_name, sharing_classes
from repro.core.toolchain import load_config, save_config, tool_specs
from repro.elements import LoopbackDevice, Router
from repro.lang.build import parse_graph
from repro.net.packet import Packet


def partitions_of(text, exclude=()):
    graph = parse_graph(text)
    return sharing_classes(graph, tool_specs(graph), exclude)


def partition_map(partitions):
    """element name -> representative."""
    result = {}
    for representative, members in partitions.items():
        for member in members:
            result[member] = representative
    return result


class TestSharingRules:
    def test_rule1_different_classes_never_share(self):
        mapping = partition_map(
            partitions_of("f :: Idle; c :: Counter; s :: Strip(14); f -> c; c -> Discard; s -> Discard; f2 :: Idle; f2 -> s;")
        )
        assert mapping["c"] != mapping["s"]

    def test_discards_share(self):
        """All (push) Discards share code — the paper's base case."""
        mapping = partition_map(
            partitions_of(
                "f1 :: Idle; f2 :: Idle; d1 :: Discard; d2 :: Discard;"
                "f1 -> d1; f2 -> d2;"
            )
        )
        assert mapping["d1"] == mapping["d2"]

    def test_counters_to_shared_discards_share(self):
        """The paper's induction: two Counters each feeding a Discard
        share code because the Discards share code."""
        mapping = partition_map(
            partitions_of(
                "f1 :: Idle; f2 :: Idle; c1 :: Counter; c2 :: Counter;"
                "f1 -> c1 -> Discard; f2 -> c2 -> Discard;"
            )
        )
        assert mapping["c1"] == mapping["c2"]

    def test_rule4_different_downstream_classes_split(self):
        """Figure 2's situation: same class, different targets — no
        sharing."""
        mapping = partition_map(
            partitions_of(
                "f1 :: Idle; f2 :: Idle; c1 :: Counter; c2 :: Counter;"
                "f1 -> c1 -> Discard; f2 -> c2 -> Idle;"
            )
        )
        assert mapping["c1"] != mapping["c2"]

    def test_rule4_port_numbers_matter(self):
        mapping = partition_map(
            partitions_of(
                "f1 :: Idle; f2 :: Idle; c1 :: Counter; c2 :: Counter;"
                "s :: StaticSwitch(0); s2 :: StaticSwitch(0);"
                "x1 :: Idle; x2 :: Idle;"
                "f1 -> c1; f2 -> c2;"
                "c1 -> [0] m :: Merge2; c2 -> [1] m2 :: Merge2;"
                "m -> Discard; m2 -> Discard; x1 -> [1] m; x2 -> [0] m2;"
            )
        )
        # c1 pushes into port 0 of a Merge2, c2 into port 1: no sharing.
        assert mapping["c1"] != mapping["c2"]

    def test_rule2_port_counts_matter(self):
        mapping = partition_map(
            partitions_of(
                "f1 :: Idle; f2 :: Idle; t1 :: Tee(1); t2 :: Tee(2);"
                "f1 -> t1 -> Discard; f2 -> t2;"
                "t2 [0] -> Discard; t2 [1] -> Discard;"
            )
        )
        assert mapping["t1"] != mapping["t2"]

    def test_exclusion_forces_singleton(self):
        mapping = partition_map(
            partitions_of(
                "f1 :: Idle; f2 :: Idle; c1 :: Counter; c2 :: Counter;"
                "f1 -> c1 -> Discard; f2 -> c2 -> Discard;",
                exclude=["c1"],
            )
        )
        assert mapping["c1"] != mapping["c2"]

    def test_ip_router_interface_paths_share(self):
        """§6.1: 'In our IP router configurations, analogous elements in
        different interface paths can always share code.'"""
        graph = ip_router_graph()
        partitions = sharing_classes(graph, tool_specs(graph))
        mapping = partition_map(partitions)
        analogous = [
            ("c0", "c1"),
            ("arpq0", "arpq1"),
            ("arpr0", "arpr1"),
            ("out0", "out1"),
            ("td0", "td1"),
            ("db0", "db1"),
            ("cp0", "cp1"),
            ("gio0", "gio1"),
            ("dt0", "dt1"),
            ("fr0", "fr1"),
        ]
        for left, right in analogous:
            assert mapping[left] == mapping[right], (left, right)


class TestTransformation:
    TEXT = (
        "f :: Idle; c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard;"
        "f -> c -> q -> u -> d;"
    )

    def test_classes_rewritten_and_archive_attached(self):
        graph = parse_graph(self.TEXT)
        result = devirtualize(graph)
        assert result.elements["c"].class_name.startswith("Devirtualize@@")
        assert any(m.startswith("devirtualize") for m in result.archive)
        assert "devirtualize" in result.requirements

    def test_configs_preserved(self):
        graph = parse_graph(self.TEXT)
        result = devirtualize(graph)
        assert result.elements["q"].config == "8"

    def test_exclusion_leaves_original_class(self):
        graph = parse_graph(self.TEXT)
        result = devirtualize(graph, exclude=["q"])
        assert result.elements["q"].class_name == "Queue"
        assert result.elements["c"].class_name.startswith("Devirtualize@@")

    def test_runtime_ports_become_direct(self):
        graph = parse_graph(self.TEXT)
        rebuilt = load_config(save_config(devirtualize(graph)))
        router = Router(rebuilt)
        assert router["c"].devirtualized
        assert router["c"].output(0).virtual is False
        router.push_packet("c", 0, Packet(b"x"))
        router.run_tasks(1)
        assert router["d"].count == 1

    def test_behaviour_preserved_on_ip_router(self):
        """Devirtualized IP router forwards byte-identical frames."""
        from repro.configs.iprouter import default_interfaces
        from repro.net.headers import build_ether_udp_packet

        interfaces = default_interfaces(2)

        def run(graph):
            devices = {
                "eth0": LoopbackDevice("eth0", tx_capacity=256),
                "eth1": LoopbackDevice("eth1", tx_capacity=256),
            }
            router = Router(graph, devices=devices)
            router["arpq1"].insert("2.0.0.2", "00:20:6F:0A:0B:0C")
            devices["eth0"].receive_frame(
                build_ether_udp_packet(
                    "00:20:6F:03:04:05", interfaces[0].ether,
                    "1.0.0.2", "2.0.0.2", payload=b"\x00" * 14,
                )
            )
            router.run_tasks(50)
            return devices["eth1"].transmitted

        base = run(ip_router_graph(interfaces))
        optimized_graph = load_config(save_config(devirtualize(ip_router_graph(interfaces))))
        optimized = run(optimized_graph)
        assert base == optimized
        assert len(base) == 1

    def test_devirtualize_after_fastclassifier(self):
        """The chain order the paper prescribes: devirtualize last, over
        classes fastclassifier generated."""
        from repro.core.fastclassifier import fastclassifier

        text = (
            "f :: Idle; f -> c; c :: Classifier(12/0800, -);"
            "c [0] -> d0 :: Discard; c [1] -> d1 :: Discard;"
        )
        graph = parse_graph(text)
        chained = devirtualize(fastclassifier(graph))
        rebuilt = load_config(save_config(chained))
        router = Router(rebuilt)
        assert router["c"].devirtualized
        router.push_packet("c", 0, Packet(bytes(12) + b"\x08\x00" + bytes(46)))
        assert router["d0"].count == 1
