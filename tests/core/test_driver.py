"""Tests for the userlevel driver (click-run)."""

import pytest

from repro.core.driver import main, run_config
from repro.net.pcap import read_pcap, write_pcap

CONFIG = """
src :: InfiniteSource("payload!", 10, 2);
c :: Counter;
src -> c -> q :: Queue(64) -> u :: Unqueue -> d :: Discard;
"""

DEVICE_CONFIG = """
pd :: PollDevice(eth0);
q :: Queue(64);
td :: ToDevice(eth1);
pd -> q -> td;
"""


class TestRunConfig:
    def test_runs_and_counts(self):
        router, devices = run_config(CONFIG, iterations=20)
        assert router["c"].count == 10
        assert router["d"].count == 10

    def test_devices_created_automatically(self):
        router, devices = run_config(DEVICE_CONFIG, iterations=4)
        assert set(devices) == {"eth0", "eth1"}

    def test_capture_feeds_device(self):
        capture = write_pcap([b"\x01" * 60, b"\x02" * 60])
        router, devices = run_config(
            DEVICE_CONFIG, iterations=10, device_captures={"eth0": capture}
        )
        assert devices["eth1"].transmitted == [b"\x01" * 60, b"\x02" * 60]

    def test_compounds_flattened_automatically(self):
        config = """
        elementclass Pipe { input -> c :: Counter -> output; }
        src :: InfiniteSource("x", 3); p :: Pipe; src -> p -> Discard;
        """
        router, _ = run_config(config, iterations=5)
        assert router["p/c"].count == 3


class TestDriverCLI:
    def test_handlers_printed(self, tmp_path, capsys):
        path = tmp_path / "r.click"
        path.write_text(CONFIG)
        assert main([str(path), "-n", "20", "-H", "c.count", "-H", "q.length"]) == 0
        out = capsys.readouterr().out
        assert "c.count: 10" in out
        assert "q.length: 0" in out

    def test_device_summary_by_default(self, tmp_path, capsys):
        path = tmp_path / "r.click"
        path.write_text(DEVICE_CONFIG)
        assert main([str(path), "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "eth1: 0 transmitted" in out

    def test_pcap_in_and_out(self, tmp_path, capsys):
        config_path = tmp_path / "r.click"
        config_path.write_text(DEVICE_CONFIG)
        in_path = tmp_path / "in.pcap"
        in_path.write_bytes(write_pcap([b"\xaa" * 60]))
        out_path = tmp_path / "out.pcap"
        assert main([
            str(config_path), "-n", "10",
            "-d", "eth0=%s" % in_path,
            "-s", "eth1=%s" % out_path,
        ]) == 0
        frames = read_pcap(out_path.read_bytes())
        assert [data for _, data in frames] == [b"\xaa" * 60]

    def test_runs_optimized_archives(self, tmp_path, capsys):
        """click-run consumes what the optimizer chain emits."""
        from repro.core import devirtualize, fastclassifier, save_config
        from repro.core.toolchain import load_config

        text = (
            'src :: InfiniteSource("%s", 4);'
            "c :: Classifier(12/0800, -); src -> c;"
            "c [0] -> ip :: Counter -> Discard; c [1] -> other :: Counter -> Discard;"
        ) % ("\\x00" * 12 + "\\x08\\x00" + "\\x00" * 46)
        graph = load_config(text)
        optimized = save_config(devirtualize(fastclassifier(graph)))
        path = tmp_path / "opt.click"
        path.write_text(optimized)
        assert main([str(path), "-n", "8", "-H", "other.count"]) == 0
        # InfiniteSource data is literal text (no escape processing), so
        # the frames land on the catch-all output.
        assert "other.count: 4" in capsys.readouterr().out


class TestTCPHeader:
    def test_round_trip(self):
        from repro.net.headers import TCP_ACK, TCP_SYN, TCPHeader, build_tcp_packet

        header = TCPHeader(80, 443, seq=7, ack=9, flags=TCP_SYN | TCP_ACK)
        parsed = TCPHeader.unpack(header.pack())
        assert parsed == header

    def test_build_tcp_packet_matches_filter(self):
        from repro.classifier.ipfilter import compile_expressions
        from repro.net.headers import TCP_ACK, build_tcp_packet

        tree = compile_expressions(["tcp dst port 443 && tcp opt ack"])
        packet = build_tcp_packet("1.2.3.4", "5.6.7.8", dst_port=443, flags=TCP_ACK)
        assert tree.match(packet) == 0
