"""Unit tests for click-fastclassifier (§4)."""

from repro.core.fastclassifier import (
    extract_tree,
    fastclassifier,
    find_classifiers,
    generate_module,
)
from repro.core.toolchain import load_config, save_config
from repro.elements import Router
from repro.lang.archive import read_archive
from repro.lang.build import parse_graph
from repro.net.headers import build_arp_request, build_udp_packet
from repro.net.packet import Packet

ROUTER_TEXT = """
feeder :: Idle; feeder -> c;
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
c [0] -> d0 :: Discard; c [1] -> d1 :: Discard;
c [2] -> d2 :: Discard; c [3] -> d3 :: Discard;
"""


def frames():
    return [
        Packet(build_arp_request("00:20:6F:14:54:C2", "1.0.0.1", "1.0.0.2")),
        Packet(bytes(12) + b"\x08\x06" + bytes(6) + b"\x00\x02" + bytes(40)),
        Packet(bytes(12) + b"\x08\x00" + bytes(46)),
        Packet(bytes(12) + b"\x86\xdd" + bytes(46)),
    ]


def run_and_count(graph, packets):
    router = Router(graph)
    entry = find_entry(router)
    for packet in packets:
        router.push_packet(entry, 0, packet.clone())
    return {name: e.count for name, e in router.elements.items() if hasattr(e, "count")}


def find_entry(router):
    for name, element in router.elements.items():
        if element.class_name.startswith(("Classifier", "FastClassifier", "IPFilter")):
            return name
    raise AssertionError("no classifier entry")


class TestDiscovery:
    def test_finds_all_classifier_kinds(self):
        graph = parse_graph(
            "feeder :: Idle; c :: Classifier(12/0800); i :: IPClassifier(tcp);"
            "f :: IPFilter(allow all); feeder -> c -> i -> f -> Discard;"
        )
        assert find_classifiers(graph) == ["c", "i", "f"]

    def test_extract_tree_via_harness(self):
        graph = parse_graph(ROUTER_TEXT)
        tree = extract_tree(graph.elements["c"])
        assert tree.match(bytes(12) + b"\x08\x00" + bytes(46)) == 2


class TestTransformation:
    def test_rewrites_class_and_attaches_archive(self):
        graph = parse_graph(ROUTER_TEXT)
        result = fastclassifier(graph)
        decl = result.elements["c"]
        assert decl.class_name == "FastClassifier@@c"
        assert decl.config is None
        assert any(m.endswith(".py") for m in result.archive)
        assert "fastclassifier" in result.requirements

    def test_original_untouched(self):
        graph = parse_graph(ROUTER_TEXT)
        fastclassifier(graph)
        assert graph.elements["c"].class_name == "Classifier"

    def test_identical_trees_share_generated_class(self):
        graph = parse_graph(
            "feeder :: Idle; t :: Tee(2); a :: Classifier(12/0800, -);"
            "b :: Classifier(12/0800, -); feeder -> t;"
            "t [0] -> a; t [1] -> b;"
            "a [0] -> Discard; a [1] -> Discard; b [0] -> Discard; b [1] -> Discard;"
        )
        result = fastclassifier(graph)
        assert result.elements["a"].class_name == result.elements["b"].class_name

    def test_generated_module_counts_unique_trees(self):
        from repro.classifier.language import compile_patterns

        trees = {
            "a": compile_patterns(["12/0800", "-"]),
            "b": compile_patterns(["12/0800", "-"]),
            "c": compile_patterns(["12/0806", "-"]),
        }
        source, assignment = generate_module(trees)
        assert assignment["a"] == assignment["b"]
        assert assignment["c"] != assignment["a"]
        assert source.count("class FastClassifier_") == 2


class TestBehaviourPreserved:
    def test_transformed_router_classifies_identically(self):
        graph = parse_graph(ROUTER_TEXT)
        before = run_and_count(graph, frames())
        after_graph = load_config(save_config(fastclassifier(graph)))
        after = run_and_count(after_graph, frames())
        assert before == after
        assert sum(before.values()) == len(frames())

    def test_round_trip_through_archive_text(self):
        """The tool's output must survive the stdout/stdin convention:
        serialize to archive text, parse back, run."""
        graph = parse_graph(ROUTER_TEXT)
        text = save_config(fastclassifier(graph))
        assert text.startswith("!<archive>")
        members = read_archive(text)
        assert "config" in members
        assert any(name.endswith(".py") for name in members)
        rebuilt = load_config(text)
        router = Router(rebuilt)
        router.push_packet("c", 0, Packet(bytes(12) + b"\x08\x00" + bytes(46)))
        assert router["d2"].count == 1

    def test_ipfilter_firewall_transforms(self):
        from repro.configs.firewall import dns5_packet, firewall_graph

        graph = firewall_graph()
        result = fastclassifier(graph)
        fast_names = [
            d.name for d in result.elements.values()
            if d.class_name.startswith("FastClassifier@@")
        ]
        assert fast_names == ["fw"]
        # The compiled firewall still accepts the DNS-5 packet.
        from repro.elements import LoopbackDevice

        rebuilt = load_config(save_config(result))
        router = Router(
            rebuilt,
            devices={"eth0": LoopbackDevice("eth0"), "eth1": LoopbackDevice("eth1")},
        )
        packet = Packet(dns5_packet())
        router.push_packet("fw", 0, packet)
        queues = router.elements_of_class("Queue")
        assert sum(len(q) for q in queues) == 1


class TestAdjacentCombination:
    TEXT = """
    feeder :: Idle; feeder -> a;
    a :: Classifier(12/0800, -);
    b :: Classifier(14/45, -);
    a [0] -> b; a [1] -> dx :: Discard;
    b [0] -> d0 :: Discard; b [1] -> d1 :: Discard;
    """

    def test_adjacent_classifiers_merged(self):
        graph = parse_graph(self.TEXT)
        result = fastclassifier(graph)
        # b is gone; a handles all three outcomes.
        assert "b" not in result.elements
        assert result.elements["a"].class_name == "FastClassifier@@a"

    def test_merged_behaviour(self):
        graph = parse_graph(self.TEXT)
        packets = [
            Packet(bytes(12) + b"\x08\x00\x45" + bytes(45)),  # IP, 0x45 -> d0
            Packet(bytes(12) + b"\x08\x00\x55" + bytes(45)),  # IP, other -> d1
            Packet(bytes(12) + b"\x08\x06" + bytes(46)),      # non-IP -> dx
        ]
        before = run_and_count(graph, packets)
        after = run_and_count(load_config(save_config(fastclassifier(graph))), packets)
        assert before == after

    def test_no_merge_when_port_shared(self):
        """If another element also reads the intermediate connection's
        source port... classifiers stay separate when the downstream has
        more than one incoming connection."""
        text = """
        feeder :: Idle; feeder -> a; feeder2 :: Idle;
        a :: Classifier(12/0800, -);
        b :: Classifier(14/45, -);
        a [0] -> b; a [1] -> Discard; feeder2 -> b;
        b [0] -> Discard; b [1] -> Discard;
        """
        graph = parse_graph(text)
        result = fastclassifier(graph)
        assert "b" in result.elements
