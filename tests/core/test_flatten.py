"""Unit tests for click-flatten (compound-element expansion)."""

import pytest

from repro.core.flatten import flatten, substitute_params
from repro.errors import ClickSemanticError
from repro.lang.build import parse_graph


class TestSubstitution:
    def test_basic(self):
        assert substitute_params("$a, $b", {"$a": "1", "$b": "2"}) == "1, 2"

    def test_unbound_variables_left_alone(self):
        assert substitute_params("$a, $zz", {"$a": "1"}) == "1, $zz"

    def test_none_config(self):
        assert substitute_params(None, {"$a": "1"}) is None


class TestFlatten:
    def test_simple_compound(self):
        graph = parse_graph(
            """
            elementclass Gate { input -> q :: Queue(16) -> u :: Unqueue -> output; }
            c :: Counter; g :: Gate; d :: Discard;
            c -> g -> d;
            """
        )
        flat = flatten(graph)
        assert not flat.element_classes
        assert "g/q" in flat.elements
        assert "g/u" in flat.elements
        assert flat.elements["g/q"].class_name == "Queue"
        # Wiring: c -> g/q -> g/u -> d.
        conns = {(c.from_element, c.to_element) for c in flat.connections}
        assert ("c", "g/q") in conns
        assert ("g/u", "d") in conns

    def test_parameter_binding(self):
        graph = parse_graph(
            """
            elementclass Gate { $cap | input -> q :: Queue($cap) -> u :: Unqueue -> output; }
            c :: Counter; g :: Gate(117); d :: Discard; c -> g -> d;
            """
        )
        flat = flatten(graph)
        assert flat.elements["g/q"].config == "117"

    def test_missing_arguments_bind_empty(self):
        graph = parse_graph(
            """
            elementclass Gate { $cap | input -> q :: Queue($cap) -> u :: Unqueue -> output; }
            c :: Counter; g :: Gate; d :: Discard; c -> g -> d;
            """
        )
        flat = flatten(graph)
        assert flat.elements["g/q"].config == ""

    def test_too_many_arguments_rejected(self):
        graph = parse_graph(
            """
            elementclass Gate { input -> output; }
            c :: Counter; g :: Gate(1, 2); d :: Discard; c -> g -> d;
            """
        )
        with pytest.raises(ClickSemanticError):
            flatten(graph)

    def test_multi_port_compound(self):
        graph = parse_graph(
            """
            elementclass Split {
              input -> s :: StaticSwitch(0);
              s [0] -> [0] output; s [1] -> [1] output;
            }
            c :: Counter; sp :: Split; d0 :: Discard; d1 :: Discard;
            c -> sp; sp [0] -> d0; sp [1] -> d1;
            """
        )
        flat = flatten(graph)
        conns = {(c.from_element, c.from_port, c.to_element, c.to_port) for c in flat.connections}
        assert ("sp/s", 0, "d0", 0) in conns
        assert ("sp/s", 1, "d1", 0) in conns

    def test_nested_compounds(self):
        graph = parse_graph(
            """
            elementclass Inner { input -> ic :: Counter -> output; }
            elementclass Outer { input -> i :: Inner -> output; }
            c :: Counter; o :: Outer; d :: Discard; c -> o -> d;
            """
        )
        flat = flatten(graph)
        assert "o/i/ic" in flat.elements

    def test_passthrough_compound(self):
        graph = parse_graph(
            """
            elementclass Wire { input -> output; }
            c :: Counter; w :: Wire; d :: Discard; c -> w -> d;
            """
        )
        flat = flatten(graph)
        # A shim Idle carries the pass-through.
        idles = flat.elements_of_class("Idle")
        assert len(idles) == 1
        conns = {(c.from_element, c.to_element) for c in flat.connections}
        assert ("c", idles[0].name) in conns
        assert ((idles[0].name), "d") in conns

    def test_two_instances_are_independent(self):
        graph = parse_graph(
            """
            elementclass Gate { $cap | input -> q :: Queue($cap) -> u :: Unqueue -> output; }
            c1 :: Counter; c2 :: Counter; g1 :: Gate(1); g2 :: Gate(2);
            c1 -> g1 -> Discard; c2 -> g2 -> Discard;
            """
        )
        flat = flatten(graph)
        assert flat.elements["g1/q"].config == "1"
        assert flat.elements["g2/q"].config == "2"

    def test_compound_runs_correctly(self):
        """Flattened compounds must behave like their bodies."""
        from repro.elements import Router
        from repro.net.packet import Packet

        graph = parse_graph(
            """
            elementclass Pipeline { input -> s :: Strip(4) -> output; }
            feeder :: Idle; p :: Pipeline; d :: Discard;
            feeder -> entry :: Counter -> p -> d;
            """
        )
        router = Router(flatten(graph))
        router.push_packet("entry", 0, Packet(b"hdr!payload"))
        assert router["d"].count == 1
