"""Tests for the pass manager: the unified tool API, pipeline
ordering, inter-pass validation, per-pass observability, fixpoint
iteration, and the deprecation shims."""

import json
import warnings

import pytest

from repro.configs.iprouter import ip_router_config
from repro.core import (
    NAMED_PIPELINES,
    Pass,
    PassError,
    Pipeline,
    PipelineWarning,
    devirtualize,
    fastclassifier,
    make_devirtualize_tool,
    make_xform_tool,
    named_pipeline,
    undead,
    xform,
)
from repro.core.patterns import STANDARD_PATTERNS
from repro.core.toolchain import load_config, save_config

SMALL = """
feeder :: Idle; feeder -> c;
c :: Classifier(12/0800, -);
c [0] -> Counter -> q :: Queue(64) -> u :: Unqueue -> Discard;
c [1] -> Discard;
"""


@pytest.fixture
def small_graph():
    return load_config(SMALL)


@pytest.fixture
def ip_graph():
    return load_config(ip_router_config(), "<fig4>")


class TestUnifiedToolAPI:
    def test_every_tool_carries_as_pass(self):
        from repro.core import align, flatten, mkmindriver

        for tool in (fastclassifier, devirtualize, xform, undead, align,
                     flatten, mkmindriver):
            pass_ = tool.as_pass()
            assert isinstance(pass_, Pass)
            assert pass_.name == tool.pass_name

    def test_as_pass_binds_options(self, small_graph):
        pass_ = devirtualize.as_pass(exclude=["c"])
        result = pass_(small_graph)
        assert result.elements["c"].class_name == "Classifier"
        assert result.elements["q"].class_name.startswith("Devirtualize@@")

    def test_keyword_form_does_not_warn(self, small_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            devirtualize(small_graph, exclude=["c"])
            xform(small_graph, patterns=STANDARD_PATTERNS)
            fastclassifier(small_graph, combine=False)

    def test_positional_options_warn_but_work(self, small_graph):
        with pytest.warns(DeprecationWarning, match="positional"):
            result = xform(small_graph, STANDARD_PATTERNS)
        assert len(result.elements) == len(small_graph.elements)
        with pytest.warns(DeprecationWarning, match="positional"):
            devirtualize(small_graph, ["c"])
        with pytest.warns(DeprecationWarning, match="positional"):
            fastclassifier(small_graph, False)

    def test_too_many_positionals_raise(self, small_graph):
        with pytest.raises(TypeError):
            undead(small_graph, "extra")

    def test_duplicate_positional_and_keyword_raise(self, small_graph):
        with pytest.raises(TypeError), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            devirtualize(small_graph, ["c"], exclude=["q"])

    def test_xform_defaults_to_standard_patterns(self, ip_graph):
        assert xform(ip_graph).elements_of_class("IPInputCombo")


class TestDeprecatedFactories:
    def test_make_devirtualize_tool_warns_and_works(self, small_graph):
        with pytest.warns(DeprecationWarning, match="as_pass"):
            tool = make_devirtualize_tool(exclude=["c"])
        assert isinstance(tool, Pass)
        result = tool(small_graph)
        assert result.elements["c"].class_name == "Classifier"

    def test_make_xform_tool_warns_and_works(self, ip_graph):
        with pytest.warns(DeprecationWarning, match="as_pass"):
            tool = make_xform_tool(STANDARD_PATTERNS)
        assert tool(ip_graph).elements_of_class("IPInputCombo")


class TestPipelineOrdering:
    def test_devirtualize_before_structural_pass_warns(self):
        with pytest.warns(PipelineWarning, match="devirtualize should be the last"):
            Pipeline([devirtualize.as_pass(), xform.as_pass()])

    def test_paper_order_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", PipelineWarning)
            named_pipeline("paper")

    def test_devirtualize_alone_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", PipelineWarning)
            Pipeline([devirtualize.as_pass()])


class TestValidation:
    def test_check_mode_catches_a_breaking_pass(self, small_graph):
        def breaker(graph):
            """Deliberately sever a connection, leaving ports dangling."""
            result = graph.copy()
            result.remove_connection(result.connections[0])
            return result

        pipeline = Pipeline(
            [xform.as_pass(), Pass(breaker, name="breaker"), undead.as_pass()],
            validate="check",
        )
        with pytest.raises(PassError, match="breaker") as excinfo:
            pipeline.run(small_graph)
        assert excinfo.value.pass_name == "breaker"

    def test_clean_pipeline_validates(self, small_graph):
        graph, report = named_pipeline("paper", validate="check").run(small_graph)
        assert len(report) == 5

    def test_crashing_pass_is_named(self, small_graph):
        def crasher(graph):
            """A tool that dies mid-pass."""
            raise RuntimeError("boom")

        with pytest.raises(PassError, match="crasher") as excinfo:
            Pipeline([Pass(crasher, name="crasher")]).run(small_graph)
        assert excinfo.value.pass_name == "crasher"

    def test_bad_validate_mode_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([], validate="nonsense")


class TestReportCounts:
    """Per-pass counts on the Figure 4 IP router (two interfaces),
    checked against the transform arithmetic the paper gives."""

    @pytest.fixture(scope="class")
    def run(self):
        graph = load_config(ip_router_config(), "<fig4>")
        result = named_pipeline("paper").run(graph)
        return graph, result

    def test_pass_names_in_paper_order(self, run):
        _, result = run
        assert [r.name for r in result.report] == [
            "fastclassifier", "xform", "undead", "align", "devirtualize",
        ]

    def test_counts_chain_and_match_the_final_graph(self, run):
        base, result = run
        records = result.report.records
        assert records[0].elements_before == len(base.elements)
        assert records[0].connections_before == len(base.connections)
        for previous, record in zip(records, records[1:]):
            assert record.elements_before == previous.elements_after
            assert record.connections_before == previous.connections_after
        assert records[-1].elements_after == len(result.graph.elements)
        assert records[-1].connections_after == len(result.graph.connections)

    def test_fastclassifier_record(self, run):
        _, result = run
        record = result.report.record("fastclassifier")
        # Repoints the two Classifiers at one shared generated class —
        # no elements or connections appear or disappear.
        assert record.elements_delta == 0
        assert record.connections_delta == 0
        assert record.classes_removed == ("Classifier",)
        assert len(record.classes_added) == 1
        assert record.classes_added[0].startswith("FastClassifier@@")
        assert record.archive_members_added == ("fastclassifier.py",)
        assert record.requirements_added == ("fastclassifier",)

    def test_xform_record(self, run):
        _, result = run
        record = result.report.record("xform")
        # The combo patterns take each interface's forwarding chain from
        # ten elements to two (docs/TOOLS.md §6.2): -8 elements per
        # interface, two interfaces, and the 8 spliced-out elements each
        # take one connection with them.
        assert record.elements_delta == -16
        assert record.connections_delta == -16
        assert "IPInputCombo" in record.classes_added
        assert "IPOutputCombo" in record.classes_added

    def test_undead_record_is_identity(self, run):
        _, result = run
        record = result.report.record("undead")
        # §6.3: none of the IP router's elements are dead code.
        assert record.elements_delta == 0
        assert record.connections_delta == 0
        assert record.classes_added == ()
        assert record.classes_removed == ()

    def test_align_record(self, run):
        _, result = run
        record = result.report.record("align")
        # One Align per interface input path (the IPInputCombo wants
        # 4-aligned IP headers; Ethernet leaves them at 4/2) plus the
        # AlignmentInfo record: +3 elements.  Each Align splits one
        # connection into two (+1 each); AlignmentInfo is unconnected.
        assert record.elements_delta == 3
        assert record.connections_delta == 2
        assert set(record.classes_added) == {"Align", "AlignmentInfo"}

    def test_devirtualize_record(self, run):
        _, result = run
        record = result.report.record("devirtualize")
        # Pure repointing: every sharing class swaps to a generated
        # Devirtualize@@ class, structure untouched.
        assert record.elements_delta == 0
        assert record.connections_delta == 0
        assert record.archive_members_added == ("devirtualize.py",)
        assert all(name.startswith("Devirtualize@@") for name in record.classes_added)
        assert len(record.classes_added) == len(record.classes_removed)

    def test_timings_present(self, run):
        _, result = run
        assert all(record.seconds > 0 for record in result.report)
        assert result.report.total_seconds == pytest.approx(
            sum(r.seconds for r in result.report)
        )

    def test_report_serializes(self, run):
        _, result = run
        decoded = json.loads(result.report.to_json())
        assert decoded["pipeline"] == "paper"
        assert len(decoded["passes"]) == 5
        for entry in decoded["passes"]:
            assert entry["seconds"] > 0
            assert entry["elements_delta"] == (
                entry["elements_after"] - entry["elements_before"]
            )
        table = result.report.to_table()
        for name in ("fastclassifier", "xform", "undead", "align", "devirtualize"):
            assert name in table

    def test_pipeline_output_matches_chained_tools(self, run):
        """The pass manager is observability, not a different compiler:
        its output is byte-identical to running the tools by hand with
        a text round-trip between stages (the CLI-pipe convention)."""
        from repro.core import align, flatten, undead as undead_tool

        base, result = run
        stage = base
        for tool in (fastclassifier, xform, undead_tool, align, devirtualize):
            stage = load_config(save_config(tool(stage)))
        assert save_config(stage) == save_config(result.graph)


class TestFixpoint:
    def test_fixpoint_pass_converges_and_counts_iterations(self, small_graph):
        def shrink(graph):
            """Remove one Counter per application (a one-step-at-a-time
            rewrite the fixpoint driver must iterate)."""
            result = graph.copy()
            for decl in result.elements.values():
                if decl.class_name == "Counter":
                    result.splice_out(decl.name)
                    break
            return result

        pipeline = Pipeline([Pass(shrink, name="shrink", fixpoint=True)])
        graph, report = pipeline.run(small_graph)
        assert not graph.elements_of_class("Counter")
        # One removing application plus the final no-change application.
        assert report.record("shrink").iterations == 2

    def test_divergent_fixpoint_raises(self, small_graph):
        def grow(graph):
            """Never converges: adds a fresh element every time."""
            result = graph.copy()
            result.add_element(None, "Idle")
            return result

        pipeline = Pipeline(
            [Pass(grow, name="grow", fixpoint=True, max_iterations=5)]
        )
        with pytest.raises(PassError, match="fixpoint") as excinfo:
            pipeline.run(small_graph)
        assert excinfo.value.pass_name == "grow"


class TestNamedPipelines:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            named_pipeline("turbo")

    def test_registry_names(self):
        assert {"paper", "forwarding", "cleanup"} <= set(NAMED_PIPELINES)

    def test_pipeline_is_itself_a_tool(self, small_graph):
        pipeline = named_pipeline("forwarding")
        graph = pipeline(small_graph)
        assert graph.elements["c"].class_name.startswith("Devirtualize@@")
        assert pipeline.last_report is not None
        assert len(pipeline.last_report) == 3

    def test_passes_compose_in_chain(self, small_graph):
        from repro.core import chain

        composed = chain(fastclassifier.as_pass(), devirtualize.as_pass())
        graph = composed(small_graph)
        assert graph.elements["c"].class_name.startswith("Devirtualize@@")
