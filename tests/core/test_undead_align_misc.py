"""Unit tests for click-undead, click-align, click-check,
click-mkmindriver, and click-pretty."""

import pytest

from repro.core.align import Alignment, align, compute_alignments
from repro.core.check import check
from repro.core.mkmindriver import make_minimal_class_table, mkmindriver, required_classes
from repro.core.pretty import pretty_html
from repro.core.undead import undead
from repro.lang.build import parse_graph


class TestUndead:
    def test_static_switch_collapsed(self):
        graph = parse_graph(
            """
            s :: InfiniteSource; sw :: StaticSwitch(1);
            live :: Counter; dead :: Counter;
            s -> sw; sw [0] -> dead -> Discard; sw [1] -> live -> Discard;
            """
        )
        result = undead(graph)
        assert not result.elements_of_class("StaticSwitch")
        assert "live" in result.elements
        assert "dead" not in result.elements
        conns = {(c.from_element, c.to_element) for c in result.connections}
        assert ("s", "live") in conns

    def test_negative_switch_drops_everything_downstream(self):
        graph = parse_graph(
            """
            s :: InfiniteSource; sw :: StaticSwitch(-1);
            dead :: Counter; s -> sw; sw [0] -> dead -> Discard;
            """
        )
        result = undead(graph)
        assert "dead" not in result.elements
        assert not result.elements_of_class("StaticSwitch")

    def test_unreachable_elements_removed(self):
        graph = parse_graph(
            """
            s :: InfiniteSource; live :: Counter;
            orphan :: Strip(14); orphan2 :: Counter;
            s -> live -> Discard; orphan -> orphan2 -> Discard;
            """
        )
        result = undead(graph)
        assert "live" in result.elements
        assert "orphan" not in result.elements
        assert "orphan2" not in result.elements

    def test_writable_switch_kept(self):
        graph = parse_graph(
            """
            s :: InfiniteSource; sw :: Switch(0);
            a :: Counter; b :: Counter;
            s -> sw; sw [0] -> a -> Discard; sw [1] -> b -> Discard;
            """
        )
        result = undead(graph)
        assert result.elements_of_class("Switch")
        assert "b" in result.elements

    def test_info_elements_survive(self):
        graph = parse_graph(
            "AlignmentInfo(x 4 0); s :: InfiniteSource; s -> Discard;"
        )
        result = undead(graph)
        assert result.elements_of_class("AlignmentInfo")

    def test_compound_dead_branch(self):
        """§6.3: dead code usually comes from compound abstractions —
        a compound whose StaticSwitch argument disables one branch."""
        graph = parse_graph(
            """
            elementclass MaybeCount {
              $on | input -> sw :: StaticSwitch($on);
              sw [0] -> output; sw [1] -> c :: Counter -> output;
            }
            s :: InfiniteSource; m :: MaybeCount(0); s -> m -> Discard;
            """
        )
        result = undead(graph)
        assert not result.elements_of_class("Counter")
        assert not result.elements_of_class("StaticSwitch")

    def test_live_graph_unchanged(self):
        from repro.configs.iprouter import ip_router_graph

        graph = ip_router_graph()
        result = undead(graph)
        # "None of the elements in our IP router are dead code."
        assert set(result.elements) == set(graph.elements)


class TestAlignmentLattice:
    def test_join_same(self):
        assert Alignment(4, 2).join(Alignment(4, 2)) == Alignment(4, 2)

    def test_join_conflicting_offsets(self):
        joined = Alignment(4, 0).join(Alignment(4, 2))
        assert joined == Alignment(2, 0)

    def test_join_odd(self):
        joined = Alignment(4, 0).join(Alignment(4, 1))
        assert joined.modulus == 1

    def test_satisfies(self):
        assert Alignment(4, 0).satisfies(Alignment(2, 0))
        assert Alignment(4, 2).satisfies(Alignment(2, 0))
        assert not Alignment(4, 2).satisfies(Alignment(4, 0))
        assert not Alignment(2, 0).satisfies(Alignment(4, 0))

    def test_shift(self):
        assert Alignment(4, 0).shift(14) == Alignment(4, 2)
        assert Alignment(4, 2).shift(-14) == Alignment(4, 0)


class TestClickAlign:
    TEXT = (
        "pd :: PollDevice(eth0); s :: Strip(14); chk :: CheckIPHeader;"
        "q :: Queue; td :: ToDevice(eth0); pd -> s -> chk -> q -> td;"
    )

    def test_flow_computes_expected_alignments(self):
        graph = parse_graph(self.TEXT)
        arriving = compute_alignments(graph)
        assert arriving["s"] == Alignment(4, 0)
        assert arriving["chk"] == Alignment(4, 2)  # after Strip(14)

    def test_inserts_align_before_requirement(self):
        graph = parse_graph(self.TEXT)
        result = align(graph)
        aligns = result.elements_of_class("Align")
        assert len(aligns) == 1
        assert aligns[0].config == "4, 0"
        conns = {(c.from_element, c.to_element) for c in result.connections}
        assert ("s", aligns[0].name) in conns
        assert (aligns[0].name, "chk") in conns

    def test_adds_alignment_info(self):
        graph = parse_graph(self.TEXT)
        result = align(graph)
        assert result.elements_of_class("AlignmentInfo")

    def test_no_align_when_already_satisfied(self):
        text = (
            "pd :: PollDevice(eth0); chk :: CheckIPHeader;"
            "q :: Queue; td :: ToDevice(eth0); pd -> chk -> q -> td;"
        )
        result = align(parse_graph(text))
        assert not result.elements_of_class("Align")

    def test_redundant_align_removed(self):
        text = (
            "pd :: PollDevice(eth0); a :: Align(4, 0); q :: Queue;"
            "td :: ToDevice(eth0); pd -> a -> q -> td;"
        )
        result = align(parse_graph(text))
        assert not result.elements_of_class("Align")

    def test_aligned_router_runs_strict(self):
        """After click-align, CheckIPHeader can run in strict-alignment
        (ARM) mode without crashing."""
        from repro.elements import LoopbackDevice, Router
        from repro.net.headers import build_ether_udp_packet
        from repro.net.packet import Packet

        graph = align(parse_graph(self.TEXT))
        devices = {"eth0": LoopbackDevice("eth0")}
        router = Router(graph, devices=devices)
        router["chk"].strict_alignment = True
        frame = build_ether_udp_packet(
            "00:20:6F:03:04:05", "00:00:C0:4F:71:00", "1.0.0.2", "2.0.0.2",
            payload=b"\x00" * 14,
        )
        devices["eth0"].receive_frame(frame)
        router.run_tasks(20)
        assert devices["eth0"].transmitted  # forwarded, no crash

    def test_unaligned_strict_router_crashes(self):
        """Without click-align, strict mode hits the ARM-style trap —
        demonstrating the problem the tool solves."""
        from repro.elements import LoopbackDevice, Router
        from repro.net.headers import build_ether_udp_packet

        graph = parse_graph(self.TEXT)
        devices = {"eth0": LoopbackDevice("eth0")}
        router = Router(graph, devices=devices)
        router["chk"].strict_alignment = True
        frame = build_ether_udp_packet(
            "00:20:6F:03:04:05", "00:00:C0:4F:71:00", "1.0.0.2", "2.0.0.2",
            payload=b"\x00" * 14,
        )
        devices["eth0"].receive_frame(frame)
        with pytest.raises(RuntimeError):
            router.run_tasks(20)

    def test_ip_router_gets_aligns_for_each_interface(self):
        from repro.configs.iprouter import ip_router_graph

        result = align(ip_router_graph())
        aligns = result.elements_of_class("Align")
        assert len(aligns) == 2  # one per CheckIPHeader


class TestClickCheck:
    def test_clean_config_passes(self):
        from repro.configs.iprouter import ip_router_graph

        collector = check(ip_router_graph())
        assert collector.ok, collector.format()

    def test_unknown_class_reported(self):
        collector = check(parse_graph("f :: Idle; x :: NoSuchThing; f -> x;"))
        assert not collector.ok
        assert "NoSuchThing" in collector.format()

    def test_unconnected_port_reported(self):
        collector = check(parse_graph("f :: Idle; c :: Classifier(12/0800, -); f -> c; c [0] -> Discard;"))
        assert not collector.ok
        assert "unconnected" in collector.format()

    def test_push_pull_conflict_reported(self):
        # Source pushes straight into ToDevice's pull input.
        collector = check(
            parse_graph("s :: InfiniteSource; td :: ToDevice(eth0); s -> td;")
        )
        assert not collector.ok
        assert "conflict" in collector.format()

    def test_bad_config_string_reported(self):
        collector = check(parse_graph("f :: Idle; s :: Strip(nonsense); f -> s -> Discard;"))
        assert not collector.ok
        assert "bad configuration" in collector.format()

    def test_multiple_errors_accumulated(self):
        collector = check(
            parse_graph("f :: Idle; x :: Nope; y :: AlsoNope; f -> x; x -> y;")
        )
        assert len(collector.errors) >= 2


class TestMkMinDriver:
    def test_required_classes(self):
        graph = parse_graph("f :: Idle; c :: Counter; f -> c -> Discard;")
        assert required_classes(graph) == ["Counter", "Discard", "Idle"]

    def test_manifest_attached(self):
        graph = parse_graph("f :: Idle; c :: Counter; f -> c -> Discard;")
        result = mkmindriver(graph)
        assert "mindriver.manifest" in result.archive
        assert "Counter" in result.archive["mindriver.manifest"]

    def test_minimal_class_table_excludes_unused(self):
        graph = parse_graph("f :: Idle; c :: Counter; f -> c -> Discard;")
        table = make_minimal_class_table(graph)
        assert set(table) == {"Counter", "Discard", "Idle"}

    def test_minimal_router_runs(self):
        from repro.elements import Router
        from repro.net.packet import Packet

        graph = parse_graph("f :: Idle; c :: Counter; f -> c -> Discard;")
        router = Router(graph, extra_classes=make_minimal_class_table(graph))
        router.push_packet("c", 0, Packet(b"x"))
        assert router["c"].count == 1


class TestPretty:
    def test_html_contains_elements_and_connections(self):
        graph = parse_graph("f :: Idle; c :: Counter; f -> c -> Discard;")
        page = pretty_html(graph, title="test config")
        assert "<html>" in page
        assert "Counter" in page
        assert "test config" in page
        assert "c [0] -&gt; [0] Discard@" in page.replace("\n", " ") or "-&gt;" in page

    def test_config_strings_escaped(self):
        graph = parse_graph('f :: Idle; c :: Classifier(12/0800, -); f -> c; c [0] -> Discard; c [1] -> Discard;')
        page = pretty_html(graph)
        assert "12/0800" in page
