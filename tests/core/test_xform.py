"""Unit tests for click-xform (§6.2) and the standard pattern library."""

import pytest

from repro.configs.iprouter import default_interfaces, ip_router_graph
from repro.core.patterns import IP_INPUT_COMBO, IP_OUTPUT_COMBO, STANDARD_PATTERNS
from repro.core.xform import PatternPair, _match_config, xform
from repro.elements import LoopbackDevice, Router
from repro.lang.build import parse_graph
from repro.net.headers import build_ether_udp_packet


class TestConfigMatching:
    def test_literal_match(self):
        assert _match_config("14", "14", {}) == {}

    def test_literal_mismatch(self):
        assert _match_config("14", "15", {}) is None

    def test_variable_binds(self):
        assert _match_config("$n", "14", {}) == {"$n": "14"}

    def test_variable_consistency(self):
        assert _match_config("$n, $n", "14, 14", {}) == {"$n": "14"}
        assert _match_config("$n, $n", "14, 15", {}) is None

    def test_arity_must_match(self):
        assert _match_config("$a", "1, 2", {}) is None
        assert _match_config(None, None, {}) == {}


SWAP = PatternPair.from_texts(
    "input -> a :: Strip(14) -> b :: Unstrip(14) -> output;",
    "input -> w :: Counter -> output;",
    name="strip-unstrip",
)


class TestBasicXform:
    def test_simple_replacement(self):
        graph = parse_graph(
            "f :: Idle; s :: Strip(14); u :: Unstrip(14); d :: Discard; f -> s -> u -> d;"
        )
        result = xform(graph, patterns=[SWAP])
        classes = [decl.class_name for decl in result.elements.values()]
        assert "Strip" not in classes
        assert "Unstrip" not in classes
        assert "Counter" in classes

    def test_no_match_no_change(self):
        graph = parse_graph("f :: Idle; s :: Strip(10); d :: Discard; f -> s -> d;")
        result = xform(graph, patterns=[SWAP])
        assert [d.class_name for d in result.elements.values()] == ["Idle", "Strip", "Discard"]

    def test_boundary_violation_blocks_match(self):
        """An extra connection into the middle of the matched chain is
        not allowed by the pattern, so no replacement happens."""
        graph = parse_graph(
            "f :: Idle; f2 :: Idle; s :: Strip(14); u :: Unstrip(14); d :: Discard;"
            "f -> s -> u -> d; f2 -> u;"
        )
        result = xform(graph, patterns=[SWAP])
        assert any(decl.class_name == "Strip" for decl in result.elements.values())

    def test_wildcard_carries_into_replacement(self):
        pair = PatternPair.from_texts(
            "input -> c :: Counter -> q :: Queue($cap) -> output;",
            "input -> q :: Queue($cap) -> output;",
            name="drop-counter",
        )
        graph = parse_graph(
            "f :: Idle; c0 :: Counter; q :: Queue(99); u :: Unqueue; d :: Discard;"
            "f -> c0 -> q -> u -> d;"
        )
        result = xform(graph, patterns=[pair])
        assert not result.elements_of_class("Counter")
        (queue,) = result.elements_of_class("Queue")
        assert queue.config == "99"

    def test_divergence_guard_raises_on_self_recreating_pattern(self):
        from repro.errors import ClickSemanticError

        pair = PatternPair.from_texts(
            "input -> c :: Counter -> output;",
            "input -> c :: Counter -> c2 :: Counter -> output;",
            name="loop",
        )
        graph = parse_graph("f :: Idle; c :: Counter; d :: Discard; f -> c -> d;")
        with pytest.raises(ClickSemanticError):
            xform(graph, patterns=[pair])

    def test_multiple_occurrences_all_replaced(self):
        graph = parse_graph(
            "f1 :: Idle; f2 :: Idle; s1 :: Strip(14); u1 :: Unstrip(14);"
            "s2 :: Strip(14); u2 :: Unstrip(14); d1 :: Discard; d2 :: Discard;"
            "f1 -> s1 -> u1 -> d1; f2 -> s2 -> u2 -> d2;"
        )
        result = xform(graph, patterns=[SWAP])
        assert len(result.elements_of_class("Counter")) == 2


class TestStandardPatterns:
    def test_input_combo_applies_to_ip_router(self):
        graph = ip_router_graph()
        result = xform(graph, patterns=[IP_INPUT_COMBO])
        assert len(result.elements_of_class("IPInputCombo")) == 2
        assert not result.elements_of_class("Paint")
        assert not result.elements_of_class("CheckIPHeader")

    def test_output_combo_applies_to_ip_router(self):
        graph = ip_router_graph()
        result = xform(graph, patterns=[IP_OUTPUT_COMBO])
        assert len(result.elements_of_class("IPOutputCombo")) == 2
        assert not result.elements_of_class("DecIPTTL")

    def test_full_pattern_set_reduces_path_to_three(self):
        """§6.2: the three pattern pairs reduce the per-interface
        forwarding chain to IPInputCombo → LookupIPRoute → IPOutputCombo."""
        graph = ip_router_graph()
        before_classes = {d.class_name for d in graph.elements.values()}
        result = xform(graph, patterns=STANDARD_PATTERNS)
        combos_in = result.elements_of_class("IPInputCombo")
        combos_out = result.elements_of_class("IPOutputCombo")
        assert len(combos_in) == 2
        assert len(combos_out) == 2
        # The fragmenter was absorbed by the second-stage pattern.
        assert not result.elements_of_class("IPFragmenter")
        for gone in ("Paint", "Strip", "CheckIPHeader", "GetIPAddress",
                     "DropBroadcasts", "CheckPaint", "IPGWOptions", "FixIPSrc", "DecIPTTL"):
            assert gone in before_classes
            assert not result.elements_of_class(gone), gone
        # Each combo carries the full argument set.
        assert combos_out[0].config.count(",") == 2  # color, ip, mtu

    def test_element_count_drops_by_sixteen(self):
        # Ten chain elements per interface (4 input-side + 6 output-side
        # including the fragmenter) become two combos: 8 fewer per
        # interface, 16 fewer total.
        graph = ip_router_graph()
        before = len(graph.elements)
        after = len(xform(graph, patterns=STANDARD_PATTERNS).elements)
        assert before - after == 16


class TestComboEquivalence:
    """The xform'd router must forward byte-identical traffic."""

    HOST1 = "00:20:6F:03:04:05"
    HOST2 = "00:20:6F:0A:0B:0C"

    def run(self, graph, frames, interfaces):
        devices = {
            "eth0": LoopbackDevice("eth0", tx_capacity=512),
            "eth1": LoopbackDevice("eth1", tx_capacity=512),
        }
        router = Router(graph, devices=devices)
        router["arpq0"].insert("1.0.0.2", self.HOST1)
        router["arpq1"].insert("2.0.0.2", self.HOST2)
        for frame in frames:
            devices["eth0"].receive_frame(frame)
        router.run_tasks(100)
        return devices["eth0"].transmitted, devices["eth1"].transmitted

    def traffic(self, interfaces):
        frames = [
            build_ether_udp_packet(
                self.HOST1, interfaces[0].ether, "1.0.0.2", "2.0.0.2",
                payload=b"\x00" * 14, ttl=ttl,
            )
            for ttl in (64, 2, 1)  # normal, near-expiry, expired
        ]
        frames.append(
            build_ether_udp_packet(
                self.HOST1, interfaces[0].ether, "1.0.0.2", "1.0.0.9",
                payload=b"\x00" * 14,
            )  # same-interface: triggers the redirect path
        )
        return frames

    def test_xform_preserves_behaviour(self):
        interfaces = default_interfaces(2)
        base = self.run(ip_router_graph(interfaces), self.traffic(interfaces), interfaces)
        optimized = self.run(
            xform(ip_router_graph(interfaces), patterns=STANDARD_PATTERNS),
            self.traffic(interfaces),
            interfaces,
        )
        assert base == optimized
