"""Unit tests for ARP, routing, ICMP, Ethernet, classifier, RED, and
alignment elements."""

import pytest

from repro.elements import ConfigError, Router
from repro.lang.build import parse_graph
from repro.net.addresses import EtherAddress
from repro.net.headers import (
    ETHER_HEADER_LEN,
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    ArpHeader,
    EtherHeader,
    IPHeader,
    build_arp_reply,
    build_arp_request,
    build_udp_packet,
)
from repro.net.packet import Packet


def capture_router(element_decl, noutputs=1, ninputs=1, extra=""):
    parts = ["first :: %s;" % element_decl, extra]
    for port in range(ninputs):
        parts.append("feeder%d :: Idle; feeder%d -> [%d] first;" % (port, port, port))
    for port in range(noutputs):
        parts.append("q%d :: Queue(16); u%d :: Unqueue; d%d :: Discard;" % (port, port, port))
        parts.append("first [%d] -> q%d; q%d -> u%d -> d%d;" % (port, port, port, port, port))
    return Router(parse_graph(" ".join(parts)))


def ip_packet_with_anno(dst_anno, src="1.0.0.2", dst="2.0.0.2"):
    packet = Packet(build_udp_packet(src, dst, payload=b"\x00" * 14))
    packet.set_dest_ip_anno(dst_anno)
    return packet


class TestARPQuerier:
    DECL = "ARPQuerier(1.0.0.1, 00:20:6F:14:54:C2)"

    def test_known_address_encapsulates(self):
        router = capture_router(self.DECL, ninputs=2)
        router["first"].insert("1.0.0.2", "00:00:C0:AE:67:EF")
        router.push_packet("first", 0, ip_packet_with_anno("1.0.0.2"))
        frame = router["q0"].pull(0)
        header = EtherHeader.unpack(frame.data)
        assert header.ether_type == ETHERTYPE_IP
        assert header.dst == "00:00:C0:AE:67:EF"
        assert header.src == "00:20:6F:14:54:C2"
        # Payload is the untouched IP packet.
        assert IPHeader.unpack(frame.data[ETHER_HEADER_LEN:]).dst == "2.0.0.2"

    def test_unknown_address_queries_and_holds(self):
        router = capture_router(self.DECL, ninputs=2)
        router.push_packet("first", 0, ip_packet_with_anno("1.0.0.2"))
        query = router["q0"].pull(0)
        header = EtherHeader.unpack(query.data)
        assert header.ether_type == ETHERTYPE_ARP
        assert header.dst.is_broadcast()
        arp = ArpHeader.unpack(query.data[ETHER_HEADER_LEN:])
        assert str(arp.target_ip) == "1.0.0.2"
        assert router["first"].queries_sent == 1

    def test_reply_releases_held_packets(self):
        router = capture_router(self.DECL, ninputs=2)
        router.push_packet("first", 0, ip_packet_with_anno("1.0.0.2"))
        router["q0"].pull(0)  # the query
        reply = build_arp_reply(
            "00:00:C0:AE:67:EF", "1.0.0.2", "00:20:6F:14:54:C2", "1.0.0.1"
        )
        router.push_packet("first", 1, Packet(reply))
        released = router["q0"].pull(0)
        assert released is not None
        assert EtherHeader.unpack(released.data).dst == "00:00:C0:AE:67:EF"
        # Subsequent packets go straight through.
        router.push_packet("first", 0, ip_packet_with_anno("1.0.0.2"))
        assert EtherHeader.unpack(router["q0"].pull(0).data).ether_type == ETHERTYPE_IP

    def test_hold_queue_bounded(self):
        router = capture_router(self.DECL, ninputs=2)
        for _ in range(7):
            router.push_packet("first", 0, ip_packet_with_anno("1.0.0.2"))
        element = router["first"]
        assert len(element.pending[0x01000002]) == element.HOLD_LIMIT
        assert element.drops == 7 - element.HOLD_LIMIT

    def test_packet_without_annotation_dropped(self):
        router = capture_router(self.DECL, ninputs=2)
        router.push_packet("first", 0, Packet(build_udp_packet("1.0.0.2", "2.0.0.2")))
        assert len(router["q0"]) == 0
        assert router["first"].drops == 1


class TestARPResponder:
    def test_answers_matching_query(self):
        router = capture_router("ARPResponder(1.0.0.1 00:20:6F:14:54:C2)")
        query = build_arp_request("00:00:C0:AE:67:EF", "1.0.0.2", "1.0.0.1")
        router.push_packet("first", 0, Packet(query))
        reply = router["q0"].pull(0)
        arp = ArpHeader.unpack(reply.data[ETHER_HEADER_LEN:])
        assert arp.sender_ether == "00:20:6F:14:54:C2"
        assert str(arp.sender_ip) == "1.0.0.1"
        assert str(arp.target_ip) == "1.0.0.2"

    def test_ignores_other_addresses(self):
        router = capture_router("ARPResponder(1.0.0.1 00:20:6F:14:54:C2)")
        query = build_arp_request("00:00:C0:AE:67:EF", "1.0.0.2", "9.9.9.9")
        router.push_packet("first", 0, Packet(query))
        assert len(router["q0"]) == 0

    def test_prefix_entries(self):
        router = capture_router("ARPResponder(1.0.0.0/24 00:20:6F:14:54:C2)")
        assert router["first"].lookup("1.0.0.77") == EtherAddress("00:20:6F:14:54:C2")
        assert router["first"].lookup("1.0.1.77") is None


class TestLookupIPRoute:
    DECL = (
        "LookupIPRoute(1.0.0.1/32 0, 2.0.0.1/32 0, 1.0.0.0/8 1, "
        "2.0.0.0/8 2, 0.0.0.0/0 18.26.4.1 3)"
    )

    def test_longest_prefix_wins(self):
        router = capture_router(self.DECL, noutputs=4)
        router.push_packet("first", 0, ip_packet_with_anno("1.0.0.1"))
        assert len(router["q0"]) == 1  # host route, not net route
        router.push_packet("first", 0, ip_packet_with_anno("1.2.3.4"))
        assert len(router["q1"]) == 1

    def test_default_route_sets_gateway_annotation(self):
        router = capture_router(self.DECL, noutputs=4)
        router.push_packet("first", 0, ip_packet_with_anno("99.1.2.3"))
        out = router["q3"].pull(0)
        assert str(out.dest_ip_anno) == "18.26.4.1"

    def test_direct_route_keeps_destination_annotation(self):
        router = capture_router(self.DECL, noutputs=4)
        router.push_packet("first", 0, ip_packet_with_anno("2.0.0.9"))
        assert str(router["q2"].pull(0).dest_ip_anno) == "2.0.0.9"

    def test_radix_agrees_with_linear(self):
        from repro.elements.routing import LookupIPRoute, RadixIPLookup

        routes = "1.0.0.1/32 0, 1.0.0.0/8 1, 1.0.0.0/16 7.7.7.7 2, 0.0.0.0/0 3"
        linear = LookupIPRoute("lin", routes)
        radix = RadixIPLookup("rad", routes)
        for addr in ["1.0.0.1", "1.0.5.5", "1.9.9.9", "200.1.1.1", "0.0.0.0", "255.255.255.255"]:
            assert linear.lookup_route(addr) == radix.lookup_route(addr), addr

    def test_route_parsing_errors(self):
        with pytest.raises(ConfigError):
            capture_router("LookupIPRoute(1.0.0.1/32)")


class TestICMPError:
    def test_generates_time_exceeded(self):
        router = capture_router("ICMPError(1.0.0.1, timeexceeded, transit)")
        original = Packet(build_udp_packet("5.6.7.8", "2.0.0.2", payload=b"\x00" * 14, ttl=1))
        router.push_packet("first", 0, original)
        error = router["q0"].pull(0)
        header = IPHeader.unpack(error.data)
        assert str(header.dst) == "5.6.7.8"
        assert header.protocol == 1
        assert error.data[20] == 11  # ICMP time exceeded
        assert error.fix_ip_src_anno
        assert str(error.dest_ip_anno) == "5.6.7.8"

    def test_no_error_about_icmp_errors(self):
        router = capture_router("ICMPError(1.0.0.1, unreachable, net)")
        inner = Packet(build_udp_packet("5.6.7.8", "2.0.0.2"))
        # First produce a legitimate error...
        router.push_packet("first", 0, inner)
        first_error = router["q0"].pull(0)
        # ...then feed that error back in: no error-about-error.
        router.push_packet("first", 0, first_error)
        assert len(router["q0"]) == 0


class TestEtherEncap:
    def test_prepends_header(self):
        router = capture_router("EtherEncap(0x0800, 00:20:6F:14:54:C2, 00:00:C0:AE:67:EF)")
        router.push_packet("first", 0, Packet(build_udp_packet("1.0.0.2", "2.0.0.2")))
        frame = router["q0"].pull(0)
        header = EtherHeader.unpack(frame.data)
        assert header.ether_type == 0x0800
        assert header.src == "00:20:6F:14:54:C2"


class TestClassifierElements:
    def test_classifier_dispatch(self):
        router = capture_router(
            "Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -)", noutputs=4
        )
        router.push_packet(
            "first", 0, Packet(build_arp_request("00:20:6F:14:54:C2", "1.0.0.1", "1.0.0.2"))
        )
        assert len(router["q0"]) == 1
        ip_frame = bytes(12) + b"\x08\x00" + bytes(46)
        router.push_packet("first", 0, Packet(ip_frame))
        assert len(router["q2"]) == 1
        router.push_packet("first", 0, Packet(bytes(60)))
        assert len(router["q3"]) == 1

    def test_ipclassifier_dispatch(self):
        router = capture_router("IPClassifier(icmp, udp, -)", noutputs=3)
        router.push_packet("first", 0, Packet(build_udp_packet("1.0.0.2", "2.0.0.2")))
        assert len(router["q1"]) == 1

    def test_ipfilter_drops_denied(self):
        router = capture_router("IPFilter(allow udp dst port 53, deny all)")
        router.push_packet("first", 0, Packet(build_udp_packet("1.0.0.2", "2.0.0.2", dst_port=53)))
        router.push_packet("first", 0, Packet(build_udp_packet("1.0.0.2", "2.0.0.2", dst_port=54)))
        assert len(router["q0"]) == 1
        assert router["first"].drops == 1

    def test_bad_pattern_is_config_error(self):
        with pytest.raises(ConfigError):
            capture_router("Classifier(nonsense)")


class TestRED:
    def test_red_finds_downstream_queue_and_drops_when_full(self):
        router = Router(
            parse_graph(
                "feeder :: Idle; feeder -> red :: RED(2, 4, 1.0) -> q :: Queue(100);"
                "q -> u :: Unqueue -> Discard;"
            )
        )
        red = router["red"]
        assert [q.name for q in red._queues] == ["q"]
        for _ in range(50):
            router.push_packet("red", 0, Packet(b"x"))
        assert red.drops > 0
        assert len(router["q"]) < 50

    def test_red_forwards_below_min_threshold(self):
        router = Router(
            parse_graph(
                "feeder :: Idle; feeder -> red :: RED(5, 10, 1.0) -> q :: Queue(100);"
                "q -> u :: Unqueue -> Discard;"
            )
        )
        router.push_packet("red", 0, Packet(b"x"))
        assert router["red"].drops == 0
        assert len(router["q"]) == 1


class TestAlign:
    def test_align_copies_when_misaligned(self):
        router = capture_router("Align(4, 0)")
        packet = Packet(bytes(40))
        packet.strip(14)  # now misaligned by 2
        before = packet.data
        router.push_packet("first", 0, packet)
        out = router["q0"].pull(0)
        assert out.data_alignment() == 0
        assert out.data == before
        assert router["first"].copies == 1

    def test_align_skips_aligned_packets(self):
        router = capture_router("Align(4, 2)")
        packet = Packet(bytes(40))
        packet.strip(14)
        router.push_packet("first", 0, packet)
        assert router["first"].copies == 0

    def test_alignment_info_is_passive(self):
        router = Router(
            parse_graph(
                "AlignmentInfo(c 4 2); feeder :: Idle; c :: Counter; d :: Discard;"
                "feeder -> c -> d;"
            )
        )
        assert router.elements_of_class("AlignmentInfo")


class TestHostEtherFilter:
    def test_marks_packet_types(self):
        from repro.net.headers import make_ether_header

        router = capture_router("HostEtherFilter(00:20:6F:14:54:C2)", noutputs=2)
        mine = make_ether_header("00:20:6F:14:54:C2", "00:00:C0:AE:67:EF", 0x0800) + bytes(46)
        router.push_packet("first", 0, Packet(mine))
        assert router["q0"].pull(0).user_annos["packet_type"] == "host"
        broadcast = make_ether_header("ff:ff:ff:ff:ff:ff", "00:00:C0:AE:67:EF", 0x0806) + bytes(46)
        router.push_packet("first", 0, Packet(broadcast))
        assert router["q0"].pull(0).user_annos["packet_type"] == "broadcast"
        other = make_ether_header("00:11:22:33:44:55", "00:00:C0:AE:67:EF", 0x0800) + bytes(46)
        router.push_packet("first", 0, Packet(other))
        assert len(router["q0"]) == 0
        assert len(router["q1"]) == 1
