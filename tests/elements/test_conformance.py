"""Registry-wide conformance checks.

Every registered element class must satisfy the framework contract:
valid specification strings, a constructible canned configuration, and
sane packet-conservation behaviour when driven.  Adding a new element
automatically enrolls it here.
"""

import pytest

from repro.elements import ELEMENT_CLASSES, Router
from repro.graph.flow import FlowCode
from repro.graph.ports import PortCountSpec, ProcessingCode
from repro.lang.build import parse_graph
from repro.net.headers import build_udp_packet
from repro.net.packet import Packet

# A valid configuration string for every class that needs one.
CANNED_CONFIGS = {
    "Align": "4, 0",
    "AlignmentInfo": "x 4 0",
    "ARPQuerier": "1.0.0.1, 00:00:C0:AA:00:00",
    "ARPResponder": "1.0.0.1 00:00:C0:AA:00:00",
    "CheckLength": "100",
    "Classifier": "12/0800, -",
    "EnsureEther": "0x0800, 00:00:C0:AA:00:00, 00:00:C0:BB:00:00",
    "EtherEncap": "0x0800, 00:00:C0:AA:00:00, 00:00:C0:BB:00:00",
    "FromDevice": "eth0",
    "FromDump": "/nonexistent.pcap",
    "FrontDropQueue": "8",
    "GetIPAddress": "16",
    "HostEtherFilter": "00:00:C0:AA:00:00",
    "ICMPError": "1.0.0.1, timeexceeded, transit",
    "IPClassifier": "udp, -",
    "IPFilter": "allow all",
    "IPFragmenter": "1500",
    "IPGWOptions": "1.0.0.1",
    "IPInputCombo": "1",
    "IPOutputCombo": "1, 1.0.0.1",
    "FixIPSrc": "1.0.0.1",
    "LookupIPRoute": "0.0.0.0/0 0",
    "Paint": "1",
    "PaintTee": "1",
    "CheckPaint": "1",
    "PollDevice": "eth0",
    "Queue": "8",
    "RED": "2, 4, 0.5",
    "RadixIPLookup": "0.0.0.0/0 0",
    "RandomSample": "0.5",
    "RatedSource": '"x", 100, 10',
    "RouterLink": "A eth0, B eth0",
    "ScheduleInfo": "x 1.0",
    "Shaper": "1000",
    "StaticIPLookup": "0.0.0.0/0 0",
    "StaticSwitch": "0",
    "Strip": "14",
    "Switch": "0",
    "TimedSource": '0.1, "x"',
    "ToDevice": "eth0",
    "ToDump": "/tmp/conformance-out.pcap",
    "Tee": "2",
    "UDPIPEncap": "1.0.0.1, 1, 2.0.0.2, 2",
    "Unqueue": "1",
    "Unstrip": "14",
}

# Classes that can't be driven by the generic single-packet harness.
PUSH_HARNESS_EXCLUDED = {
    # Sources and devices (no pushable input / need devices).
    "PollDevice", "FromDevice", "ToDevice", "InfiniteSource", "RatedSource",
    "TimedSource", "FromDump", "Idle",
    # Pull-side elements.
    "Queue", "FrontDropQueue", "Shaper", "Unqueue", "RouterLink",
    "RoundRobinSched", "PrioSched",
    # Info carriers (no ports).
    "AlignmentInfo", "ScheduleInfo",
    # Multi-output dispatchers exercised by their own tests.
    "Classifier", "IPClassifier", "StaticSwitch", "Switch", "PaintSwitch",
    "Tee",
    # Requires its second (ARP-response) input to be wired.
    "ARPQuerier",
}


def all_classes():
    return sorted(ELEMENT_CLASSES)


@pytest.mark.parametrize("class_name", all_classes())
class TestSpecifications:
    def test_specs_parse(self, class_name):
        cls = ELEMENT_CLASSES[class_name]
        ProcessingCode(cls.processing)
        FlowCode(cls.flow_code)
        PortCountSpec(cls.port_counts)

    def test_canned_config_constructs(self, class_name):
        cls = ELEMENT_CLASSES[class_name]
        if class_name == "FromDump":
            pytest.skip("needs a real file; covered in its own tests")
        cls("conformance", CANNED_CONFIGS.get(class_name))

    def test_has_docstring(self, class_name):
        assert ELEMENT_CLASSES[class_name].__doc__


@pytest.mark.parametrize(
    "class_name",
    [name for name in all_classes() if name not in PUSH_HARNESS_EXCLUDED],
)
class TestPacketConservation:
    """Driving one packet into a push-capable element yields at most
    two packets out (Tee-likes excluded) and never crashes."""

    def test_single_packet_conservation(self, class_name):
        config = CANNED_CONFIGS.get(class_name)
        decl = "%s(%s)" % (class_name, config) if config else class_name
        cls = ELEMENT_CLASSES[class_name]
        max_out = PortCountSpec(cls.port_counts)
        # Build: feeder -> element -> per-output queues.
        outputs = 2 if max_out.outputs_ok(2) else (1 if max_out.outputs_ok(1) else 0)
        parts = ["first :: %s;" % decl, "feeder :: Idle; feeder -> first;"]
        for port in range(outputs):
            parts.append(
                "q%d :: Queue(16); u%d :: Unqueue; d%d :: Discard;"
                "first [%d] -> q%d -> u%d -> d%d;" % (port, port, port, port, port, port, port)
            )
        router = Router(parse_graph(" ".join(parts)))
        packet = Packet(build_udp_packet("1.0.0.2", "2.0.0.2", payload=bytes(14)))
        packet.set_dest_ip_anno("2.0.0.2")
        router.push_packet("first", 0, packet)
        emitted = sum(len(router["q%d" % p]) for p in range(outputs))
        assert emitted <= 2, class_name
