"""Tests for Click's read/write handler interface."""

import pytest

from repro.elements import ElementError, Router
from repro.lang.build import parse_graph
from repro.net.packet import Packet


@pytest.fixture
def router():
    return Router(
        parse_graph(
            "f :: Idle; c :: Counter; s :: Switch(0); q :: Queue(8);"
            "u :: Unqueue; d0 :: Discard; d1 :: Discard;"
            "f -> c -> s; s [0] -> q -> u -> d0; s [1] -> d1;"
        )
    )


class TestReadHandlers:
    def test_universal_handlers(self, router):
        assert router.read_handler("c.class") == "Counter"
        assert router.read_handler("c.name") == "c"
        assert router.read_handler("q.config") == "8"
        assert router.read_handler("s.ports") == "1/2"

    def test_state_handlers(self, router):
        router.push_packet("c", 0, Packet(b"12345"))
        assert router.read_handler("c.count") == "1"
        assert router.read_handler("c.byte_count") == "5"
        assert router.read_handler("q.length") == "1"
        assert router.read_handler("q.drops") == "0"

    def test_slash_separator(self, router):
        assert router.read_handler("c/class") == "Counter"

    def test_unknown_handler_raises(self, router):
        with pytest.raises(ElementError):
            router.read_handler("c.nonsense")

    def test_unknown_element_raises(self, router):
        with pytest.raises(KeyError):
            router.read_handler("zz.count")


class TestWriteHandlers:
    def test_switch_is_writable(self, router):
        assert router.read_handler("s.switch") == "0"
        router.write_handler("s.switch", "1")
        router.push_packet("c", 0, Packet(b"x"))
        assert router["d1"].count == 1

    def test_read_only_elements_reject_writes(self, router):
        with pytest.raises(ElementError):
            router.write_handler("c.count", "0")


class TestPrettyDot:
    def test_dot_output(self, router):
        from repro.core.pretty import pretty_dot

        dot = pretty_dot(router.graph)
        assert dot.startswith("digraph")
        assert "Counter" in dot
        assert "->" in dot
        assert 'taillabel="1"' in dot  # the switch's second output port

    def test_dot_escapes_configs(self):
        from repro.core.pretty import pretty_dot
        from repro.lang.build import parse_graph as pg

        graph = pg('f :: Idle; c :: Classifier(12/0800, -); f -> c; c[0] -> Discard; c[1] -> Discard;')
        dot = pretty_dot(graph)
        assert "digraph" in dot
