"""Tests for hot-swap state transfer (§5.1) and the pcap trace elements."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elements import Router, hotswap_router
from repro.lang.build import parse_graph
from repro.net.packet import Packet
from repro.net.pcap import PcapError, read_pcap, write_pcap


class TestHotswap:
    BASE = (
        "f :: Idle; c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard;"
        "f -> c -> q -> u -> d;"
    )
    EXTENDED = (
        "f :: Idle; c :: Counter; extra :: Paint(1); q :: Queue(8); u :: Unqueue;"
        "d :: Discard; f -> c -> extra -> q -> u -> d;"
    )

    def test_queue_contents_survive(self):
        old = Router(parse_graph(self.BASE))
        for tag in (b"a", b"b", b"c"):
            old.push_packet("c", 0, Packet(tag))
        new = hotswap_router(old, parse_graph(self.EXTENDED)).router
        assert [new["q"].pull(0).data for _ in range(3)] == [b"a", b"b", b"c"]
        assert "q" in new.hotswap_transferred

    def test_counter_state_survives(self):
        old = Router(parse_graph(self.BASE))
        for _ in range(5):
            old.push_packet("c", 0, Packet(b"x"))
        new = hotswap_router(old, parse_graph(self.EXTENDED)).router
        assert new["c"].count == 5

    def test_excess_queue_contents_dropped_into_drop_counter(self):
        old = Router(parse_graph(self.BASE))
        for index in range(6):
            old.push_packet("c", 0, Packet(bytes([index])))
        small = self.BASE.replace("Queue(8)", "Queue(4)")
        new = hotswap_router(old, parse_graph(small)).router
        assert len(new["q"]) == 4
        assert new["q"].drops == 2

    def test_arp_table_survives_optimization(self):
        """Optimize a live router: the devirtualized ARPQuerier keeps
        the old ARP table (generated classes are state-compatible)."""
        from repro.core.devirtualize import devirtualize
        from repro.core.toolchain import load_config, save_config
        from repro.sim.testbed import Testbed

        testbed = Testbed(2)
        old, devices = testbed.build_router(testbed.base_graph())
        old["arpq0"].insert("1.0.0.77", "00:11:22:33:44:55")
        optimized = load_config(save_config(devirtualize(testbed.base_graph())))
        new = hotswap_router(old, optimized).router
        assert new["arpq0"].table[0x0100004D] == "00:11:22:33:44:55"
        assert new["arpq0"].devirtualized

    def test_unmatched_names_start_fresh(self):
        old = Router(parse_graph(self.BASE))
        old.push_packet("c", 0, Packet(b"x"))
        renamed = self.BASE.replace("c :: Counter", "c2 :: Counter").replace("f -> c ", "f -> c2 ")
        new = hotswap_router(old, parse_graph(renamed)).router
        assert new["c2"].count == 0

    def test_incompatible_classes_not_transferred(self):
        old = Router(parse_graph("f :: Idle; c :: Counter; f -> c -> Discard;"))
        old.push_packet("c", 0, Packet(b"x"))
        new_graph = parse_graph("f :: Idle; c :: Paint(1); f -> c -> Discard;")
        new = hotswap_router(old, new_graph).router
        assert "c" not in new.hotswap_transferred


class TestPcap:
    def test_round_trip(self):
        packets = [(1.5, b"\x00" * 60), (2.25, bytes(range(64)))]
        blob = write_pcap(packets)
        parsed = read_pcap(blob)
        assert len(parsed) == 2
        assert parsed[0][1] == b"\x00" * 60
        assert parsed[1][1] == bytes(range(64))
        assert parsed[0][0] == pytest.approx(1.5, abs=1e-6)

    def test_bare_bytes_get_synthetic_timestamps(self):
        parsed = read_pcap(write_pcap([b"aa", b"bb"]))
        assert parsed[0][0] < parsed[1][0]

    @settings(max_examples=30)
    @given(st.lists(st.binary(min_size=1, max_size=128), max_size=8))
    def test_round_trip_property(self, frames):
        parsed = read_pcap(write_pcap(frames))
        assert [data for _, data in parsed] == frames

    def test_snaplen_truncates(self):
        parsed = read_pcap(write_pcap([bytes(100)], snaplen=60))
        assert len(parsed[0][1]) == 60

    @pytest.mark.parametrize(
        "blob", [b"", b"\x00" * 10, b"\xff" * 24, write_pcap([b"x"])[:-1]]
    )
    def test_malformed_rejected(self, blob):
        with pytest.raises(PcapError):
            read_pcap(blob)


class TestDumpElements:
    def test_replay_and_record(self, tmp_path):
        capture = write_pcap([b"frame-one" + bytes(51), b"frame-two" + bytes(51)])
        path = tmp_path / "in.pcap"
        path.write_bytes(capture)
        router = Router(
            parse_graph(
                'src :: FromDump(%s); rec :: ToDump(%s);'
                "src -> rec;" % (path, tmp_path / "out.pcap")
            )
        )
        router.run_tasks(4)
        assert router["src"].emitted == 2
        recorded = read_pcap(router["rec"].capture_bytes())
        assert recorded[0][1].startswith(b"frame-one")

    def test_todump_passthrough(self, tmp_path):
        router = Router(
            parse_graph(
                "f :: Idle; rec :: ToDump(%s); d :: Discard; f -> rec -> d;"
                % (tmp_path / "out.pcap")
            )
        )
        router.push_packet("rec", 0, Packet(b"payload"))
        assert router["d"].count == 1
        assert len(router["rec"].recorded) == 1

    def test_flush_writes_file(self, tmp_path):
        out = tmp_path / "out.pcap"
        router = Router(
            parse_graph("f :: Idle; rec :: ToDump(%s); f -> rec;" % out)
        )
        router.push_packet("rec", 0, Packet(b"data"))
        router["rec"].flush()
        assert read_pcap(out.read_bytes())[0][1] == b"data"

    def test_fromdump_loop(self, tmp_path):
        path = tmp_path / "in.pcap"
        path.write_bytes(write_pcap([b"x" * 60]))
        router = Router(
            parse_graph("src :: FromDump(%s, true); d :: Discard; src -> d;" % path)
        )
        router.run_tasks(3)
        assert router["d"].count > 3  # looped
