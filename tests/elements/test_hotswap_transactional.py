"""Tests for the transactional (two-phase-commit) hot-swap: execution
profile carry, rollback on every failure path, the stateful edge cases
(queue shrink under a compiled mode, ARP pending transfer under churn),
and the SwapResult/SwapReport surface with its legacy attribute-proxy
shim."""

import pytest

from repro.elements import HotswapError, Router, SwapReport, SwapResult, hotswap_router
from repro.elements.hotswap import _counter_take_state
from repro.elements.infrastructure import Counter
from repro.lang.build import parse_graph
from repro.net.headers import build_arp_reply
from repro.net.packet import Packet
from repro.runtime import ExecutionProfile
from repro.runtime.adaptive import AdaptiveConfig

BASE = (
    "f :: Idle; c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard;"
    "f -> c -> q -> u -> d;"
)
EXTENDED = (
    "f :: Idle; c :: Counter; extra :: Paint(1); q :: Queue(8); u :: Unqueue;"
    "d :: Discard; f -> c -> extra -> q -> u -> d;"
)
ARP = (
    "ip :: Idle; resp :: Idle; arpq :: ARPQuerier(1.0.0.1, 00:00:c0:ae:67:ef);"
    "q :: Queue(8); u :: Unqueue; d :: Discard;"
    "ip -> arpq; resp -> [1] arpq; arpq -> q -> u -> d;"
)


class TestProfileCarry:
    def test_fast_mode_carried_and_recompiled(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        old.push_packet("c", 0, Packet(b"a"))
        new = hotswap_router(old, parse_graph(EXTENDED)).router
        assert new.mode == "fast"
        assert new.fastpath is not None and new.fastpath.installed
        assert old.retired
        # The regression this guards: the swapped-in router must run the
        # carried mode over the transferred state, not fall back to the
        # interpreter.
        new.push_packet("c", 0, Packet(b"b"))
        assert new["c"].count == 2
        assert len(new["q"]) == 2

    def test_batch_flavor_carried(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast(batch=True))
        new = hotswap_router(old, parse_graph(EXTENDED)).router
        assert new.mode == "fast"
        assert new.profile == ExecutionProfile.fast(batch=True)
        assert new.fastpath.batch is True

    def test_adaptive_mode_and_config_carried(self):
        config = AdaptiveConfig(threshold=48, sample=4, min_samples=12)
        old = Router(parse_graph(BASE), profile=ExecutionProfile.tiered(config=config))
        new = hotswap_router(old, parse_graph(EXTENDED)).router
        assert new.mode == "adaptive"
        assert new.adaptive is not None
        assert new._adaptive_config is config

    def test_supervision_carried(self):
        old = Router(
            parse_graph(BASE), profile=ExecutionProfile.fast().with_supervision()
        )
        config = old.supervisor.config
        new = hotswap_router(old, parse_graph(EXTENDED)).router
        assert new.supervisor is not None and new.supervisor.attached
        assert new.supervisor.config is config
        assert old.supervisor is None  # retire() detached the old one

    def test_explicit_profile_override(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        new = hotswap_router(
            old, parse_graph(EXTENDED), profile=ExecutionProfile.reference()
        ).router
        assert new.mode == "reference"

    def test_retired_router_is_inert(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        hotswap_router(old, parse_graph(EXTENDED))
        assert old.run_tasks(4) == 0


class TestSwapResultSurface:
    def test_result_carries_router_and_report(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        old.push_packet("c", 0, Packet(b"a"))
        result = hotswap_router(old, parse_graph(EXTENDED))
        assert isinstance(result, SwapResult)
        assert isinstance(result.report, SwapReport)
        assert result.router.mode == "fast"
        report = result.report
        # Same graph modulo one spliced element: the diff scopes the swap.
        assert report.kind == "scoped-swap"
        assert report.profile == "fast"
        assert "c" in report.transferred
        assert set(report.phases) == {
            "validate",
            "build",
            "transfer",
            "compile",
            "commit",
        }
        assert report.total_seconds == pytest.approx(sum(report.phases.values()))
        payload = report.as_dict()
        assert payload["kind"] == "scoped-swap"
        assert payload["chains_recompiled"] == report.chains_recompiled
        assert "scoped-swap" in report.format()

    def test_identical_swap_reuses_chains(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        result = hotswap_router(old, parse_graph(BASE))
        report = result.report
        assert report.chains_reused > 0

    def test_legacy_attribute_proxy_warns(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        result = hotswap_router(old, parse_graph(EXTENDED))
        with pytest.warns(DeprecationWarning, match="SwapResult"):
            assert result.mode == "fast"
        with pytest.warns(DeprecationWarning, match="SwapResult"):
            result.push_packet("c", 0, Packet(b"x"))
        assert result.router["c"].count == 1

    def test_legacy_mode_kwarg_warns_and_works(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        with pytest.warns(DeprecationWarning, match="deprecated; use"):
            result = hotswap_router(old, parse_graph(EXTENDED), mode="reference")
        assert result.router.mode == "reference"


class TestRollback:
    def _serving(self, router):
        """The old router still forwards after a failed swap."""
        before = router["c"].count
        router.push_packet("c", 0, Packet(b"probe"))
        assert router["c"].count == before + 1

    def test_failed_check_leaves_old_serving(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        old.push_packet("c", 0, Packet(b"x"))
        bad = parse_graph("f :: Idle; c :: Counter; f -> c;")  # unconnected output
        with pytest.raises(HotswapError, match="failed check"):
            hotswap_router(old, bad)
        assert not old.retired
        assert len(old["q"]) == 1  # queue untouched
        self._serving(old)

    def test_validate_false_skips_check(self):
        old = Router(parse_graph(BASE))
        bad = parse_graph("f :: Idle; c :: Counter; f -> c;")
        # Without validation the failure surfaces later (build), still
        # as HotswapError with the old router serving.
        try:
            hotswap_router(old, bad, validate=False)
        except HotswapError:
            pass
        assert not old.retired
        self._serving(old)

    def test_failed_state_transfer_rolls_back(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        for tag in (b"a", b"b"):
            old.push_packet("c", 0, Packet(tag))

        def poisoned(self, old_element):
            raise RuntimeError("take_state exploded")

        Counter.take_state = poisoned
        try:
            with pytest.raises(HotswapError, match="state transfer for 'c'"):
                hotswap_router(old, parse_graph(EXTENDED))
        finally:
            Counter.take_state = _counter_take_state
        assert not old.retired
        assert old.mode == "fast"
        assert [p.data for p in list(old["q"]._deque)] == [b"a", b"b"]
        self._serving(old)

    def test_invalid_legacy_mode_rolls_back(self):
        old = Router(parse_graph(BASE))
        old.push_packet("c", 0, Packet(b"x"))
        with pytest.warns(DeprecationWarning, match="deprecated; use"):
            with pytest.raises(HotswapError, match="mode"):
                hotswap_router(old, parse_graph(EXTENDED), mode="warp-speed")
        assert not old.retired
        self._serving(old)


class TestStatefulEdgeCases:
    def test_queue_shrink_drop_accounting_under_fast_mode(self):
        old = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        for index in range(6):
            old.push_packet("c", 0, Packet(bytes([index])))
        small = BASE.replace("Queue(8)", "Queue(4)")
        new = hotswap_router(old, parse_graph(small)).router
        assert new.mode == "fast"
        assert len(new["q"]) == 4
        assert new["q"].drops == 2
        # The survivors drain in order through the compiled pull chain.
        new.run_tasks(8)
        assert new["d"].count == 4

    def test_arp_pending_transferred_and_flushed_under_churn(self):
        old = Router(parse_graph(ARP), profile=ExecutionProfile.fast())
        held = Packet(b"ip-payload")
        held.set_dest_ip_anno("1.0.0.99")
        old.push_packet("arpq", 0, held)  # unresolved: held + query emitted
        assert old["arpq"].pending
        assert len(old["q"]) == 1  # the broadcast query
        # Churn on the old table right before the swap.
        old["arpq"].insert("1.0.0.50", "02:00:00:00:00:50")

        new = hotswap_router(old, parse_graph(ARP)).router
        assert "arpq" in new.hotswap_transferred
        assert new["arpq"].table == old["arpq"].table
        held_lists = list(new["arpq"].pending.values())
        assert held_lists and held_lists[0][0].data == b"ip-payload"
        # The copies are independent: churn on the retired router's
        # state must not leak into the live one.
        old["arpq"].pending.clear()
        assert new["arpq"].pending

        # The ARP reply arriving on the *new* router flushes the held
        # packet through the new compiled chain.
        reply = build_arp_reply(
            "02:aa:bb:cc:dd:ee", "1.0.0.99", "00:00:c0:ae:67:ef", "1.0.0.1"
        )
        new.push_packet("arpq", 1, Packet(reply))
        assert not new["arpq"].pending
        assert len(new["q"]) == 2  # query + the flushed, encapsulated packet
        new.run_tasks(8)
        assert new["d"].count == 2

    def test_chained_swaps(self):
        """Swap twice (the optimize-then-extend workflow): state and
        mode survive both hops."""
        first = Router(parse_graph(BASE), profile=ExecutionProfile.fast())
        for tag in (b"a", b"b", b"c"):
            first.push_packet("c", 0, Packet(tag))
        second = hotswap_router(first, parse_graph(EXTENDED)).router
        third = hotswap_router(second, parse_graph(BASE)).router
        assert second.retired and not third.retired
        assert third.mode == "fast"
        assert third["c"].count == 3
        assert [p.data for p in list(third["q"]._deque)] == [b"a", b"b", b"c"]
