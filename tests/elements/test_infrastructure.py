"""Unit tests for infrastructure elements, driven through real routers."""

import pytest

from repro.elements import ConfigError, Router
from repro.lang.build import parse_graph
from repro.net.packet import Packet


def make_router(text, entry="c", **kwargs):
    """Build a router; ``entry`` names the element test packets are
    injected into, which gets an Idle feeder so its input port exists
    (the runtime enforces Click's port-count rules strictly)."""
    if entry is not None:
        text += " feeder :: Idle; feeder -> %s;" % entry
    return Router(parse_graph(text), **kwargs)


class TestQueue:
    def test_fifo_order(self):
        router = make_router("c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard; c -> q; q -> u -> d;")
        for tag in (b"a", b"b", b"c"):
            router.push_packet("c", 0, Packet(tag))
        pulled = [router["q"].pull(0).data for _ in range(3)]
        assert pulled == [b"a", b"b", b"c"]

    def test_overflow_drops_arrivals(self):
        router = make_router("c :: Counter; q :: Queue(2); u :: Unqueue; d :: Discard; c -> q; q -> u -> d;")
        for i in range(5):
            router.push_packet("c", 0, Packet(bytes([i])))
        queue = router["q"]
        assert len(queue) == 2
        assert queue.drops == 3
        assert queue.pull(0).data == b"\x00"  # oldest survives (drop-tail)

    def test_empty_pull_returns_none(self):
        router = make_router("c :: Counter; q :: Queue; u :: Unqueue; d :: Discard; c -> q; q -> u -> d;")
        assert router["q"].pull(0) is None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            make_router("c :: Counter; q :: Queue(0); u :: Unqueue; d :: Discard; c -> q; q -> u -> d;")

    def test_highwater_tracked(self):
        router = make_router("c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard; c -> q; q -> u -> d;")
        for i in range(3):
            router.push_packet("c", 0, Packet(b"x"))
        assert router["q"].highwater == 3


class TestUnqueueAndScheduling:
    def test_unqueue_moves_packets(self):
        router = make_router(
            "c :: Counter; q :: Queue; u :: Unqueue(4); d :: Discard; c -> q -> u -> d;"
        )
        for _ in range(6):
            router.push_packet("c", 0, Packet(b"x"))
        router.run_tasks(1)  # one task pass: burst of 4
        assert router["d"].count == 4
        router.run_tasks(1)
        assert router["d"].count == 6

    def test_infinite_source_limit(self):
        router = make_router('s :: InfiniteSource("xy", 5, 2); d :: Discard; s -> d;', entry=None)
        for _ in range(10):
            router.run_tasks(1)
        assert router["d"].count == 5
        assert router["d"].push is not None


class TestTee:
    def test_copies_to_all_outputs(self):
        router = make_router(
            "c :: Counter; t :: Tee(2); d1 :: Discard; d2 :: Discard;"
            "c -> t; t [0] -> d1; t [1] -> d2;"
        )
        router.push_packet("c", 0, Packet(b"payload"))
        assert router["d1"].count == 1
        assert router["d2"].count == 1

    def test_copies_are_independent(self):
        captured = []

        class Grabber:
            pass

        router = make_router(
            "c :: Counter; t :: Tee(2); q1 :: Queue; q2 :: Queue;"
            "u1 :: Unqueue; u2 :: Unqueue; d1 :: Discard; d2 :: Discard;"
            "c -> t; t [0] -> q1 -> u1 -> d1; t [1] -> q2 -> u2 -> d2;"
        )
        router.push_packet("c", 0, Packet(b"shared"))
        first = router["q1"].pull(0)
        second = router["q2"].pull(0)
        first.strip(2)
        assert second.data == b"shared"


class TestSwitches:
    def test_static_switch_routes_one_way(self):
        router = make_router(
            "c :: Counter; s :: StaticSwitch(1); d0 :: Discard; d1 :: Discard;"
            "c -> s; s [0] -> d0; s [1] -> d1;"
        )
        router.push_packet("c", 0, Packet(b"x"))
        assert router["d0"].count == 0
        assert router["d1"].count == 1

    def test_static_switch_negative_drops(self):
        router = make_router(
            "c :: Counter; s :: StaticSwitch(-1); d0 :: Discard; c -> s; s -> d0;"
        )
        router.push_packet("c", 0, Packet(b"x"))
        assert router["d0"].count == 0

    def test_switch_is_writable(self):
        router = make_router(
            "c :: Counter; s :: Switch(0); d0 :: Discard; d1 :: Discard;"
            "c -> s; s [0] -> d0; s [1] -> d1;"
        )
        router.push_packet("c", 0, Packet(b"x"))
        router["s"].set_output(1)
        router.push_packet("c", 0, Packet(b"y"))
        assert router["d0"].count == 1
        assert router["d1"].count == 1


class TestStrip:
    def test_strip_and_unstrip(self):
        router = make_router(
            "c :: Counter; s :: Strip(14); u :: Unstrip(14); q :: Queue;"
            "uq :: Unqueue; d :: Discard; c -> s -> u -> q -> uq -> d;"
        )
        frame = bytes(range(34))
        router.push_packet("c", 0, Packet(frame))
        assert router["q"].pull(0).data == frame

    def test_strip_short_packet_drops(self):
        router = make_router("c :: Counter; s :: Strip(14); d :: Discard; c -> s -> d;")
        router.push_packet("c", 0, Packet(b"short"))
        assert router["d"].count == 0


class TestCounterAndSample:
    def test_counter_counts_bytes(self):
        router = make_router("c :: Counter; d :: Discard; c -> d;")
        router.push_packet("c", 0, Packet(b"12345"))
        router.push_packet("c", 0, Packet(b"678"))
        assert router["c"].count == 2
        assert router["c"].byte_count == 8

    def test_random_sample_extremes(self):
        keep_all = make_router("c :: Counter; r :: RandomSample(1.0); d :: Discard; c -> r -> d;")
        drop_all = make_router("c :: Counter; r :: RandomSample(0.0); d :: Discard; c -> r -> d;")
        for _ in range(20):
            keep_all.push_packet("c", 0, Packet(b"x"))
            drop_all.push_packet("c", 0, Packet(b"x"))
        assert keep_all["d"].count == 20
        assert drop_all["d"].count == 0
        assert drop_all["r"].drops == 20
