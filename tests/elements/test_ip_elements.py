"""Unit tests for IP-path elements."""

import struct

import pytest

from repro.elements import ConfigError, Router
from repro.lang.build import parse_graph
from repro.net.checksum import verify_checksum
from repro.net.headers import IP_PROTO_UDP, IPHeader, build_udp_packet
from repro.net.packet import Packet, make_packet


def make_router(text, entry="first"):
    if entry is not None:
        text += " feeder :: Idle; feeder -> %s;" % entry
    return Router(parse_graph(text))


def capture_router(element_decl, noutputs=1):
    """``feeder -> first :: <decl> -> q0, [1]-> q1 ...`` capture queues."""
    parts = ["first :: %s;" % element_decl, "feeder :: Idle; feeder -> first;"]
    for port in range(noutputs):
        parts.append("q%d :: Queue(16); u%d :: Unqueue; d%d :: Discard;" % (port, port, port))
        parts.append("first [%d] -> q%d; q%d -> u%d -> d%d;" % (port, port, port, port, port))
    return Router(parse_graph(" ".join(parts)))


def good_packet(ttl=64, src="1.0.0.2", dst="2.0.0.2"):
    return Packet(build_udp_packet(src, dst, payload=b"\x00" * 14, ttl=ttl))


class TestPaint:
    def test_sets_annotation(self):
        router = capture_router("Paint(2)")
        router.push_packet("first", 0, good_packet())
        assert router["q0"].pull(0).paint == 2

    def test_needs_color(self):
        with pytest.raises(ConfigError):
            capture_router("Paint()")


class TestPaintTee:
    def test_matching_paint_copied_to_port_1(self):
        router = capture_router("CheckPaint(1)", noutputs=2)
        packet = good_packet()
        packet.paint = 1
        router.push_packet("first", 0, packet)
        assert len(router["q0"]) == 1
        assert len(router["q1"]) == 1

    def test_non_matching_paint_goes_straight_through(self):
        router = capture_router("CheckPaint(1)", noutputs=2)
        packet = good_packet()
        packet.paint = 2
        router.push_packet("first", 0, packet)
        assert len(router["q0"]) == 1
        assert len(router["q1"]) == 0


class TestCheckIPHeader:
    def test_valid_packet_passes_and_annotates(self):
        router = capture_router("CheckIPHeader()")
        router.push_packet("first", 0, good_packet(dst="2.0.0.2"))
        out = router["q0"].pull(0)
        assert out is not None
        assert str(out.dest_ip_anno) == "2.0.0.2"
        assert out.ip_header_offset == 0

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda d: b"\x55" + d[1:],  # wrong version
            lambda d: b"\x44" + d[1:],  # IHL 4 < 5
            lambda d: d[:2] + b"\xff\xff" + d[4:],  # total length too big
            lambda d: d[:10] + b"\x00\x00" + d[12:],  # broken checksum
        ],
    )
    def test_bad_headers_dropped(self, corrupt):
        router = capture_router("CheckIPHeader()")
        data = good_packet().data
        router.push_packet("first", 0, Packet(corrupt(data)))
        assert len(router["q0"]) == 0
        assert router["first"].drops == 1

    def test_bad_src_list(self):
        router = capture_router("CheckIPHeader(1.0.0.2 7.7.7.7)")
        router.push_packet("first", 0, good_packet(src="1.0.0.2"))
        assert len(router["q0"]) == 0

    def test_broadcast_src_always_bad(self):
        packet = good_packet()
        data = bytearray(packet.data)
        data[12:16] = b"\xff\xff\xff\xff"
        # Fix the checksum for the new source.
        data[10:12] = b"\x00\x00"
        from repro.net.checksum import internet_checksum

        struct.pack_into("!H", data, 10, internet_checksum(data[:20]))
        router = capture_router("CheckIPHeader()")
        router.push_packet("first", 0, Packet(bytes(data)))
        assert len(router["q0"]) == 0

    def test_second_output_gets_bad_packets(self):
        router = capture_router("CheckIPHeader()", noutputs=2)
        router.push_packet("first", 0, Packet(b"\x00" * 20))
        assert len(router["q0"]) == 0
        assert len(router["q1"]) == 1


class TestGetIPAddress:
    def test_reads_destination(self):
        router = capture_router("GetIPAddress(16)")
        router.push_packet("first", 0, good_packet(dst="9.8.7.6"))
        assert str(router["q0"].pull(0).dest_ip_anno) == "9.8.7.6"

    def test_short_packet_dropped(self):
        router = capture_router("GetIPAddress(16)")
        router.push_packet("first", 0, Packet(b"\x00" * 10))
        assert len(router["q0"]) == 0


class TestDropBroadcasts:
    def test_broadcast_annotation_dropped(self):
        router = capture_router("DropBroadcasts")
        packet = make_packet(good_packet().data, packet_type="broadcast")
        router.push_packet("first", 0, packet)
        assert len(router["q0"]) == 0
        assert router["first"].drops == 1

    def test_host_packets_pass(self):
        router = capture_router("DropBroadcasts")
        packet = make_packet(good_packet().data, packet_type="host")
        router.push_packet("first", 0, packet)
        assert len(router["q0"]) == 1


class TestDecIPTTL:
    def test_decrements_and_fixes_checksum(self):
        router = capture_router("DecIPTTL", noutputs=2)
        router.push_packet("first", 0, good_packet(ttl=64))
        out = router["q0"].pull(0)
        header = IPHeader.unpack(out.data)
        assert header.ttl == 63
        assert verify_checksum(out.data[:20])

    @pytest.mark.parametrize("ttl", [0, 1])
    def test_expired_ttl_to_error_output(self, ttl):
        router = capture_router("DecIPTTL", noutputs=2)
        router.push_packet("first", 0, good_packet(ttl=ttl))
        assert len(router["q0"]) == 0
        assert len(router["q1"]) == 1
        assert router["first"].expired == 1


class TestFixIPSrc:
    def test_rewrites_when_annotated(self):
        router = capture_router("FixIPSrc(2.0.0.1)")
        packet = good_packet(src="9.9.9.9")
        packet.fix_ip_src_anno = True
        router.push_packet("first", 0, packet)
        out = router["q0"].pull(0)
        header = IPHeader.unpack(out.data)
        assert str(header.src) == "2.0.0.1"
        assert verify_checksum(out.data[:20])
        assert not out.fix_ip_src_anno

    def test_leaves_unannotated_packets(self):
        router = capture_router("FixIPSrc(2.0.0.1)")
        router.push_packet("first", 0, good_packet(src="9.9.9.9"))
        assert str(IPHeader.unpack(router["q0"].pull(0).data).src) == "9.9.9.9"


class TestIPGWOptions:
    def test_no_options_pass(self):
        router = capture_router("IPGWOptions(1.0.0.1)", noutputs=2)
        router.push_packet("first", 0, good_packet())
        assert len(router["q0"]) == 1

    def test_valid_options_pass(self):
        # IHL 6, one NOP-padded option block.
        header = IPHeader(
            src="1.0.0.2", dst="2.0.0.2", header_length=24, total_length=24,
            protocol=IP_PROTO_UDP,
        )
        raw = bytearray(header.pack())
        raw[20:24] = bytes([1, 1, 1, 0])  # NOP NOP NOP EOL
        from repro.net.checksum import internet_checksum

        raw[10:12] = b"\x00\x00"
        struct.pack_into("!H", raw, 10, internet_checksum(raw))
        router = capture_router("IPGWOptions(1.0.0.1)", noutputs=2)
        router.push_packet("first", 0, Packet(bytes(raw)))
        assert len(router["q0"]) == 1

    def test_malformed_option_to_error_output(self):
        header = IPHeader(
            src="1.0.0.2", dst="2.0.0.2", header_length=24, total_length=24,
        )
        raw = bytearray(header.pack())
        raw[20:24] = bytes([7, 1, 0, 0])  # RR option with absurd length 1
        router = capture_router("IPGWOptions(1.0.0.1)", noutputs=2)
        router.push_packet("first", 0, Packet(bytes(raw)))
        assert len(router["q0"]) == 0
        assert len(router["q1"]) == 1


class TestIPFragmenter:
    def test_small_packets_untouched(self):
        router = capture_router("IPFragmenter(1500)", noutputs=2)
        router.push_packet("first", 0, good_packet())
        assert len(router["q0"]) == 1

    def test_fragments_large_packet(self):
        router = capture_router("IPFragmenter(576)", noutputs=2)
        payload = bytes(range(256)) * 4  # 1024 payload bytes
        packet = Packet(build_udp_packet("1.0.0.2", "2.0.0.2", payload=payload))
        router.push_packet("first", 0, packet)
        fragments = []
        while True:
            fragment = router["q0"].pull(0)
            if fragment is None:
                break
            fragments.append(fragment)
        assert len(fragments) >= 2
        # Every fragment fits the MTU and has a valid checksum.
        reassembled = b""
        for index, fragment in enumerate(fragments):
            assert len(fragment) <= 576
            header = IPHeader.unpack(fragment.data)
            assert verify_checksum(fragment.data[: header.header_length])
            assert header.more_fragments == (index < len(fragments) - 1)
            reassembled += fragment.data[header.header_length:]
        original = build_udp_packet("1.0.0.2", "2.0.0.2", payload=payload)
        assert reassembled == original[20:]

    def test_df_packets_to_error_output(self):
        router = capture_router("IPFragmenter(576)", noutputs=2)
        header = IPHeader(
            src="1.0.0.2", dst="2.0.0.2", flags=0x2, total_length=1020,
        )
        router.push_packet("first", 0, Packet(header.pack() + bytes(1000)))
        assert len(router["q0"]) == 0
        assert len(router["q1"]) == 1
