"""Pull-path coverage for agnostic elements.

Agnostic elements (processing ``a/a`` or ``a/ah``) must behave
identically whether they sit on a push path or a pull path (downstream
of a Queue).  These tests drive the pull implementations the IP router
never exercises.
"""

import pytest

from repro.elements import Router
from repro.lang.build import parse_graph
from repro.net.headers import IPHeader, build_udp_packet
from repro.net.packet import Packet


def pull_router(middle_decl, extra=""):
    """feeder -> Queue -> <middle> -> Unqueue -> Discard, pulled."""
    return Router(
        parse_graph(
            "feeder :: Idle; q :: Queue(16); mid :: %s; u :: Unqueue(4);"
            "d :: Discard; feeder -> q -> mid -> u -> d; %s" % (middle_decl, extra)
        )
    )


def good_packet(ttl=64):
    return Packet(build_udp_packet("1.0.0.2", "2.0.0.2", payload=b"\x00" * 14, ttl=ttl))


class TestPullPaths:
    def test_counter_counts_on_pull(self):
        router = pull_router("Counter")
        router["q"].push(0, good_packet())
        router.run_tasks(2)
        assert router["mid"].count == 1
        assert router["d"].count == 1

    def test_strip_strips_on_pull(self):
        router = pull_router("Strip(20)")
        router["q"].push(0, good_packet())
        router.run_tasks(2)
        assert router["d"].count == 1

    def test_decipttl_decrements_on_pull(self):
        captured = []
        router = pull_router("DecIPTTL")
        router["q"].push(0, good_packet(ttl=5))
        packet = router["u"].input(0).pull()
        assert IPHeader.unpack(packet.data).ttl == 4

    def test_decipttl_expired_consumed_on_pull(self):
        # With one output, expired packets vanish (pull returns None).
        router = pull_router("DecIPTTL")
        router["q"].push(0, good_packet(ttl=1))
        assert router["u"].input(0).pull() is None
        assert router["mid"].expired == 1

    def test_checkipheader_validates_on_pull(self):
        router = pull_router("CheckIPHeader()")
        router["q"].push(0, good_packet())
        router["q"].push(0, Packet(b"garbage"))
        first = router["u"].input(0).pull()
        assert first is not None and str(first.dest_ip_anno) == "2.0.0.2"
        assert router["u"].input(0).pull() is None
        assert router["mid"].drops == 1

    def test_painttee_copies_on_pull(self):
        router = pull_router(
            "CheckPaint(3)",
            extra="mid [1] -> side :: Queue(8); side -> u2 :: Unqueue -> Discard;",
        )
        packet = good_packet()
        packet.paint = 3
        router["q"].push(0, packet)
        pulled = router["u"].input(0).pull()
        assert pulled is not None
        assert len(router["side"]) == 1  # the redirect copy

    def test_random_sample_drop_on_pull(self):
        router = pull_router("RandomSample(0.0)")
        router["q"].push(0, good_packet())
        assert router["u"].input(0).pull() is None
        assert router["mid"].drops == 1

    def test_ipgwoptions_passes_on_pull(self):
        router = pull_router("IPGWOptions(1.0.0.1)")
        router["q"].push(0, good_packet())
        assert router["u"].input(0).pull() is not None

    def test_checklength_filters_on_pull(self):
        router = pull_router("CheckLength(10)")
        router["q"].push(0, Packet(b"tiny"))
        router["q"].push(0, Packet(b"x" * 50))
        assert router["u"].input(0).pull().data == b"tiny"
        assert router["u"].input(0).pull() is None
        assert router["mid"].drops == 1

    def test_hostetherfilter_on_pull(self):
        from repro.net.headers import make_ether_header

        router = pull_router("HostEtherFilter(00:00:C0:AA:00:00)")
        mine = make_ether_header("00:00:C0:AA:00:00", "00:20:6F:00:00:01", 0x0800)
        router["q"].push(0, Packet(mine + bytes(46)))
        pulled = router["u"].input(0).pull()
        assert pulled.user_annos["packet_type"] == "host"


class TestEnsureEther:
    def test_passes_existing_ether(self):
        from repro.net.headers import make_ether_header

        router = pull_router("EnsureEther(0x0800, 00:00:C0:AA:00:00, 00:00:C0:BB:00:00)")
        frame = make_ether_header("00:11:22:33:44:55", "66:77:88:99:AA:BB", 0x0800) + bytes(20)
        router["q"].push(0, Packet(frame))
        pulled = router["u"].input(0).pull()
        assert pulled.data == frame  # untouched

    def test_wraps_bare_ip(self):
        from repro.net.headers import ETHER_HEADER_LEN, EtherHeader

        router = pull_router("EnsureEther(0x0800, 00:00:C0:AA:00:00, 00:00:C0:BB:00:00)")
        router["q"].push(0, good_packet())
        pulled = router["u"].input(0).pull()
        header = EtherHeader.unpack(pulled.data)
        assert header.ether_type == 0x0800
        assert header.dst == "00:00:C0:BB:00:00"
        assert pulled.data[ETHER_HEADER_LEN] >> 4 == 4


class TestErrorCollector:
    def test_format_and_ok(self):
        from repro.errors import ErrorCollector, SourceLocation

        collector = ErrorCollector()
        assert collector.ok
        collector.warning("heads up", SourceLocation("f.click", 2, 1))
        assert collector.ok  # warnings don't fail
        collector.error("broken", SourceLocation("f.click", 3, 7))
        assert not collector.ok
        report = collector.format()
        assert "f.click:3:7: error: broken" in report
        assert "f.click:2:1: warning: heads up" in report

    def test_raise_if_errors_summarizes(self):
        from repro.errors import ClickSemanticError, ErrorCollector

        collector = ErrorCollector()
        collector.error("first problem")
        collector.error("second problem")
        with pytest.raises(ClickSemanticError, match="1 more error"):
            collector.raise_if_errors()

    def test_raise_if_clean_is_noop(self):
        from repro.errors import ErrorCollector

        ErrorCollector().raise_if_errors()
