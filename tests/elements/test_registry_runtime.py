"""Tests for the element registry, the specification export (§5.3), and
the runtime Router's error handling."""

import pytest

from repro.elements import (
    ELEMENT_CLASSES,
    ConfigError,
    Element,
    Router,
    default_specs,
    export_specs,
    parse_spec_file,
)
from repro.errors import ClickSemanticError
from repro.lang.build import parse_graph


class TestRegistry:
    def test_core_classes_registered(self):
        for name in ("Queue", "Classifier", "ARPQuerier", "PollDevice", "IPInputCombo"):
            assert name in ELEMENT_CLASSES

    def test_default_specs_cover_registry(self):
        specs = default_specs()
        assert set(specs) >= set(ELEMENT_CLASSES)

    def test_spec_export_round_trips(self):
        """The structured spec file — what a separate-process tool loads
        instead of linking element code — must round-trip faithfully."""
        text = export_specs()
        parsed = parse_spec_file(text)
        for name, cls in ELEMENT_CLASSES.items():
            assert parsed[name].processing.text == cls.processing
            assert parsed[name].flow_code.text == cls.flow_code
            assert parsed[name].port_counts.text == cls.port_counts

    def test_spec_file_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_spec_file("Queue only-two-fields\n")

    def test_duplicate_registration_rejected(self):
        from repro.elements.registry import register

        class Fake(Element):
            class_name = "Queue"

        with pytest.raises(ValueError):
            register(Fake)

    def test_specs_match_click_conventions(self):
        """Spot-check the processing codes the paper mentions."""
        specs = default_specs()
        assert specs["Queue"].processing.text == "h/l"
        assert specs["ARPQuerier"].flow_code.text == "xy/x"
        assert specs["Discard"].port_counts.inputs_ok(1)
        assert not specs["Discard"].port_counts.outputs_ok(1)


class TestRuntimeErrors:
    def test_unknown_class_rejected(self):
        with pytest.raises(ClickSemanticError, match="unknown element class"):
            Router(parse_graph("f :: Idle; x :: Mystery; f -> x;"))

    def test_unflattened_compound_rejected(self):
        graph = parse_graph(
            "elementclass W { input -> output; } f :: Idle; w :: W; f -> w -> Discard;"
        )
        with pytest.raises(ClickSemanticError, match="flattened"):
            Router(graph)

    def test_push_output_fanout_rejected(self):
        graph = parse_graph(
            "f :: Idle; c :: Counter; d1 :: Discard; d2 :: Discard;"
            "f -> c; c -> d1; c -> d2;"
        )
        with pytest.raises(ClickSemanticError, match="push output"):
            Router(graph)

    def test_pull_input_fanin_rejected(self):
        graph = parse_graph(
            "q1 :: Queue; q2 :: Queue; u :: Unqueue; f1 :: Idle; f2 :: Idle;"
            "f1 -> q1; f2 -> q2; q1 -> u; q2 -> u; u -> Discard;"
        )
        with pytest.raises(ClickSemanticError, match="pull input"):
            Router(graph)

    def test_unconnected_output_rejected(self):
        graph = parse_graph(
            "f :: Idle; c :: Classifier(12/0800, -); f -> c; c [1] -> Discard;"
        )
        with pytest.raises(ClickSemanticError, match="unconnected"):
            Router(graph)

    def test_config_error_carries_element_name(self):
        with pytest.raises(ConfigError):
            Router(parse_graph("f :: Idle; s :: Strip(bogus); f -> s -> Discard;"))

    def test_missing_device_rejected(self):
        graph = parse_graph("pd :: PollDevice(eth9); pd -> Discard;")
        with pytest.raises(ConfigError, match="no such device"):
            Router(graph, devices={})


class TestRouterQueries:
    def test_find_and_indexing(self):
        router = Router(parse_graph("f :: Idle; c :: Counter; f -> c -> Discard;"))
        assert router["c"].class_name == "Counter"
        assert router.find("c") is router["c"]
        assert router.find("nope") is None
        assert [e.name for e in router.elements_of_class("Counter")] == ["c"]

    def test_tasks_collected_in_order(self):
        router = Router(
            parse_graph(
                "s1 :: InfiniteSource(x, 1); s2 :: InfiniteSource(y, 1);"
                "s1 -> Discard; s2 -> Discard;"
            )
        )
        assert [t.name for t in router.tasks] == ["s1", "s2"]

    def test_meter_optional(self):
        router = Router(parse_graph("f :: Idle; c :: Counter; f -> c -> Discard;"))
        assert router.meter is None
        from repro.net.packet import Packet

        router.push_packet("c", 0, Packet(b"x"))  # no meter: still works
        assert router["c"].count == 1
