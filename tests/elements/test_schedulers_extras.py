"""Unit tests for schedulers and the extra utility elements."""

import pytest

from repro.elements import ConfigError, Router
from repro.lang.build import parse_graph
from repro.net.checksum import verify_checksum
from repro.net.headers import build_udp_packet
from repro.net.packet import Packet, make_packet


def sched_router(sched_decl, inputs=2):
    parts = ["s :: %s;" % sched_decl, "u :: Unqueue(1); d :: Discard; s -> u -> d;"]
    for i in range(inputs):
        parts.append("f%d :: Idle; q%d :: Queue(16); f%d -> q%d -> [%d] s;" % (i, i, i, i, i))
    return Router(parse_graph(" ".join(parts)))


class TestRoundRobinSched:
    def test_alternates_between_inputs(self):
        router = sched_router("RoundRobinSched")
        for tag in (b"a0", b"a1"):
            router["q0"].push(0, Packet(tag))
        for tag in (b"b0", b"b1"):
            router["q1"].push(0, Packet(tag))
        order = [router["s"].pull(0).data for _ in range(4)]
        assert order == [b"a0", b"b0", b"a1", b"b1"]

    def test_skips_empty_inputs(self):
        router = sched_router("RoundRobinSched")
        router["q1"].push(0, Packet(b"only"))
        assert router["s"].pull(0).data == b"only"
        assert router["s"].pull(0) is None


class TestPrioSched:
    def test_input_zero_first(self):
        router = sched_router("PrioSched")
        router["q1"].push(0, Packet(b"low"))
        router["q0"].push(0, Packet(b"high"))
        assert router["s"].pull(0).data == b"high"
        assert router["s"].pull(0).data == b"low"

    def test_falls_through_when_high_empty(self):
        router = sched_router("PrioSched")
        router["q1"].push(0, Packet(b"low"))
        assert router["s"].pull(0).data == b"low"


class TestRatedSource:
    def test_respects_limit(self):
        router = Router(parse_graph('r :: RatedSource("x", 100000, 7); d :: Discard; r -> d;'))
        for _ in range(100):
            router.run_tasks(1)
        assert router["d"].count == 7

    def test_rate_bounds_emission(self):
        # 1000 packets/s at 1 ms per tick = ~1 packet per tick.
        router = Router(parse_graph('r :: RatedSource("x", 1000, -1); d :: Discard; r -> d;'))
        router.run_tasks(50)
        assert 40 <= router["d"].count <= 60


class TestPaintSwitch:
    def test_routes_by_paint(self):
        router = Router(
            parse_graph(
                "f :: Idle; ps :: PaintSwitch; d0 :: Discard; d1 :: Discard;"
                "f -> ps; ps [0] -> d0; ps [1] -> d1;"
            )
        )
        router.push_packet("ps", 0, make_packet(b"x", paint=1))
        router.push_packet("ps", 0, make_packet(b"x", paint=0))
        router.push_packet("ps", 0, make_packet(b"x", paint=9))
        assert router["d0"].count == 1
        assert router["d1"].count == 1
        assert router["ps"].drops == 1


class TestCheckLength:
    def test_splits_by_length(self):
        router = Router(
            parse_graph(
                "f :: Idle; cl :: CheckLength(10); ok :: Discard; big :: Discard;"
                "f -> cl; cl [0] -> ok; cl [1] -> big;"
            )
        )
        router.push_packet("cl", 0, Packet(b"short"))
        router.push_packet("cl", 0, Packet(b"much much too long"))
        assert router["ok"].count == 1
        assert router["big"].count == 1

    def test_drops_without_second_output(self):
        router = Router(
            parse_graph("f :: Idle; cl :: CheckLength(4); d :: Discard; f -> cl -> d;")
        )
        router.push_packet("cl", 0, Packet(b"toolong"))
        assert router["d"].count == 0
        assert router["cl"].drops == 1


class TestSetIPChecksum:
    def test_repairs_broken_checksum(self):
        router = Router(
            parse_graph("f :: Idle; s :: SetIPChecksum; q :: Queue; u :: Unqueue;"
                        "d :: Discard; f -> s -> q -> u -> d;")
        )
        packet = bytearray(build_udp_packet("1.0.0.2", "2.0.0.2", payload=b"\x00" * 14))
        packet[10:12] = b"\xde\xad"  # corrupt
        router.push_packet("s", 0, Packet(bytes(packet)))
        out = router["q"].pull(0)
        assert verify_checksum(out.data[:20])

    def test_short_packet_dropped(self):
        router = Router(
            parse_graph("f :: Idle; s :: SetIPChecksum; d :: Discard; f -> s -> d;")
        )
        router.push_packet("s", 0, Packet(b"tiny"))
        assert router["d"].count == 0


class TestStripToNetworkHeader:
    def test_strips_recorded_offset(self):
        router = Router(
            parse_graph("f :: Idle; s :: StripToNetworkHeader; q :: Queue; u :: Unqueue;"
                        "d :: Discard; f -> s -> q -> u -> d;")
        )
        packet = Packet(b"EEEEEEEEEEEEEE" + build_udp_packet("1.0.0.2", "2.0.0.2"))
        packet.ip_header_offset = 14
        router.push_packet("s", 0, packet)
        out = router["q"].pull(0)
        assert out.data[0] >> 4 == 4  # now starts at the IP header
        assert out.ip_header_offset == 0

    def test_no_offset_is_identity(self):
        router = Router(
            parse_graph("f :: Idle; s :: StripToNetworkHeader; q :: Queue; u :: Unqueue;"
                        "d :: Discard; f -> s -> q -> u -> d;")
        )
        router.push_packet("s", 0, Packet(b"payload"))
        assert router["q"].pull(0).data == b"payload"
