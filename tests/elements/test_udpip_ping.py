"""Tests for UDPIPEncap, SetUDPChecksum, ICMPPingResponder, Shaper,
TimedSource, and FrontDropQueue."""

import struct

import pytest

from repro.elements import Router
from repro.lang.build import parse_graph
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.headers import (
    IP_HEADER_LEN,
    IP_PROTO_ICMP,
    IP_PROTO_UDP,
    IPHeader,
    UDPHeader,
)
from repro.net.packet import Packet


def capture_router(decl):
    return Router(
        parse_graph(
            "feeder :: Idle; first :: %s; q :: Queue(16); u :: Unqueue; d :: Discard;"
            "feeder -> first -> q -> u -> d;" % decl
        )
    )


class TestUDPIPEncap:
    def test_encapsulates_payload(self):
        router = capture_router("UDPIPEncap(1.0.0.1, 1234, 2.0.0.2, 53)")
        router.push_packet("first", 0, Packet(b"query!"))
        out = router["q"].pull(0)
        ip = IPHeader.unpack(out.data)
        assert ip.protocol == IP_PROTO_UDP
        assert str(ip.dst) == "2.0.0.2"
        assert verify_checksum(out.data[:20])
        udp = UDPHeader.unpack(out.data[IP_HEADER_LEN:])
        assert (udp.src_port, udp.dst_port) == (1234, 53)
        assert out.data[IP_HEADER_LEN + 8:] == b"query!"
        assert str(out.dest_ip_anno) == "2.0.0.2"

    def test_identification_increments(self):
        router = capture_router("UDPIPEncap(1.0.0.1, 1, 2.0.0.2, 2)")
        router.push_packet("first", 0, Packet(b"a"))
        router.push_packet("first", 0, Packet(b"b"))
        first = IPHeader.unpack(router["q"].pull(0).data).identification
        second = IPHeader.unpack(router["q"].pull(0).data).identification
        assert second == first + 1


class TestSetUDPChecksum:
    def test_checksum_verifies_with_pseudo_header(self):
        from repro.net.headers import build_udp_packet

        router = capture_router("SetUDPChecksum")
        packet = build_udp_packet("1.0.0.1", "2.0.0.2", payload=b"data")
        router.push_packet("first", 0, Packet(packet))
        out = router["q"].pull(0).data
        udp_length = struct.unpack_from("!H", out, IP_HEADER_LEN + 4)[0]
        pseudo = out[12:20] + bytes([0, IP_PROTO_UDP]) + struct.pack("!H", udp_length)
        assert internet_checksum(pseudo + out[IP_HEADER_LEN:]) in (0, 0xFFFF)
        assert struct.unpack_from("!H", out, IP_HEADER_LEN + 6)[0] != 0


class TestICMPPingResponder:
    def ping(self, src="1.0.0.2", dst="1.0.0.1"):
        ip = IPHeader(src=src, dst=dst, protocol=IP_PROTO_ICMP, total_length=28, ttl=9)
        icmp = bytearray(struct.pack("!BBHHH", 8, 0, 0, 0x1234, 1))
        icmp[2:4] = struct.pack("!H", internet_checksum(icmp))
        return ip.pack() + bytes(icmp)

    def test_echo_becomes_reply(self):
        router = capture_router("ICMPPingResponder")
        router.push_packet("first", 0, Packet(self.ping()))
        out = router["q"].pull(0)
        ip = IPHeader.unpack(out.data)
        assert str(ip.dst) == "1.0.0.2"  # back to the pinger
        assert str(ip.src) == "1.0.0.1"
        assert verify_checksum(out.data[:20])
        assert out.data[20] == 0  # echo reply
        assert verify_checksum(out.data[20:])
        assert str(out.dest_ip_anno) == "1.0.0.2"
        # The identifier/sequence survive (same echo payload).
        assert out.data[24:28] == struct.pack("!HH", 0x1234, 1)

    def test_non_echo_dropped(self):
        router = capture_router("ICMPPingResponder")
        from repro.net.headers import build_udp_packet

        router.push_packet("first", 0, Packet(build_udp_packet("1.0.0.2", "1.0.0.1")))
        assert len(router["q"]) == 0


class TestPingableRouter:
    def test_router_answers_ping_end_to_end(self):
        from repro.configs.iprouter import default_interfaces, ip_router_config
        from repro.core.toolchain import load_config
        from repro.elements import LoopbackDevice
        from repro.net.headers import ETHER_HEADER_LEN, EtherHeader, make_ether_header

        interfaces = default_interfaces(2)
        graph = load_config(ip_router_config(interfaces, answer_pings=True))
        devices = {"eth0": LoopbackDevice("eth0"), "eth1": LoopbackDevice("eth1")}
        router = Router(graph, devices=devices)
        router["arpq0"].insert("1.0.0.2", "00:20:6F:03:04:05")

        echo = TestICMPPingResponder().ping(src="1.0.0.2", dst="1.0.0.1")
        frame = make_ether_header(interfaces[0].ether, "00:20:6F:03:04:05", 0x0800) + echo
        devices["eth0"].receive_frame(frame)
        router.run_tasks(30)
        (reply,) = devices["eth0"].transmitted
        assert EtherHeader.unpack(reply).dst == "00:20:6F:03:04:05"
        assert reply[ETHER_HEADER_LEN + 20] == 0  # echo reply

    def test_pingable_router_still_optimizes(self):
        """The full optimizer chain handles the extended configuration."""
        from repro.configs.iprouter import ip_router_config
        from repro.core import devirtualize, fastclassifier, xform
        from repro.core.check import check
        from repro.core.patterns import STANDARD_PATTERNS
        from repro.core.toolchain import load_config

        graph = load_config(ip_router_config(answer_pings=True))
        transformed = xform(fastclassifier(graph), patterns=STANDARD_PATTERNS)
        assert transformed.elements_of_class("IPInputCombo")
        optimized = devirtualize(transformed)
        assert check(optimized).ok, check(optimized).format()
        # After devirtualization every combo is a specialized subclass.
        assert any(
            d.class_name.startswith("Devirtualize@@") for d in optimized.elements.values()
        )


class TestShaping:
    def test_shaper_limits_rate(self):
        router = Router(
            parse_graph(
                "f :: Idle; q :: Queue(1000); sh :: Shaper(2000); u :: Unqueue(100);"
                "d :: Discard; f -> q -> sh -> u -> d;"
            )
        )
        for _ in range(500):
            router["q"].push(0, Packet(b"x"))
        router.run_tasks(50)  # 50 ms simulated; 2000 pps -> ~100 packets
        assert 80 <= router["d"].count <= 120

    def test_timed_source_interval(self):
        router = Router(
            parse_graph('t :: TimedSource(0.01, "tick"); d :: Discard; t -> d;')
        )
        router.run_tasks(100)  # 100 ms at 10 ms intervals
        assert 9 <= router["d"].count <= 11

    def test_front_drop_queue_keeps_newest(self):
        router = Router(
            parse_graph(
                "f :: Idle; q :: FrontDropQueue(3); u :: Unqueue; d :: Discard;"
                "f -> q -> u -> d;"
            )
        )
        for index in range(6):
            router["q"].push(0, Packet(bytes([index])))
        kept = [router["q"].pull(0).data[0] for _ in range(3)]
        assert kept == [3, 4, 5]  # oldest were dropped
        assert router["q"].drops == 3
