"""Unit tests for graph diffing (repro.graph.diff): delta shape
classification, dirty-name seeding for the scoped swap, and the
``diff . apply_to`` round trip."""

from repro.graph.diff import GraphDelta, diff_graphs
from repro.lang.build import parse_graph

BASE = (
    "f :: Idle; c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard;"
    "f -> c -> q -> u -> d;"
)


def graphs_equal(a, b):
    """Equal up to declaration order: same declarations, same wiring."""
    decls_a = {n: (d.class_name, d.config) for n, d in a.elements.items()}
    decls_b = {n: (d.class_name, d.config) for n, d in b.elements.items()}
    return decls_a == decls_b and set(a.connections) == set(b.connections)


class TestDiff:
    def test_identical_graphs_empty_delta(self):
        delta = diff_graphs(parse_graph(BASE), parse_graph(BASE))
        assert delta.empty
        assert not delta.structural
        assert delta.dirty_names() == set()
        assert delta.summary() == "no changes"

    def test_config_only_change_is_pure_data(self):
        new = parse_graph(BASE.replace("Queue(8)", "Queue(16)"))
        delta = diff_graphs(parse_graph(BASE), new)
        assert not delta.empty
        assert not delta.structural
        [change] = delta.changed
        assert change.name == "q"
        assert change.config_changed and not change.class_changed
        assert delta.dirty_names() == {"q"}

    def test_class_change_is_structural(self):
        new = parse_graph(BASE.replace("c :: Counter", "c :: Paint(1)"))
        delta = diff_graphs(parse_graph(BASE), new)
        assert delta.structural
        [change] = delta.changed
        assert change.class_changed

    def test_added_element_and_wiring(self):
        extended = (
            "f :: Idle; c :: Counter; extra :: Paint(1); q :: Queue(8);"
            "u :: Unqueue; d :: Discard; f -> c -> extra -> q -> u -> d;"
        )
        delta = diff_graphs(parse_graph(BASE), parse_graph(extended))
        assert delta.structural
        assert [name for name, _cls, _cfg in delta.added] == ["extra"]
        # Both endpoints of every rewired edge are dirty.
        assert {"extra", "c", "q"} <= delta.dirty_names()

    def test_removed_element_lists_its_connections(self):
        shrunk = "f :: Idle; q :: Queue(8); u :: Unqueue; d :: Discard; f -> q -> u -> d;"
        delta = diff_graphs(parse_graph(BASE), parse_graph(shrunk))
        assert delta.removed == ["c"]
        # The connections through the removed element are explicit, so
        # the surviving endpoints land in the dirty set.
        assert {"c", "f", "q"} <= delta.dirty_names()

    def test_apply_to_round_trip(self):
        extended = (
            "f :: Idle; c :: Counter; extra :: Paint(1); q :: Queue(4);"
            "u :: Unqueue; d :: Discard; f -> c -> extra -> q -> u -> d;"
        )
        old, new = parse_graph(BASE), parse_graph(extended)
        delta = diff_graphs(old, new)
        rebuilt = delta.apply_to(old)
        assert graphs_equal(rebuilt, new)
        # And the original is untouched (apply_to copies).
        assert "extra" not in old.elements

    def test_as_dict_is_json_shaped(self):
        import json

        new = parse_graph(BASE.replace("Queue(8)", "Queue(16)"))
        delta = diff_graphs(parse_graph(BASE), new)
        payload = delta.as_dict()
        json.dumps(payload)
        assert payload["structural"] is False
        assert payload["changed"][0]["name"] == "q"

    def test_manual_delta_construction(self):
        delta = GraphDelta(removed=["c"])
        assert delta.structural
        assert delta.dirty_names() == {"c"}
