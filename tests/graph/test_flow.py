"""Unit tests for flow codes."""

import pytest

from repro.graph.flow import FlowCode, FlowError


class TestFlowCode:
    def test_full_flow(self):
        code = FlowCode("x/x")
        assert code.flows(0, 0)
        assert code.flows(3, 5)  # last char repeats

    def test_arp_querier_style(self):
        # ARPQuerier: IP packets (input 0) flow to output 0; ARP replies
        # (input 1) are consumed.
        code = FlowCode("xy/x")
        assert code.flows(0, 0)
        assert not code.flows(1, 0)

    def test_hash_matches_same_port(self):
        code = FlowCode("#/#")
        assert code.flows(2, 2)
        assert not code.flows(2, 3)

    def test_dash_never_flows(self):
        code = FlowCode("x/-")
        assert not code.flows(0, 0)

    def test_forward_and_backward_ports(self):
        code = FlowCode("xy/xxy")
        assert code.forward_ports(0, 3) == [0, 1]
        assert code.forward_ports(1, 3) == [2]
        assert code.backward_ports(2, 2) == [1]

    @pytest.mark.parametrize("bad", ["", "/", "x/!"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(FlowError):
            FlowCode(bad)


class TestFlowTraversal:
    def test_flow_reachable_respects_flow_codes(self):
        from repro.graph.ports import ClassSpec
        from repro.graph.visitor import flow_reachable_connections
        from repro.lang.build import parse_graph

        specs = {
            "ARPQuerier": ClassSpec("ARPQuerier", flow_code="xy/x"),
            "Counter": ClassSpec("Counter"),
            "Discard": ClassSpec("Discard", port_counts="1/0"),
        }
        graph = parse_graph(
            """
            arpq :: ARPQuerier; c :: Counter; d :: Discard;
            c -> [1] arpq; arpq -> d;
            """
        )
        # Packets entering ARPQuerier input 1 never reach output 0.
        conns = flow_reachable_connections(graph, specs, "c")
        touched = {conn.to_element for conn in conns}
        assert "arpq" in touched
        assert "d" not in touched
