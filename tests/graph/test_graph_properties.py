"""Hypothesis property tests on the RouterGraph and its invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.router import RouterGraph
from repro.graph.visitor import backward_reachable, forward_reachable, topological_order


@st.composite
def graphs(draw):
    graph = RouterGraph()
    count = draw(st.integers(min_value=1, max_value=10))
    names = ["n%d" % i for i in range(count)]
    for name in names:
        graph.add_element(name, draw(st.sampled_from(["A", "B", "C"])))
    edge_count = draw(st.integers(min_value=0, max_value=count * 2))
    for _ in range(edge_count):
        graph.add_connection(
            draw(st.sampled_from(names)),
            draw(st.integers(min_value=0, max_value=1)),
            draw(st.sampled_from(names)),
            draw(st.integers(min_value=0, max_value=1)),
        )
    return graph


class TestGraphInvariants:
    @settings(max_examples=60)
    @given(graphs())
    def test_copy_is_equal_but_independent(self, graph):
        dup = graph.copy()
        assert set(dup.elements) == set(graph.elements)
        assert dup.connections == graph.connections
        if dup.elements:
            victim = next(iter(dup.elements))
            dup.remove_element(victim)
            assert victim in graph.elements

    @settings(max_examples=60)
    @given(graphs())
    def test_remove_element_leaves_no_dangling_connections(self, graph):
        for name in list(graph.elements):
            graph.remove_element(name)
            graph.check_integrity()
        assert graph.connections == []

    @settings(max_examples=60)
    @given(graphs())
    def test_rename_preserves_structure(self, graph):
        original = len(graph.connections)
        for index, name in enumerate(list(graph.elements)):
            graph.rename_element(name, "renamed%d" % index)
        graph.check_integrity()
        assert len(graph.connections) == original

    @settings(max_examples=60)
    @given(graphs())
    def test_topological_order_covers_every_element(self, graph):
        order = topological_order(graph)
        assert sorted(order) == sorted(graph.elements)

    @settings(max_examples=60)
    @given(graphs())
    def test_topological_order_respects_edges_when_acyclic(self, graph):
        # Cycle breaking is best-effort, so the edge-direction guarantee
        # only holds for fully acyclic graphs.
        for name in graph.elements:
            successors = [c.to_element for c in graph.connections_from(name)]
            if name in forward_reachable(graph, successors):
                return  # the graph has a cycle; property does not apply
        order = topological_order(graph)
        position = {name: i for i, name in enumerate(order)}
        for conn in graph.connections:
            assert position[conn.from_element] < position[conn.to_element]

    @settings(max_examples=60)
    @given(graphs())
    def test_forward_backward_reachability_duality(self, graph):
        for name in graph.elements:
            forwards = forward_reachable(graph, [name])
            for other in forwards:
                assert name in backward_reachable(graph, [other])

    @settings(max_examples=60)
    @given(graphs())
    def test_port_counts_match_connections(self, graph):
        for name in graph.elements:
            n_in = graph.input_count(name)
            n_out = graph.output_count(name)
            for conn in graph.connections_to(name):
                assert conn.to_port < n_in
            for conn in graph.connections_from(name):
                assert conn.from_port < n_out


class TestAnonymousNaming:
    @settings(max_examples=30)
    @given(st.lists(st.sampled_from(["Counter", "Queue", "Tee"]), min_size=1, max_size=20))
    def test_generated_names_never_collide(self, classes):
        graph = RouterGraph()
        names = [graph.add_element(None, class_name).name for class_name in classes]
        assert len(set(names)) == len(names)
