"""Unit tests for processing codes and push/pull resolution."""

import pytest

from repro.graph.ports import (
    ClassSpec,
    PortCountSpec,
    ProcessingCode,
    ProcessingError,
    resolve_processing,
)
from repro.lang.build import parse_graph


class TestProcessingCode:
    def test_basic_split(self):
        code = ProcessingCode("h/l")
        assert code.input_code(0) == "h"
        assert code.output_code(0) == "l"

    def test_last_character_repeats(self):
        code = ProcessingCode("a/ah")
        assert code.output_code(0) == "a"
        assert code.output_code(1) == "h"
        assert code.output_code(7) == "h"

    def test_bare_code_applies_both_sides(self):
        code = ProcessingCode("a")
        assert code.input_code(0) == "a"
        assert code.output_code(0) == "a"

    @pytest.mark.parametrize("bad", ["", "/", "x/h", "h/", "h/q"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ProcessingError):
            ProcessingCode(bad)


class TestPortCountSpec:
    def test_exact(self):
        spec = PortCountSpec("1/2")
        assert spec.inputs_ok(1) and not spec.inputs_ok(2)
        assert spec.outputs_ok(2) and not spec.outputs_ok(1)

    def test_range(self):
        spec = PortCountSpec("1/1-2")
        assert spec.outputs_ok(1) and spec.outputs_ok(2) and not spec.outputs_ok(3)

    def test_unbounded(self):
        spec = PortCountSpec("-/1")
        assert spec.inputs_ok(0) and spec.inputs_ok(100)

    def test_open_upper(self):
        spec = PortCountSpec("1-/1")
        assert not spec.inputs_ok(0)
        assert spec.inputs_ok(5)


SPECS = {
    "Source": ClassSpec("Source", processing="h/h", port_counts="0/1"),
    "Counter": ClassSpec("Counter", processing="a/a"),
    "Queue": ClassSpec("Queue", processing="h/l"),
    "Sink": ClassSpec("Sink", processing="l/l", port_counts="1/0"),
    "PushSink": ClassSpec("PushSink", processing="h/h", port_counts="1/0"),
}


class TestResolution:
    def test_push_propagates_through_agnostic(self):
        graph = parse_graph("s :: Source; c :: Counter; k :: PushSink; s -> c -> k;")
        resolved = resolve_processing(graph, SPECS)
        assert resolved["c"] == ("h", "h")

    def test_pull_propagates_through_agnostic(self):
        graph = parse_graph("q :: Queue; c :: Counter; k :: Sink; q -> c -> k;")
        resolved = resolve_processing(graph, SPECS)
        assert resolved["c"] == ("l", "l")

    def test_queue_boundary(self):
        graph = parse_graph("s :: Source; q :: Queue; k :: Sink; s -> q -> k;")
        resolved = resolve_processing(graph, SPECS)
        assert resolved["q"] == ("h", "l")

    def test_push_into_pull_conflict(self):
        graph = parse_graph("s :: Source; k :: Sink; s -> k;")
        with pytest.raises(ProcessingError):
            resolve_processing(graph, SPECS)

    def test_agnostic_cannot_bind_both_ways(self):
        # Counter would need a push input (from Source) and a pull
        # output (to Sink) — agnostic elements bind all-or-nothing.
        graph = parse_graph("s :: Source; c :: Counter; k :: Sink; s -> c -> k;")
        with pytest.raises(ProcessingError):
            resolve_processing(graph, SPECS)

    def test_unconstrained_agnostic_defaults_to_push(self):
        graph = parse_graph("a :: Counter; b :: Counter; a -> b;")
        resolved = resolve_processing(graph, SPECS)
        assert resolved["a"] == ("", "h")  # no input connections
        assert resolved["b"] == ("h", "")

    def test_unknown_class_does_not_constrain(self):
        graph = parse_graph("s :: Source; m :: Mystery; k :: PushSink; s -> m -> k;")
        resolved = resolve_processing(graph, SPECS)
        assert resolved["s"] == ("", "h")
