"""Unit tests for the RouterGraph IR and its manipulations."""

import pytest

from repro.graph.router import Conn, RouterGraph
from repro.lang.build import parse_graph
from repro.lang.errors import ClickSemanticError


def simple_graph():
    graph = RouterGraph()
    graph.add_element("a", "Counter")
    graph.add_element("b", "Queue", "64")
    graph.add_element("c", "Discard")
    graph.add_connection("a", 0, "b", 0)
    graph.add_connection("b", 0, "c", 0)
    return graph


class TestConstruction:
    def test_add_and_query(self):
        graph = simple_graph()
        assert graph.elements["b"].config == "64"
        assert graph.input_count("b") == 1
        assert graph.output_count("b") == 1
        assert graph.downstream_elements("a") == ["b"]
        assert graph.upstream_elements("c") == ["b"]

    def test_anonymous_names_are_click_style(self):
        graph = RouterGraph()
        first = graph.add_element(None, "Discard")
        second = graph.add_element(None, "Discard")
        assert first.name == "Discard@1"
        assert second.name == "Discard@2"

    def test_duplicate_declaration_rejected(self):
        graph = simple_graph()
        with pytest.raises(ClickSemanticError):
            graph.add_element("a", "Tee")

    def test_connection_to_unknown_element_rejected(self):
        graph = simple_graph()
        with pytest.raises(ClickSemanticError):
            graph.add_connection("a", 0, "nosuch", 0)

    def test_duplicate_connection_ignored(self):
        graph = simple_graph()
        graph.add_connection("a", 0, "b", 0)
        assert len(graph.connections_from("a")) == 1

    def test_port_counts_from_connections(self):
        graph = RouterGraph()
        graph.add_element("c", "Classifier", "12/0806, 12/0800, -")
        graph.add_element("d0", "Discard")
        graph.add_element("d2", "Discard")
        graph.add_connection("c", 0, "d0", 0)
        graph.add_connection("c", 2, "d2", 0)
        assert graph.output_count("c") == 3  # port 1 unconnected but counted


class TestMutation:
    def test_remove_element_removes_connections(self):
        graph = simple_graph()
        graph.remove_element("b")
        assert "b" not in graph
        assert graph.connections == []

    def test_rename_element_updates_connections(self):
        graph = simple_graph()
        graph.rename_element("b", "queue0")
        assert "queue0" in graph
        assert Conn("a", 0, "queue0", 0) in graph.connections
        assert Conn("queue0", 0, "c", 0) in graph.connections

    def test_rename_collision_rejected(self):
        graph = simple_graph()
        with pytest.raises(ClickSemanticError):
            graph.rename_element("b", "a")

    def test_set_class(self):
        graph = simple_graph()
        graph.set_class("b", "FastQueue@@b", None)
        assert graph.elements["b"].class_name == "FastQueue@@b"
        assert graph.elements["b"].config is None

    def test_splice_out(self):
        graph = simple_graph()
        graph.splice_out("b")
        assert graph.connections == [Conn("a", 0, "c", 0)]

    def test_splice_out_multiport_rejected(self):
        graph = parse_graph(
            "t :: Tee(2); a :: Counter; d1 :: Discard; d2 :: Discard;"
            "a -> t; t [0] -> d1; t [1] -> d2;"
        )
        with pytest.raises(ClickSemanticError):
            graph.splice_out("t")

    def test_copy_is_deep_for_elements(self):
        graph = simple_graph()
        dup = graph.copy()
        dup.elements["a"].class_name = "Changed"
        dup.add_element("extra", "Tee")
        assert graph.elements["a"].class_name == "Counter"
        assert "extra" not in graph


class TestReplaceSubgraph:
    def test_replace_linear_chain_with_single_element(self):
        """The click-xform primitive: swap {b} for a combo element."""
        graph = simple_graph()
        replacement = RouterGraph()
        replacement.add_element("combo", "FastQueue", "64")
        boundary = {
            ("in", "b", 0): ("combo", 0),
            ("out", "b", 0): ("combo", 0),
        }
        name_map = graph.replace_subgraph(["b"], replacement, boundary)
        combo = name_map["combo"]
        assert graph.elements[combo].class_name == "FastQueue"
        assert Conn("a", 0, combo, 0) in graph.connections
        assert Conn(combo, 0, "c", 0) in graph.connections

    def test_replace_uncovered_boundary_rejected(self):
        graph = simple_graph()
        replacement = RouterGraph()
        replacement.add_element("combo", "FastQueue")
        with pytest.raises(ClickSemanticError):
            graph.replace_subgraph(["b"], replacement, {("in", "b", 0): ("combo", 0)})

    def test_replacement_names_uniquified(self):
        graph = simple_graph()
        replacement = RouterGraph()
        replacement.add_element("a", "FastQueue")  # collides with host "a"
        boundary = {("in", "b", 0): ("a", 0), ("out", "b", 0): ("a", 0)}
        name_map = graph.replace_subgraph(["b"], replacement, boundary)
        assert name_map["a"] != "a"
        assert name_map["a"] in graph
