"""Unit tests for Ullman subgraph isomorphism."""

from repro.graph.subgraph import SubgraphMatcher, find_subgraph
from repro.lang.build import parse_graph


def class_match(pattern_decl, host_decl):
    return pattern_decl.class_name == host_decl.class_name


class TestBasicMatching:
    def test_linear_chain_found(self):
        host = parse_graph(
            "a :: Paint(1); b :: Strip(14); c :: CheckIPHeader; d :: Discard;"
            "a -> b -> c -> d;"
        )
        pattern = parse_graph("p :: Paint(1); s :: Strip(14); p -> s;")
        mapping = find_subgraph(pattern, host, class_match)
        assert mapping == {"p": "a", "s": "b"}

    def test_no_match_when_class_differs(self):
        host = parse_graph("a :: Paint(1); b :: Discard; a -> b;")
        pattern = parse_graph("p :: Paint(1); s :: Strip(14); p -> s;")
        assert find_subgraph(pattern, host, class_match) is None

    def test_no_match_when_connection_missing(self):
        host = parse_graph("a :: Paint(1); b :: Strip(14); a -> Discard; b -> Discard;")
        pattern = parse_graph("p :: Paint(1); s :: Strip(14); p -> s;")
        assert find_subgraph(pattern, host, class_match) is None

    def test_ports_must_match(self):
        host = parse_graph(
            "c :: Classifier(a, b); d :: Discard; e :: Discard; c [1] -> d; c [0] -> e;"
        )
        pattern = parse_graph("pc :: Classifier(a, b); pd :: Discard; pc [1] -> pd;")
        mapping = find_subgraph(pattern, host, class_match)
        assert mapping == {"pc": "c", "pd": "d"}

    def test_all_matches_enumerated(self):
        host = parse_graph(
            "a1 :: Counter; q1 :: Queue; a2 :: Counter; q2 :: Queue;"
            "a1 -> q1 -> Discard; a2 -> q2 -> Discard;"
        )
        pattern = parse_graph("c :: Counter; q :: Queue; c -> q;")
        matcher = SubgraphMatcher(pattern, host, class_match)
        matches = list(matcher.matches())
        assert {frozenset(m.items()) for m in matches} == {
            frozenset({("c", "a1"), ("q", "q1")}),
            frozenset({("c", "a2"), ("q", "q2")}),
        }

    def test_injective_mapping(self):
        # Pattern with two Counters cannot map both onto one host Counter.
        host = parse_graph("a :: Counter; a -> a;")  # self loop
        pattern = parse_graph("x :: Counter; y :: Counter; x -> y;")
        assert find_subgraph(pattern, host, class_match) is None

    def test_self_loop_pattern(self):
        host = parse_graph("a :: Counter; a -> a;")
        pattern = parse_graph("x :: Counter; x -> x;")
        assert find_subgraph(pattern, host, class_match) == {"x": "a"}

    def test_exclusion_list(self):
        host = parse_graph("a :: Paint(1); b :: Strip(14); a -> b;")
        pattern = parse_graph(
            "inp :: Dummy; p :: Paint(1); s :: Strip(14); inp -> p -> s;"
        )
        matcher = SubgraphMatcher(pattern, host, class_match, exclude=["inp"])
        assert matcher.first_match() == {"p": "a", "s": "b"}


class TestBranchingPatterns:
    def test_diamond(self):
        host = parse_graph(
            """
            src :: Tee(2); l :: Counter; r :: Counter; join :: Merge;
            src [0] -> l -> [0] join; src [1] -> r -> [1] join;
            """
        )
        pattern = parse_graph(
            """
            t :: Tee(2); x :: Counter; y :: Counter; m :: Merge;
            t [0] -> x -> [0] m; t [1] -> y -> [1] m;
            """
        )
        mapping = find_subgraph(pattern, host, class_match)
        assert mapping is not None
        assert mapping["t"] == "src"
        assert mapping["m"] == "join"
        assert {mapping["x"], mapping["y"]} == {"l", "r"}

    def test_refinement_prunes_impossible(self):
        # A long chain pattern can't match a shorter host chain.
        host = parse_graph("a :: C; b :: C; a -> b;")
        pattern = parse_graph("x :: C; y :: C; z :: C; x -> y -> z;")
        assert find_subgraph(pattern, host, class_match) is None
