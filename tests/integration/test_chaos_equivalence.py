"""Chaos equivalence: under any seeded fault plan the supervised
router must neither crash nor diverge on the wire in any execution
mode, and a mid-trace transactional hot-swap must be observably
invisible — even while faults are firing."""

import pytest

from repro.sim.faults import FaultPlan
from repro.verify.chaos import compare_chaos, element_candidates, seeded_plan
from repro.verify.genconfig import stock_cases
from repro.verify.oracle import MODES, device_names, run_case


def stock(name, events=64):
    cases = {case["name"]: case for case in stock_cases(events_count=events)}
    return cases[name]


def with_hotswap(case, name):
    """The same case with a transactional hot-swap spliced mid-trace."""
    events = list(case["events"])
    events.insert(len(events) // 2, ["hotswap"])
    return dict(case, events=events, name=name)


class TestSeededChaos:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    @pytest.mark.parametrize("config", ["iprouter-mtu1500", "firewall"])
    def test_stock_cases_resilient(self, config, seed):
        case = stock(config)
        plan = seeded_plan(case, seed)
        result = compare_chaos(case, plan)
        assert result["status"] == "ok", result["failures"]
        # Every mode ran supervised and produced a report.
        assert set(result["reports"]) == set(MODES)
        for report in result["reports"].values():
            assert report["faults"] is not None

    def test_faults_actually_fired(self):
        """The harness is not vacuous: an aggressive plan records real
        injections and real boundary catches, and still holds the
        contract."""
        case = stock("iprouter-mtu1500")
        plan = FaultPlan(
            faults=[
                {"kind": "device_flap", "device": "eth0", "at": 1, "ticks": 2},
                {
                    "kind": "corrupt_frame",
                    "device": "eth0",
                    "after": 2,
                    "count": 3,
                    "offset": 14,
                    "xor": 0x5A,
                },
                {"kind": "element_error", "element": "CheckIPHeader@6", "after": 2, "count": 3},
                {"kind": "cache_invalidate", "at": 2},
                {"kind": "cache_corrupt", "at": 3},
            ]
        )
        result = compare_chaos(case, plan)
        assert result["status"] == "ok", result["failures"]
        for mode, report in result["reports"].items():
            faults = report["faults"]
            assert faults["elements"]["CheckIPHeader@6"]["errors_fired"] >= 1, mode
            assert faults["devices"]["eth0"]["down_polls"] >= 1, mode
        # Compiled modes demoted at least one chain over the element
        # faults; the reference mode contained them at its task ports.
        assert result["reports"]["fast"]["totals"]["chain_errors"] >= 1
        assert result["reports"]["reference"]["totals"]["chain_errors"] >= 1

    def test_element_fault_names_come_from_flattened_graph(self):
        case = stock("iprouter-mtu1500")
        candidates = element_candidates(case["config"])
        assert candidates
        assert not any(name in device_names(case["config"]) for name in candidates)
        plan = seeded_plan(case, 7)
        assert set(plan.element_names()) <= set(candidates)


class TestSwapUnderLoad:
    @pytest.mark.parametrize("mode", list(MODES))
    def test_hotswap_mid_trace_is_invisible(self, mode):
        """Transactional hot-swap to the same configuration mid-trace:
        byte-identical to never swapping, in every mode (the repro.verify
        oracle is the equivalence judge)."""
        case = stock("iprouter-mtu1500")
        baseline = run_case(case, mode)
        assert baseline[0] == "ok", baseline
        swapped = run_case(with_hotswap(case, "iprouter-swap"), mode)
        assert swapped[0] == "ok", swapped
        assert swapped[1]["transmitted"] == baseline[1]["transmitted"]

    def test_hotswap_under_device_faults_resilient(self):
        """Swap while devices flap and frames corrupt: still crash-free
        and byte-identical across the matrix.  (Element faults are
        carried across the swap by the injector; device faults live on
        the shared wrapped devices.)"""
        case = stock("firewall")
        swap_case = with_hotswap(case, "firewall-swap")
        plan = FaultPlan(
            faults=[
                {
                    "kind": "device_flap",
                    "device": device_names(case["config"])[0],
                    "at": 2,
                    "ticks": 2,
                },
                {
                    "kind": "corrupt_frame",
                    "device": device_names(case["config"])[0],
                    "after": 3,
                    "count": 2,
                },
                {"kind": "cache_invalidate", "at": 4},
            ]
        )
        result = compare_chaos(swap_case, plan)
        assert result["status"] == "ok", result["failures"]

    def test_element_faults_survive_swap(self):
        """An element-fault window that opens after the swap point still
        fires (injector counters continue across prepare_router) and the
        matrix still agrees."""
        case = stock("iprouter-mtu1500")
        swap_case = with_hotswap(case, "iprouter-swap-late-fault")
        plan = FaultPlan(
            faults=[{"kind": "element_error", "element": "CheckIPHeader@6", "after": 20, "count": 2}]
        )
        result = compare_chaos(swap_case, plan)
        assert result["status"] == "ok", result["failures"]
        fired = [
            report["faults"]["elements"]["CheckIPHeader@6"]["errors_fired"]
            for report in result["reports"].values()
        ]
        assert all(count == fired[0] for count in fired)


class TestHarness:
    def test_compare_chaos_detects_crash(self):
        """A deliberately unsupervisable case (exception outside any
        boundary, unsupervised path) registers as a crash, proving the
        harness would catch a real escape."""
        case = {
            "name": "crash-probe",
            "config": stock("firewall")["config"],
            "events": [["explode"]],
            "optimize": False,
        }
        plan = FaultPlan(faults=[{"kind": "cache_invalidate", "at": 0}])
        result = compare_chaos(case, plan, modes=["fast"])
        assert result["status"] == "crash"
        assert all(f["kind"] == "crash" for f in result["failures"])

    def test_cli_smoke(self, tmp_path, capsys):
        from repro.verify.chaos import main

        plan_path = tmp_path / "plan.json"
        report_path = tmp_path / "report.json"
        status = main(
            [
                "--seed",
                "7",
                "--config",
                "firewall",
                "--events",
                "48",
                "--plan-out",
                str(plan_path),
                "--report",
                str(report_path),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "resilient" in out
        # The emitted plan replays to the same verdict.
        status = main(
            ["--config", "firewall", "--events", "48", "--plan", str(plan_path)]
        )
        assert status == 0
        import json

        report = json.loads(report_path.read_text())
        assert report["summary"]["ok"] == 1
        assert report["cases"][0]["reports"]["adaptive"]["totals"]["chains"] > 0
