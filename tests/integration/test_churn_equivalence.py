"""Property test for control-plane churn: a random ``GraphDelta``
installed incrementally (``ControlPlane.apply`` — in-place patch or
delta-scoped swap) must be observably identical to installing it as a
full transactional hot-swap, in every execution mode, supervised or
not, judged by the click-fuzz oracle.

Two layers of strictness:

- within one installation path, the whole mode matrix must agree on
  transmitted bytes *and* every element read handler (the oracle's
  standard contract);
- across the two installation paths, the transmitted bytes must be
  identical.  (Handler sets legitimately differ across paths: a full
  swap resets counters on elements without ``take_state`` handlers,
  while an in-place patch preserves every live counter.)
"""

import random

import pytest

from repro.core.toolchain import load_config, save_config
from repro.lang.lexer import split_config_args
from repro.verify.genconfig import stock_cases
from repro.verify.oracle import MODES, first_transmit_difference, run_case

SEEDS = range(5)


def stock_iprouter(events=48):
    cases = {case["name"]: case for case in stock_cases(events_count=events)}
    return cases["iprouter-mtu1500"]


def random_update_text(config_text, rng):
    """A randomly mutated configuration: pure-data mutations (route
    shuffles/additions, classifier rule rotation) and, half the time, a
    structural one (a Counter spliced onto a random edge).  Returns the
    new text and whether the delta is structural."""
    graph = load_config(config_text, "<churn>")
    structural = rng.random() < 0.5

    # Pure-data: perturb the route table (order and an extra route to an
    # already-used output port).
    rt = graph.elements.get("rt")
    if rt is not None:
        routes = split_config_args(rt.config)
        ports = sorted({route.split()[-1] for route in routes})
        rng.shuffle(routes)
        if rng.random() < 0.7:
            routes.append(
                "203.0.%d.0/24 %s" % (rng.randrange(1, 250), rng.choice(ports))
            )
        rt.config = ", ".join(routes)

    # Pure-data: rotate a classifier's rules (port meanings change —
    # the two installation paths must still agree exactly).
    if rng.random() < 0.4:
        cls = graph.elements.get("c0")
        if cls is not None:
            rules = split_config_args(cls.config)
            rotation = rng.randrange(len(rules))
            cls.config = ", ".join(rules[rotation:] + rules[:rotation])

    if structural:
        conns = [c for c in graph.connections]
        conn = conns[rng.randrange(len(conns))]
        name = "churn%d" % rng.randrange(1 << 16)
        graph.remove_connection(conn)
        graph.add_element(name, "Counter", None)
        graph.add_connection(conn.from_element, conn.from_port, name, 0)
        graph.add_connection(name, 0, conn.to_element, conn.to_port)

    return save_config(graph), structural


def with_event(case, event, name):
    events = list(case["events"])
    events.insert(len(events) // 2, event)
    return dict(case, events=events, name=name)


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_update_matches_full_hotswap(seed):
    rng = random.Random(seed)
    case = stock_iprouter()
    update_text, structural = random_update_text(case["config"], rng)

    observations = {}
    for path, event in (
        ("update", ["update", update_text]),
        ("hotswap", ["hotswap", update_text]),
    ):
        runs = {}
        for mode in MODES:
            for supervised in (False, True):
                label = "%s%s" % (mode, "+supervised" if supervised else "")
                result = run_case(
                    with_event(case, event, "churn-%s-%d" % (path, seed)),
                    mode,
                    supervised=supervised,
                )
                assert result[0] == "ok", "%s/%s failed: %s" % (path, label, result)
                runs[label] = result[1]
        # Within one installation path the full matrix must agree on
        # bytes and counters, like any oracle case.
        reference = runs["reference"]
        for label, observed in runs.items():
            diff = first_transmit_difference(
                reference["transmitted"], observed["transmitted"]
            )
            assert diff is None, "%s/%s transmitted: %s" % (path, label, diff)
            assert observed["counters"] == reference["counters"], (
                "%s/%s counters diverged" % (path, label)
            )
        observations[path] = reference

    # Across the two installation paths: byte-identical wire output.
    diff = first_transmit_difference(
        observations["update"]["transmitted"], observations["hotswap"]["transmitted"]
    )
    assert diff is None, "update vs hotswap (structural=%s): %s" % (structural, diff)
    # Both paths actually forwarded traffic — the property is not vacuous.
    assert any(observations["update"]["transmitted"].values())
