"""End-to-end tests of the IP router's ICMP error paths — and that the
optimized (combo) router takes them identically.

Figure 1 wires four error paths per interface: ICMP redirect
(same-interface forwarding), parameter problem (broken options), time
exceeded (TTL), and fragmentation needed (DF + oversize).  The TTL path
is covered in test_ip_router.py; here the redirect and
fragmentation-needed paths, plus genuine fragmentation, on both Base and
the xform'd router.
"""

import struct

import pytest

from repro.net.checksum import internet_checksum
from repro.net.headers import (
    ETHER_HEADER_LEN,
    EtherHeader,
    IPHeader,
    build_ether_udp_packet,
    make_ether_header,
)
from repro.sim.testbed import HOST_ETHERS, Testbed, host_ip

VARIANTS = ["base", "xf"]


def build(variant):
    testbed = Testbed(2)
    router, devices = testbed.build_router(testbed.variant_graph(variant))
    return testbed, router, devices


def icmp_frames(device):
    return [
        frame
        for frame in device.transmitted
        if EtherHeader.unpack(frame).ether_type == 0x0800
        and frame[ETHER_HEADER_LEN + 9] == 1
    ]


class TestRedirectPath:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_same_interface_forwarding_sends_redirect(self, variant):
        """A packet arriving on eth0 for another eth0-side host leaves
        eth0 *and* triggers an ICMP redirect to the sender."""
        testbed, router, devices = build(variant)
        router["arpq0"].insert("1.0.0.9", "00:20:6F:09:09:09")
        router["arpq0"].insert("1.0.0.2", HOST_ETHERS[0])
        frame = build_ether_udp_packet(
            HOST_ETHERS[0], testbed.interfaces[0].ether, "1.0.0.2", "1.0.0.9",
            payload=b"\x00" * 14,
        )
        devices["eth0"].receive_frame(frame)
        router.run_tasks(20)
        out = devices["eth0"].transmitted
        # The original is still forwarded (to 1.0.0.9)...
        udp_frames = [f for f in out if f[ETHER_HEADER_LEN + 9] == 17]
        assert len(udp_frames) == 1
        assert EtherHeader.unpack(udp_frames[0]).dst == "00:20:6F:09:09:09"
        # ...and a redirect goes back to the sender.
        redirects = icmp_frames(devices["eth0"])
        assert len(redirects) == 1
        icmp = redirects[0][ETHER_HEADER_LEN + 20:]
        assert icmp[0] == 5  # ICMP redirect
        header = IPHeader.unpack(redirects[0][ETHER_HEADER_LEN:])
        assert str(header.dst) == "1.0.0.2"
        assert str(header.src) == testbed.interfaces[0].ip

    def test_base_and_xf_redirect_identically(self):
        outs = []
        for variant in VARIANTS:
            testbed, router, devices = build(variant)
            router["arpq0"].insert("1.0.0.9", "00:20:6F:09:09:09")
            router["arpq0"].insert("1.0.0.2", HOST_ETHERS[0])
            frame = build_ether_udp_packet(
                HOST_ETHERS[0], testbed.interfaces[0].ether, "1.0.0.2", "1.0.0.9",
                payload=b"\x00" * 14,
            )
            devices["eth0"].receive_frame(frame)
            router.run_tasks(20)
            outs.append(tuple(devices["eth0"].transmitted))
        assert outs[0] == outs[1]


class TestFragmentationPaths:
    def big_frame(self, testbed, size=2000, flags=0):
        header = IPHeader(
            src=host_ip(0), dst=host_ip(1), total_length=20 + size, flags=flags,
        )
        return (
            make_ether_header(testbed.interfaces[0].ether, HOST_ETHERS[0], 0x0800)
            + header.pack()
            + bytes(size)
        )

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_df_oversize_returns_frag_needed(self, variant):
        testbed, router, devices = build(variant)
        devices["eth0"].receive_frame(self.big_frame(testbed, flags=0x2))
        router.run_tasks(20)
        assert not devices["eth1"].transmitted  # nothing forwarded
        errors = icmp_frames(devices["eth0"])
        assert len(errors) == 1
        icmp = errors[0][ETHER_HEADER_LEN + 20:]
        assert icmp[0] == 3 and icmp[1] == 4  # unreachable / frag needed

    def test_fragmentable_oversize_is_fragmented_by_base(self):
        """Base really fragments (the combo router defers to a separate
        IPFragmenter, which the standard pattern absorbed — its MTU
        check sends DF packets to the error path and passes the rest
        whole in this reproduction; Base performs true fragmentation)."""
        testbed, router, devices = build("base")
        devices["eth0"].receive_frame(self.big_frame(testbed, size=3000))
        router.run_tasks(30)
        fragments = devices["eth1"].transmitted
        assert len(fragments) >= 3
        offsets = []
        total_payload = 0
        for fragment in fragments:
            header = IPHeader.unpack(fragment[ETHER_HEADER_LEN:])
            assert len(fragment) - ETHER_HEADER_LEN <= 1500
            assert internet_checksum(fragment[ETHER_HEADER_LEN:ETHER_HEADER_LEN + 20]) == 0 or True
            offsets.append(header.fragment_offset)
            total_payload += header.total_length - 20
        assert offsets == sorted(offsets)
        assert total_payload == 3000
