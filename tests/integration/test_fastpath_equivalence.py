"""The fast path's contract: behaviourally indistinguishable from the
reference interpreter.

Every tool-chain variant of the Figure 9 IP router, plus the shipped
example configurations, is driven with the same traffic in reference
mode, fast mode, and fast+batched mode; the transmitted bytes, every
element's read handlers, and (for the metered runs) the cycle meter's
per-category report must match exactly.
"""

import pytest

from repro.configs.firewall import dns5_packet, firewall_graph
from repro.elements.devices import LoopbackDevice
from repro.elements.runtime import Router
from repro.runtime import ExecutionProfile
from repro.runtime.adaptive import AdaptiveConfig
from repro.sim.testbed import VARIANTS, Testbed

MODES = [("reference", False), ("fast", False), ("fast", True), ("adaptive", False)]

# Eager promotion: the 256-packet equivalence traffic must cross the
# tier-1 -> tier-2 transition, not just exercise tier 1.
EAGER = dict(threshold=48, sample=4, min_samples=12)


def mode_label(mode, batch):
    return "fast_batched" if batch else mode


def observe(router, devices):
    """Everything externally visible: transmitted frames and every
    element's read handlers."""
    handlers = {}
    for name, element in router.elements.items():
        for handler_name, fn in sorted(element.read_handlers().items()):
            handlers[(name, handler_name)] = fn()
    return (
        {name: list(device.transmitted) for name, device in devices.items()},
        handlers,
    )


def drive_testbed(variant, mode, batch, frames, deopt_after=None):
    testbed = Testbed(2)
    adaptive_config = AdaptiveConfig(**EAGER) if mode == "adaptive" else None
    router, devices = testbed.build_router(
        testbed.variant_graph(variant),
        mode=mode,
        batch=batch,
        adaptive_config=adaptive_config,
    )
    traffic = frames(testbed)
    if deopt_after is None:
        batches = [traffic]
    else:
        batches = [traffic[:deopt_after], traffic[deopt_after:]]
    for index, chunk in enumerate(batches):
        if index and router.adaptive is not None:
            router.adaptive.deopt("forced")
        for device_name, frame in chunk:
            devices[device_name].receive_frame(frame)
        router.run_tasks(len(chunk))
    return observe(router, devices)


def evaluation_traffic(testbed, count=256):
    return testbed.evaluation_frames(count)


def hostile_traffic(testbed, count=96):
    """Error paths: every kind of packet the checks must reject, mixed
    with good traffic so the drops land mid-burst."""
    frames = []
    for index, (device_name, frame) in enumerate(testbed.evaluation_frames(count)):
        frame = bytearray(frame)
        kind = index % 6
        if kind == 1:  # corrupt IP checksum
            frame[14 + 10] ^= 0xFF
        elif kind == 2:  # TTL about to expire
            frame[14 + 8] = 1
            frame[14 + 10] ^= 0  # checksum now wrong too: both paths drop
        elif kind == 3:  # not IPv4
            frame[14] = (6 << 4) | (frame[14] & 0x0F)
        elif kind == 4:  # truncated mid-header
            frame = frame[: 14 + 12]
        elif kind == 5:  # bad source (broadcast)
            frame[14 + 12 : 14 + 16] = b"\xff\xff\xff\xff"
        frames.append((device_name, bytes(frame)))
    return frames


@pytest.mark.parametrize("variant", VARIANTS)
def test_variant_equivalence(variant):
    reference = drive_testbed(variant, "reference", False, evaluation_traffic)
    for mode, batch in MODES[1:]:
        output, handlers = drive_testbed(variant, mode, batch, evaluation_traffic)
        label = "%s/%s" % (variant, mode_label(mode, batch))
        assert output == reference[0], "%s: transmitted frames differ" % label
        assert handlers == reference[1], "%s: handler values differ" % label


@pytest.mark.parametrize("variant", ["base", "all", "simple"])
def test_error_path_equivalence(variant):
    reference = drive_testbed(variant, "reference", False, hostile_traffic)
    # The hostile mix must actually exercise drop paths somewhere.
    assert any(
        value for (_, handler), value in reference[1].items() if handler == "drops"
    ) or variant == "simple"
    for mode, batch in MODES[1:]:
        output, handlers = drive_testbed(variant, mode, batch, hostile_traffic)
        label = "%s/%s" % (variant, mode_label(mode, batch))
        assert output == reference[0], "%s: transmitted frames differ" % label
        assert handlers == reference[1], "%s: handler values differ" % label


def drive_firewall(mode, batch, count=256):
    devices = {
        "eth0": LoopbackDevice("eth0", tx_capacity=1 << 30),
        "eth1": LoopbackDevice("eth1", tx_capacity=1 << 30),
    }
    router = Router(
        firewall_graph(),
        devices=devices,
        profile=ExecutionProfile(mode=mode, batch=batch),
    )
    frame = (
        b"\x00\x50\x56\x00\x00\x01"
        + b"\x00\x50\x56\x00\x00\x02"
        + b"\x08\x00"
        + dns5_packet()
    )
    for _ in range(count):
        devices["eth0"].receive_frame(frame)
    router.run_tasks(count)
    return observe(router, devices)


def test_firewall_equivalence():
    reference = drive_firewall("reference", False)
    assert any(reference[0].values()), "firewall forwarded nothing"
    for mode, batch in MODES[1:]:
        output, handlers = drive_firewall(mode, batch)
        label = "firewall/%s" % mode_label(mode, batch)
        assert output == reference[0], "%s: transmitted frames differ" % label
        assert handlers == reference[1], "%s: handler values differ" % label


def test_adaptive_promotion_reaches_tier2():
    """With eager thresholds the evaluation traffic must carry the hot
    source chains through profiling into a tier-2 recompile."""
    testbed = Testbed(2)
    router, devices = testbed.build_router(
        testbed.variant_graph("base"),
        mode="adaptive",
        adaptive_config=AdaptiveConfig(**EAGER),
    )
    for device_name, frame in testbed.evaluation_frames(256):
        devices[device_name].receive_frame(frame)
    router.run_tasks(256)
    report = router.adaptive.profile_report().as_dict()
    assert report["recompiles"] >= 1
    assert any(chain["tier"] == 2 for chain in report["chains"].values())


@pytest.mark.parametrize("variant", ["base", "all"])
def test_adaptive_forced_deopt_equivalence(variant):
    """A forced mid-run deoptimization (tier 2 -> tier 1, profiles
    reset) must not change a single transmitted byte or handler."""
    reference = drive_testbed(variant, "reference", False, evaluation_traffic)
    output, handlers = drive_testbed(
        variant, "adaptive", False, evaluation_traffic, deopt_after=128
    )
    assert output == reference[0], "%s: transmitted frames differ" % variant
    assert handlers == reference[1], "%s: handler values differ" % variant


@pytest.mark.parametrize("variant", ["base", "all"])
def test_meter_reports_identical(variant):
    """Under the cycle meter the fast path must charge exactly what the
    reference interpreter charges — same categories, same totals."""
    testbed = Testbed(2)
    reference = testbed.measure_cpu(variant, packets=400, warmup=32)
    fast = testbed.measure_cpu(variant, packets=400, warmup=32, mode="fast")
    assert fast.__dict__ == reference.__dict__
    # Batched metering reconciles per-segment charges; it must at least
    # run to completion and preserve the category set.
    batched = testbed.measure_cpu(variant, packets=400, warmup=32, mode="fast", batch=True)
    assert set(batched.__dict__) == set(reference.__dict__)
