"""End-to-end tests of the Figure 1 IP router over loopback devices.

These tests drive the whole stack: configuration text → parser →
elaborator → runtime router → polling scheduler → element semantics.
Every optimizer's output is later validated against the behaviour pinned
down here.
"""

import pytest

from repro.configs.iprouter import default_interfaces, ip_router_graph
from repro.elements import LoopbackDevice, Router
from repro.net.headers import (
    ETHER_HEADER_LEN,
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    ArpHeader,
    EtherHeader,
    IPHeader,
    build_arp_reply,
    build_arp_request,
    build_ether_udp_packet,
)

HOST1_ETHER = "00:20:6F:03:04:05"  # host on network 1 (1.0.0.2)
HOST2_ETHER = "00:20:6F:0A:0B:0C"  # host on network 2 (2.0.0.2)


@pytest.fixture
def setup():
    interfaces = default_interfaces(2)
    devices = {"eth0": LoopbackDevice("eth0", tx_capacity=256),
               "eth1": LoopbackDevice("eth1", tx_capacity=256)}
    router = Router(ip_router_graph(interfaces), devices=devices)
    # Seed the ARP tables so forwarding tests don't need the ARP dance
    # (the ARP dance has its own test below).
    router["arpq0"].insert("1.0.0.2", HOST1_ETHER)
    router["arpq1"].insert("2.0.0.2", HOST2_ETHER)
    return router, devices, interfaces


def frame_to_router(interfaces, dst_ip, src_ip="1.0.0.2", src_ether=HOST1_ETHER, ttl=64):
    """A UDP frame addressed (at layer 2) to interface 0."""
    return build_ether_udp_packet(
        src_ether, interfaces[0].ether, src_ip, dst_ip, payload=b"\x00" * 14, ttl=ttl
    )


def run(router, iterations=50):
    router.run_tasks(iterations)


class TestForwarding:
    def test_forwards_across_interfaces(self, setup):
        router, devices, interfaces = setup
        devices["eth0"].receive_frame(frame_to_router(interfaces, "2.0.0.2"))
        run(router)
        assert len(devices["eth1"].transmitted) == 1
        frame = devices["eth1"].transmitted[0]
        ether = EtherHeader.unpack(frame)
        assert ether.ether_type == ETHERTYPE_IP
        assert ether.dst == HOST2_ETHER
        assert ether.src == interfaces[1].ether
        header = IPHeader.unpack(frame[ETHER_HEADER_LEN:])
        assert str(header.dst) == "2.0.0.2"
        assert header.ttl == 63  # decremented exactly once

    def test_checksum_still_valid_after_forwarding(self, setup):
        from repro.net.checksum import verify_checksum

        router, devices, interfaces = setup
        devices["eth0"].receive_frame(frame_to_router(interfaces, "2.0.0.2"))
        run(router)
        frame = devices["eth1"].transmitted[0]
        assert verify_checksum(frame[ETHER_HEADER_LEN:ETHER_HEADER_LEN + 20])

    def test_sixteen_elements_on_forwarding_path(self, setup):
        """§3: 'Click's fine-grained components ... lead to routers with
        many elements on the forwarding path — sixteen, in the case of
        our standards-compliant IP router.'"""
        from repro.configs.iprouter import FORWARDING_PATH_CLASSES

        router, devices, interfaces = setup
        graph = router.graph
        # Trace the path for a packet entering eth0 and leaving eth1.
        assert len(FORWARDING_PATH_CLASSES) == 16
        class_names = {decl.class_name for decl in graph.elements.values()}
        for needed in FORWARDING_PATH_CLASSES:
            assert needed in class_names, needed

    def test_many_packets_forwarded_in_order(self, setup):
        router, devices, interfaces = setup
        for index in range(20):
            devices["eth0"].receive_frame(
                frame_to_router(interfaces, "2.0.0.2", ttl=40 + index)
            )
        run(router, 100)
        assert len(devices["eth1"].transmitted) == 20
        ttls = [
            IPHeader.unpack(f[ETHER_HEADER_LEN:]).ttl for f in devices["eth1"].transmitted
        ]
        assert ttls == [39 + index for index in range(20)]

    def test_bidirectional(self, setup):
        router, devices, interfaces = setup
        devices["eth0"].receive_frame(frame_to_router(interfaces, "2.0.0.2"))
        devices["eth1"].receive_frame(
            build_ether_udp_packet(
                HOST2_ETHER, interfaces[1].ether, "2.0.0.2", "1.0.0.2", payload=b"\x00" * 14
            )
        )
        run(router)
        assert len(devices["eth1"].transmitted) == 1
        assert len(devices["eth0"].transmitted) == 1


class TestARP:
    def test_responds_to_arp_query(self, setup):
        router, devices, interfaces = setup
        query = build_arp_request(HOST1_ETHER, "1.0.0.2", "1.0.0.1")
        devices["eth0"].receive_frame(query)
        run(router)
        assert len(devices["eth0"].transmitted) == 1
        reply = devices["eth0"].transmitted[0]
        arp = ArpHeader.unpack(reply[ETHER_HEADER_LEN:])
        assert str(arp.sender_ip) == "1.0.0.1"
        assert str(arp.sender_ether) == interfaces[0].ether

    def test_queries_unknown_next_hop_then_forwards(self, setup):
        router, devices, interfaces = setup
        # Forget the seeded entry for a fresh ARP exchange.
        router["arpq1"].table.clear()
        devices["eth0"].receive_frame(frame_to_router(interfaces, "2.0.0.2"))
        run(router)
        # The router should have broadcast an ARP query on eth1.
        queries = [
            f for f in devices["eth1"].transmitted
            if EtherHeader.unpack(f).ether_type == ETHERTYPE_ARP
        ]
        assert len(queries) == 1
        arp = ArpHeader.unpack(queries[0][ETHER_HEADER_LEN:])
        assert str(arp.target_ip) == "2.0.0.2"
        # Host 2 answers; the held packet is then released.
        devices["eth1"].receive_frame(
            build_arp_reply(HOST2_ETHER, "2.0.0.2", interfaces[1].ether, "2.0.0.1")
        )
        run(router)
        ip_frames = [
            f for f in devices["eth1"].transmitted
            if EtherHeader.unpack(f).ether_type == ETHERTYPE_IP
        ]
        assert len(ip_frames) == 1
        assert EtherHeader.unpack(ip_frames[0]).dst == HOST2_ETHER


class TestErrorPaths:
    def test_ttl_expiry_generates_icmp_time_exceeded(self, setup):
        router, devices, interfaces = setup
        devices["eth0"].receive_frame(frame_to_router(interfaces, "2.0.0.2", ttl=1))
        run(router)
        # The original is not forwarded on eth1...
        ip_frames = [
            f for f in devices["eth1"].transmitted
            if EtherHeader.unpack(f).ether_type == ETHERTYPE_IP
        ]
        assert not ip_frames
        # ...but an ICMP time-exceeded goes back to the source on eth0.
        back = [
            f for f in devices["eth0"].transmitted
            if EtherHeader.unpack(f).ether_type == ETHERTYPE_IP
        ]
        assert len(back) == 1
        header = IPHeader.unpack(back[0][ETHER_HEADER_LEN:])
        assert header.protocol == 1
        assert str(header.dst) == "1.0.0.2"
        assert str(header.src) == interfaces[0].ip  # FixIPSrc stamped it
        assert back[0][ETHER_HEADER_LEN + 20] == 11  # time exceeded

    def test_non_ip_non_arp_traffic_discarded(self, setup):
        router, devices, interfaces = setup
        frame = bytes.fromhex("00" * 12) + b"\x86\xdd" + bytes(46)
        devices["eth0"].receive_frame(frame)
        run(router)
        assert not devices["eth0"].transmitted
        assert not devices["eth1"].transmitted

    def test_broadcast_ip_not_forwarded(self, setup):
        router, devices, interfaces = setup
        frame = build_ether_udp_packet(
            HOST1_ETHER, "ff:ff:ff:ff:ff:ff", "1.0.0.2", "2.0.0.2", payload=b"\x00" * 14
        )
        devices["eth0"].receive_frame(frame)
        run(router)
        assert not devices["eth1"].transmitted

    def test_packet_to_router_itself_goes_to_host_path(self, setup):
        router, devices, interfaces = setup
        devices["eth0"].receive_frame(frame_to_router(interfaces, "1.0.0.1"))
        run(router)
        # Host path is a Discard; nothing transmitted anywhere.
        assert not devices["eth0"].transmitted
        assert not devices["eth1"].transmitted

    def test_corrupted_ip_header_dropped(self, setup):
        router, devices, interfaces = setup
        frame = bytearray(frame_to_router(interfaces, "2.0.0.2"))
        frame[ETHER_HEADER_LEN + 10] ^= 0xFF  # break the checksum
        devices["eth0"].receive_frame(bytes(frame))
        run(router)
        assert not devices["eth1"].transmitted
