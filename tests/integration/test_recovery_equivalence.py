"""Self-healing shard plane equivalence: scripted outages (worker
kills, hangs, poison-frame crash loops, mid-commit deaths) must heal
with zero operator intervention, and the healed plane's wire output
must satisfy the degraded contract against a healthy single-plane
reference (no loss, no duplication, strict per-flow order except for
re-homed flows)."""

import os
import time

import multiprocessing

import pytest

from repro.core.toolchain import save_config
from repro.elements.devices import LoopbackDevice
from repro.elements.runtime import build_router
from repro.runtime import ExecutionProfile, RecoveryConfig, RecoveryError
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.testbed import HOST_ETHERS, Testbed, host_ip
from repro.verify.chaos import _affected_predicate, compare_recovery
from repro.verify.genconfig import stock_cases
from repro.verify.oracle import degraded_transmit_difference


def stock(name, events=48):
    cases = {case["name"]: case for case in stock_cases(events_count=events)}
    return cases[name]


def recovery_testbed(workers=4, backend="thread", policy="buffer", **knobs):
    """A live self-healing iprouter plane over the deterministic
    testbed, plus its devices and the testbed itself."""
    knobs.setdefault("jitter", 0)
    knobs.setdefault("watchdog_timeout", 0.5)
    knobs.setdefault("heartbeat_timeout", 2.0)
    knobs.setdefault("prepare_timeout", 2.0)
    testbed = Testbed(2)
    graph = testbed.variant_graph("base")
    devices = {
        interface.device: LoopbackDevice(interface.device, tx_capacity=1 << 30)
        for interface in testbed.interfaces
    }
    profile = (
        ExecutionProfile.fast(batch=True)
        .with_workers(workers, backend)
        .with_recovery(config=RecoveryConfig(policy=policy, **knobs))
    )
    router = build_router(graph, devices=devices, profile=profile)
    for index in range(2):
        router.find("arpq%d" % index).insert(host_ip(index), HOST_ETHERS[index])
    return testbed, router, devices


def drive(testbed, router, devices, packets, offset=0):
    frames = testbed.evaluation_frames(packets + offset)[offset:]
    for name, frame in frames:
        devices[name].receive_frame(frame)
    router.run_tasks(packets // 8 + 16)


def transmitted_hex(devices):
    return {
        name: [bytes(f).hex() for f in device.transmitted]
        for name, device in sorted(devices.items())
    }


def reference_transmit(frames, skip=(), iterations=None):
    """What a healthy single-plane router transmits for ``frames`` (the
    degraded contract's left-hand side).  ``skip`` drops frames (by
    bytes) that the degraded plane legitimately never forwards — armed
    poison frames quarantine strips."""
    testbed = Testbed(2)
    graph = testbed.variant_graph("base")
    devices = {
        interface.device: LoopbackDevice(interface.device, tx_capacity=1 << 30)
        for interface in testbed.interfaces
    }
    router = build_router(
        graph, devices=devices, profile=ExecutionProfile.fast(batch=True)
    )
    for index in range(2):
        router.find("arpq%d" % index).insert(host_ip(index), HOST_ETHERS[index])
    skip = {bytes(frame) for frame in skip}
    for name, frame in frames:
        if bytes(frame) in skip:
            continue
        devices[name].receive_frame(frame)
    router.run_tasks(iterations if iterations is not None else len(frames) // 8 + 16)
    return transmitted_hex(devices)


class TestScenarioHarness:
    """The click-chaos --recovery scenarios, as the CI smoke job runs
    them: heal on the thread backend with the degraded contract held."""

    @pytest.mark.parametrize("kind", ["crash-storm", "hang", "crash-loop"])
    def test_scenarios_heal_under_resteer(self, kind):
        case = stock("iprouter-mtu1500")
        result = compare_recovery(case, kind, policy="resteer", backend="thread", seed=3)
        assert result["status"] == "ok", result["failures"]

    def test_crash_storm_heals_under_buffer(self):
        case = stock("firewall")
        result = compare_recovery(
            case, "crash-storm", policy="buffer", backend="thread", seed=5
        )
        assert result["status"] == "ok", result["failures"]
        assert result["checks"]["detections"] >= 3
        assert result["checks"]["updates_recommitted"] >= 1

    def test_crash_loop_quarantines(self):
        case = stock("iprouter-mtu1500")
        result = compare_recovery(
            case, "crash-loop", policy="buffer", backend="thread", seed=3
        )
        assert result["status"] == "ok", result["failures"]
        assert result["checks"]["quarantined"] == 1
        [record] = result["report"]["recovery"]["quarantined"]
        assert record["kills"] >= 2 and record["frame_hex"]

    def test_rejects_fail_fast(self):
        with pytest.raises(ValueError, match="non-fatal"):
            compare_recovery(stock("firewall"), "hang", policy="fail-fast")


class TestKillAndHeal:
    def test_kill_is_detected_restarted_and_lossless(self):
        testbed, router, devices = recovery_testbed(policy="buffer")
        try:
            drive(testbed, router, devices, 64)
            router.kill_worker(1)
            drive(testbed, router, devices, 64, offset=64)
            router.run_tasks(8)
            report = router._recovery.report()
            assert report.detections == 1 and report.restarts == 1
            reference = reference_transmit(testbed.evaluation_frames(128))
            diff = degraded_transmit_difference(
                reference, transmitted_hex(devices), affected=None
            )
            assert diff is None, diff
        finally:
            router.close()

    def test_hang_is_caught_by_watchdog(self):
        testbed, router, devices = recovery_testbed(
            policy="buffer", watchdog_timeout=0.25
        )
        try:
            drive(testbed, router, devices, 64)
            router.hang_worker(2, seconds=5.0)
            drive(testbed, router, devices, 64, offset=64)
            router.run_tasks(8)
            report = router._recovery.report()
            assert report.detections == 1 and report.restarts == 1
            reference = reference_transmit(testbed.evaluation_frames(128))
            diff = degraded_transmit_difference(
                reference, transmitted_hex(devices), affected=None
            )
            assert diff is None, diff
        finally:
            router.close()

    def test_worker_faults_require_recovery_policy(self):
        testbed = Testbed(2)
        devices = {
            interface.device: LoopbackDevice(interface.device, tx_capacity=1 << 30)
            for interface in testbed.interfaces
        }
        router = build_router(
            testbed.variant_graph("base"),
            devices=devices,
            profile=ExecutionProfile.fast(batch=True).with_workers(2),
        )
        try:
            with pytest.raises(RecoveryError, match="recovery policy"):
                router.kill_worker(0)
            with pytest.raises(RecoveryError, match="recovery policy"):
                router.hang_worker(0)
        finally:
            router.close()


class TestDegradedResteer:
    def _bench_one_shard(self, policy):
        """Arm a poison frame under a one-attempt restart budget: its
        home shard crash-loops once and is benched, leaving a plane
        that is permanently degraded — the sustained re-steer state."""
        testbed, router, devices = recovery_testbed(
            policy=policy, restart_budget=1, quarantine_limit=5
        )
        frames = testbed.evaluation_frames(128)
        poison_name, poison_frame = frames[0]
        router.arm_poison(poison_frame)
        devices[poison_name].receive_frame(poison_frame)
        router.run_tasks(4)  # the home shard dies on the poison frame
        router.run_tasks(4)  # restart attempt replays, dies, budget -> bench
        report = router._recovery.report()
        assert len(report.benched) == 1, report.as_dict()
        return testbed, router, devices, frames, poison_frame

    @pytest.mark.parametrize("policy", ["resteer", "buffer"])
    def test_benched_shard_resteers_with_contract_held(self, policy):
        testbed, router, devices, frames, poison = self._bench_one_shard(policy)
        try:
            for name, frame in frames[1:]:
                devices[name].receive_frame(frame)
            router.run_tasks(32)
            manager = router._recovery
            assert manager.frames_resteered > 0
            assert manager.affected_flows
            reference = reference_transmit(frames, skip=[poison])
            diff = degraded_transmit_difference(
                reference,
                transmitted_hex(devices),
                affected=_affected_predicate(manager.affected_flows),
            )
            assert diff is None, diff
            # The re-homed flows really are held to the weaker bar:
            # without the predicate the strict check must reject them
            # or the outage never moved anything worth testing.
            report = manager.report()
            assert report.frames_resteered == manager.frames_resteered
        finally:
            router.close()

    def test_fail_fast_policy_raises_while_down(self):
        testbed, router, devices = recovery_testbed(
            policy="fail-fast", restart_budget=2, backoff_base=8, backoff_limit=8
        )
        try:
            frames = testbed.evaluation_frames(128)
            poison_name, poison_frame = frames[0]
            home = router.hasher(poison_frame)
            router.arm_poison(poison_frame)
            devices[poison_name].receive_frame(poison_frame)
            router.run_tasks(4)  # dies; first restart replays and dies again
            follow_up = next(
                (name, frame)
                for name, frame in frames[1:]
                if router.hasher(frame) == home
            )
            devices[follow_up[0]].receive_frame(follow_up[1])
            with pytest.raises(RecoveryError, match="fail-fast"):
                router.run_tasks(4)
        finally:
            router.close()


class TestMidCommitDeath:
    def _updated_text(self, router):
        text = save_config(router.graph)
        old = router.graph.elements["rt"].config
        return text.replace(
            old, "1.0.0.1/32 0, 2.0.0.1/32 0, 2.0.0.0/8 2, 1.0.0.0/8 1"
        )

    def _kill_mid_commit(self, backend):
        testbed, router, devices = recovery_testbed(backend=backend, policy="buffer")
        drive(testbed, router, devices, 64)
        plan = FaultPlan(
            faults=[{"kind": "worker_kill", "at": 1, "phase": "commit", "worker": 0}]
        )
        injector = FaultInjector(plan)
        injector.prepare_router(router)
        report = router.apply_update(self._updated_text(router))
        assert report.kind == "in-place"
        assert injector.worker_kills == 1
        return testbed, router, devices

    def test_thread_commit_death_heals_via_replay(self):
        testbed, router, devices = self._kill_mid_commit("thread")
        try:
            drive(testbed, router, devices, 64, offset=64)
            router.run_tasks(8)
            recovery = router._recovery.report()
            assert recovery.detections == 1
            assert recovery.restarts == 1
            assert router._recovery.down_indices() == []
            total = sum(len(d.transmitted) for d in devices.values())
            assert total == 128
        finally:
            router.close()

    def test_update_against_down_shard_is_recommitted(self):
        """A shard that is down when an update commits gets the update
        journaled anyway (counted as a recommit) while the survivors
        commit live — the update is never lost."""
        testbed, router, devices = recovery_testbed(
            policy="resteer", restart_budget=1, quarantine_limit=5
        )
        try:
            frames = testbed.evaluation_frames(64)
            poison_name, poison_frame = frames[0]
            router.arm_poison(poison_frame)
            devices[poison_name].receive_frame(poison_frame)
            router.run_tasks(4)  # home shard dies on the poison frame
            router.run_tasks(4)  # replay dies too; budget of 1 -> benched
            assert router._recovery.benched_indices()
            report = router.apply_update(self._updated_text(router))
            assert report.kind == "in-place"
            assert router._recovery.report().updates_recommitted >= 1
        finally:
            router.close()

    def test_process_commit_death_rolls_back_and_retries(self):
        testbed, router, devices = self._kill_mid_commit("process")
        try:
            drive(testbed, router, devices, 64, offset=64)
            router.run_tasks(8)
            recovery = router._recovery.report()
            # The force-restart retry inside apply_update and the
            # heartbeat sweep can each notice the same death, so counts
            # are >= 1, not == 1; the contract is healed and lossless.
            assert recovery.detections >= 1
            assert recovery.restarts >= 1
            assert router._recovery.down_indices() == []
            total = sum(len(d.transmitted) for d in devices.values())
            assert total == 128
        finally:
            router.close()


class TestIdempotentReplay:
    """Satellite: journal replay is idempotent — replaying a second
    time (on an already-recovered shard) changes nothing observable."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_double_replay_is_byte_identical(self, backend):
        testbed, router, devices = recovery_testbed(backend=backend, policy="buffer")
        try:
            drive(testbed, router, devices, 96)
            router.crash_worker(1)
            first_wire = transmitted_hex(devices)
            first_counters = router.merged_counters()
            router.crash_worker(1)  # replay again, same journal
            assert transmitted_hex(devices) == first_wire
            assert router.merged_counters() == first_counters
            # The twice-replayed shard still forwards correctly.
            drive(testbed, router, devices, 32, offset=96)
            reference = reference_transmit(testbed.evaluation_frames(128))
            diff = degraded_transmit_difference(
                reference, transmitted_hex(devices), affected=None
            )
            assert diff is None, diff
            assert router.report().replays >= 2
        finally:
            router.close()


class TestProcessHygiene:
    """Satellite: repeated kill/recover cycles leave no zombie worker
    processes and no leaked pipe descriptors."""

    def test_kill_recover_cycles_leave_no_leaks(self):
        # Generous liveness timeouts: on a loaded machine a slow worker
        # respawn can trip the 2 s heartbeat into a spurious (healed,
        # but count-inflating) extra episode.
        testbed, router, devices = recovery_testbed(
            backend="process",
            policy="buffer",
            heartbeat_timeout=30.0,
            prepare_timeout=30.0,
        )
        try:
            drive(testbed, router, devices, 32)
            manager = router._recovery

            def kill_and_heal(worker):
                before = manager.restarts
                router.kill_worker(worker)
                # SIGKILL delivery and heartbeat detection are
                # asynchronous; spin runs (bounded) until the restart
                # actually lands rather than assuming a fixed count.
                for _ in range(64):
                    if manager.restarts > before:
                        break
                    router.run_tasks(1)
                assert manager.restarts > before

            # One warm-up cycle first: the initial kill/recover
            # materializes per-process sentinel and pipe descriptors
            # that then reach steady state — growth past that plateau
            # is a genuine leak.
            kill_and_heal(0)
            fd_baseline = len(os.listdir("/proc/self/fd"))
            for cycle in range(1, 4):
                kill_and_heal(cycle % 4)
            report = manager.report()
            assert report.detections >= 4
            assert report.restarts == report.detections  # every episode healed
            assert manager.down_indices() == []
            assert len(os.listdir("/proc/self/fd")) <= fd_baseline
        finally:
            router.close()
        deadline = time.time() + 10
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []
