"""Robustness: the router must survive arbitrary garbage from the wire.

Click elements "perform only rudimentary input checking" (§3), relying
on explicit protocol dispatch in the configuration — but the
*configuration as a whole* must never crash on hostile bytes: the
classifier fences off non-IP traffic and CheckIPHeader validates the
rest.  Hypothesis feeds random frames through the full IP router (and
its fully optimized twin) and asserts no exceptions and identical
behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elements.devices import PollDevice
from repro.sim.testbed import Testbed


def build(variant):
    testbed = Testbed(2)
    router, devices = testbed.build_router(testbed.variant_graph(variant))
    return testbed, router, devices


def feed(router, devices, frames):
    for index, frame in enumerate(frames):
        devices["eth0" if index % 2 == 0 else "eth1"].receive_frame(frame)
    router.run_tasks(len(frames) // PollDevice.BURST + 8)
    return tuple(tuple(d.transmitted) for d in devices.values())


class TestGarbageTolerance:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=90), min_size=1, max_size=10))
    def test_random_frames_never_crash_base(self, frames):
        _, router, devices = build("base")
        feed(router, devices, frames)  # no exception = pass

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=90), min_size=1, max_size=8))
    def test_optimized_router_handles_garbage_identically(self, frames):
        _, base_router, base_devices = build("base")
        _, opt_router, opt_devices = build("all")
        assert feed(base_router, base_devices, frames) == feed(
            opt_router, opt_devices, frames
        )

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=14, max_size=90))
    def test_ip_looking_garbage_never_crashes(self, payload):
        """Frames that pass the ethertype check but carry broken IP."""
        _, router, devices = build("base")
        frame = payload[:12].ljust(12, b"\x00") + b"\x08\x00" + payload[14:]
        feed(router, devices, [frame])

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=14, max_size=90))
    def test_arp_looking_garbage_never_crashes(self, payload):
        _, router, devices = build("base")
        for op in (b"\x00\x01", b"\x00\x02"):
            frame = (
                payload[:12].ljust(12, b"\x00")
                + b"\x08\x06"
                + payload[14:20].ljust(6, b"\x00")
                + op
                + payload[22:]
            )
            feed(router, devices, [frame])


class TestTrafficGeneratorPipeline:
    def test_classic_click_generator_config(self):
        """The canonical Click traffic generator — InfiniteSource →
        UDPIPEncap → SetUDPChecksum → EtherEncap → ToDevice — produces
        valid frames at the device."""
        from repro.core.driver import run_config
        from repro.net.checksum import verify_checksum
        from repro.net.headers import ETHER_HEADER_LEN, EtherHeader, IPHeader

        config = """
        src :: InfiniteSource("generator payload.", 25, 5);
        src -> UDPIPEncap(10.0.0.1, 5000, 10.0.0.2, 5001)
            -> SetUDPChecksum
            -> EtherEncap(0x0800, 00:20:6F:AA:AA:AA, 00:20:6F:BB:BB:BB)
            -> q :: Queue(64)
            -> ToDevice(eth0);
        """
        router, devices = run_config(config, iterations=20)
        frames = devices["eth0"].transmitted
        assert len(frames) == 25
        for frame in frames:
            ether = EtherHeader.unpack(frame)
            assert ether.ether_type == 0x0800
            ip = IPHeader.unpack(frame[ETHER_HEADER_LEN:])
            assert str(ip.dst) == "10.0.0.2"
            assert verify_checksum(frame[ETHER_HEADER_LEN:ETHER_HEADER_LEN + 20])
            assert frame.endswith(b"generator payload.")

    def test_generator_feeds_router(self):
        """Generator output is valid enough for the IP router to
        forward."""
        from repro.net.headers import ETHER_HEADER_LEN, IPHeader

        testbed, router, devices = build("base")
        from repro.core.driver import run_config

        generator_config = """
        src :: InfiniteSource("x", 10, 2);
        src -> UDPIPEncap(1.0.0.2, 40, 2.0.0.2, 50)
            -> EtherEncap(0x0800, 00:20:6F:00:00:00, %s)
            -> q :: Queue(64) -> ToDevice(gen0);
        """ % testbed.interfaces[0].ether
        _, generator_devices = run_config(generator_config, iterations=20)
        for frame in generator_devices["gen0"].transmitted:
            devices["eth0"].receive_frame(frame)
        router.run_tasks(16)
        forwarded = devices["eth1"].transmitted
        assert len(forwarded) == 10
        assert IPHeader.unpack(forwarded[0][ETHER_HEADER_LEN:]).ttl == 63
