"""Sharded data plane equivalence: the oracle must prove every shard-*
mode observably equivalent to the single-shard reference under the
sharding contract — on healthy traces, under a control-plane update
storm, and under sharded-safe chaos plans with worker crashes."""

import pytest

from repro.sim.faults import FaultError, FaultInjector, FaultPlan
from repro.verify.chaos import compare_chaos, seeded_plan
from repro.verify.genconfig import generate_case, stock_cases
from repro.verify.oracle import (
    MODES,
    SHARD_MODES,
    compare_case,
    mode_profile,
    overflow_drops,
    run_case,
    sharded_transmit_difference,
)


def stock(name, events=64):
    cases = {case["name"]: case for case in stock_cases(events_count=events)}
    return cases[name]


class TestShardModes:
    def test_shard_modes_mirror_modes(self):
        assert list(SHARD_MODES) == ["shard-%s" % m for m in MODES]

    def test_mode_profile_shards(self):
        profile = mode_profile("shard-batch")
        assert profile.workers == 2 and profile.shard_backend == "thread"
        assert profile.mode == "fast" and profile.batch
        supervised = mode_profile("shard-adaptive", supervised=True)
        assert supervised.supervised and supervised.workers == 2


class TestShardedTransmitDifference:
    def test_cross_flow_reorder_allowed(self):
        from tests.runtime.test_flowhash import udp_frame

        a = udp_frame(sport=1000).hex()
        b = udp_frame(sport=2000).hex()
        assert sharded_transmit_difference({"e": [a, b]}, {"e": [b, a]}) is None

    def test_within_flow_reorder_rejected(self):
        from tests.runtime.test_flowhash import udp_frame

        a = udp_frame(sport=1000, ident=1).hex()
        b = udp_frame(sport=1000, ident=2).hex()
        diff = sharded_transmit_difference({"e": [a, b]}, {"e": [b, a]})
        assert diff is not None and "per-flow order" in diff

    def test_multiset_mismatch_rejected(self):
        from tests.runtime.test_flowhash import udp_frame

        a = udp_frame(sport=1000).hex()
        diff = sharded_transmit_difference({"e": [a, a]}, {"e": [a]})
        assert diff is not None and "multiset" in diff


class TestHealthyEquivalence:
    @pytest.mark.parametrize("config", ["iprouter-mtu1500", "iprouter-mtu576", "firewall"])
    def test_stock_cases_agree(self, config):
        result = compare_case(stock(config), modes=list(SHARD_MODES))
        assert result["status"] == "ok", result["divergences"]

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_generated_cases_agree(self, index):
        case = generate_case(20260809, index, events_count=48)
        result = compare_case(case, modes=["shard-fast", "shard-adaptive"])
        assert result["status"] == "ok", result["divergences"]


class TestUpdateStorm:
    def test_update_storm_stays_equivalent(self):
        """A trace that re-installs the configuration as a control-plane
        update between every traffic burst: the transactional cross-shard
        commit path runs repeatedly and must stay invisible."""
        case = stock("iprouter-mtu1500", events=96)
        events = []
        burst = 0
        for event in case["events"]:
            events.append(event)
            if event[0] == "run":
                burst += 1
                if burst % 3 == 0:
                    events.append(["update"])
        storm = dict(case, events=events, name="iprouter-update-storm")
        result = compare_case(storm, modes=list(SHARD_MODES))
        assert result["status"] == "ok", result["divergences"]


class TestLossyOverflow:
    """Regression for the fuzz-found gen3/gen16-pipeline divergence:
    each shard owns a private copy of every bounded queue, so aggregate
    capacity — and which packets overflow — scales with the worker
    count.  Such traces are out of the shard contract: reported as
    skips with a lossy-overflow reason, never as divergences and never
    silently."""

    def lossy_case(self, frames=8):
        from tests.runtime.test_flowhash import udp_frame

        config = (
            "src :: PollDevice(eth0);\n"
            "q :: FrontDropQueue(4);\n"
            "dst :: ToDevice(eth1);\n"
            "src -> q -> dst;\n"
        )
        events = [
            ["frame", "eth0", udp_frame(sport=1000 + i).hex()] for i in range(frames)
        ]
        events.append(["run", 4])
        return {
            "name": "lossy-pipeline",
            "config": config,
            "events": events,
            "optimize": False,
        }

    def test_overflow_is_a_skip_not_a_divergence(self):
        result = compare_case(self.lossy_case(), modes=list(SHARD_MODES))
        assert result["status"] == "ok", result["divergences"]
        assert result["skips"], "overflow must be recorded, not silent"
        for skip in result["skips"]:
            assert skip["mode"] in SHARD_MODES
            assert "lossy-overflow" in skip["reason"]

    def test_single_plane_modes_still_strict(self):
        # Drop behavior is deterministic and mode-invariant on a single
        # plane; only the partitioned plane is out of contract.
        result = compare_case(self.lossy_case(), modes=list(MODES))
        assert result["status"] == "ok", result["divergences"]
        assert result["skips"] == []

    def test_no_overflow_no_skip(self):
        case = self.lossy_case(frames=3)  # under capacity: nothing drops
        result = compare_case(case, modes=list(SHARD_MODES))
        assert result["status"] == "ok", result["divergences"]
        assert result["skips"] == []

    def test_overflow_drops_counts_queue_handlers(self):
        assert overflow_drops({"q.drops": 3, "q2.drops": 1, "c.count": 9}) == 4
        assert overflow_drops({"c.count": 9, "q.drops": "n/a"}) == 0


class TestShardedChaos:
    def test_sharded_plan_survives_worker_crash(self):
        case = stock("iprouter-mtu1500")
        plan = seeded_plan(case, seed=7, sharded=True)
        kinds = {fault["kind"] for fault in plan.faults}
        assert "worker_crash" in kinds
        assert "element_error" not in kinds
        result = compare_chaos(
            case, plan, modes=["reference", "shard-fast", "shard-batch"]
        )
        assert result["status"] == "ok", result["failures"]
        # The sharded modes report through ShardReport, crash included.
        for mode in ("shard-fast", "shard-batch"):
            report = result["reports"][mode]
            assert report["workers"] == 2
            assert report["crashes"] >= 1
            assert report["replays"] >= 1

    def test_element_faults_rejected_on_sharded_plane(self):
        """Count-ordered element faults cannot be applied to a
        partitioned plane; the injector refuses rather than silently
        diverging."""
        case = stock("iprouter-mtu1500")
        plan = seeded_plan(case, seed=7, sharded=False)
        assert any(f["kind"] == "element_error" for f in plan.faults)
        status, payload = run_case(case, "shard-fast", plan=plan, supervised=True)
        assert status == "error"
        assert payload[0] == "FaultError"

    def test_worker_crash_is_noop_on_plain_router(self):
        """One sharded-safe plan stays valid across the whole matrix:
        on a plain router the worker_crash fault does nothing."""
        plan = FaultPlan(faults=[{"kind": "worker_crash", "at": 1, "worker": 0}])
        case = stock("iprouter-mtu1500")
        reference = run_case(case, "reference")
        faulted = run_case(case, "reference", plan=plan, supervised=True)
        assert faulted[0] == "ok"
        assert faulted[1]["transmitted"] == reference[1]["transmitted"]

    def test_injector_counts_worker_crashes(self):
        plan = FaultPlan(faults=[{"kind": "worker_crash", "at": 1, "worker": 1}])
        case = stock("iprouter-mtu1500")
        collected = []
        status, _payload = run_case(
            case, "shard-batch", plan=plan, collect=collected.append
        )
        assert status == "ok"
        router = collected[-1]
        assert router.is_sharded
        assert router.fault_injector.worker_crashes == 1
        assert router.fault_injector.fault_counts()["worker_crashes"] == 1

    def test_invalid_worker_field_rejected(self):
        with pytest.raises(FaultError):
            FaultInjector(
                FaultPlan(faults=[{"kind": "worker_crash", "at": 1, "worker": -1}])
            )


class TestDivideCapacity:
    """The ``divide_capacity`` narrowing of the lossy-overflow carve-out
    (docs/SHARDING.md): with each bounded queue's capacity split across
    the shards, aggregate capacity matches the single plane, and — with
    the overflowing flows balanced across shards — the lossy trace
    becomes a *strict* equivalence, not a skip."""

    def balanced_lossy_case(self, frames=8):
        # sports 1000..1007 alternate shards under FlowHasher(2): even
        # sports land on one shard, odd on the other.  The reference
        # FrontDropQueue(4) keeps the last 4 arrivals {4,5,6,7}; the
        # divided per-shard cap-2 queues keep {4,6} and {5,7} — the
        # same multiset, so per-device output must agree exactly.
        case = TestLossyOverflow().lossy_case(frames=frames)
        return dict(case, name="lossy-pipeline-divided", divide_capacity=True)

    def test_flows_are_balanced_across_shards(self):
        from tests.runtime.test_flowhash import udp_frame

        from repro.runtime.flowhash import FlowHasher

        hasher = FlowHasher(2)
        shards = [hasher(bytes(udp_frame(sport=1000 + i))) for i in range(8)]
        assert shards.count(0) == 4 and shards.count(1) == 4
        assert shards[::2] != shards[1::2]  # alternating, not clumped

    def test_lossy_case_is_strict_equivalence(self):
        result = compare_case(self.balanced_lossy_case(), modes=list(SHARD_MODES))
        assert result["status"] == "ok", result["divergences"]
        assert result["skips"] == [], "divide mode must not fall back to the carve-out"

    def test_divided_plane_still_drops(self):
        # The equivalence above is only meaningful if overflow really
        # happened on the divided plane.
        status, observation = run_case(self.balanced_lossy_case(), "shard-fast")
        assert status == "ok"
        assert overflow_drops(observation["counters"]) > 0

    def test_undivided_carveout_still_applies(self):
        # Without the opt-in, the same trace stays a documented skip.
        case = TestLossyOverflow().lossy_case()
        result = compare_case(case, modes=["shard-fast"])
        assert result["status"] == "ok"
        assert result["skips"] and "lossy-overflow" in result["skips"][0]["reason"]
