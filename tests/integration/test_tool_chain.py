"""Integration tests of the full optimizer tool chain on the IP router.

The paper's pipeline — ``click-fastclassifier | click-xform |
click-devirtualize`` — must: preserve forwarding behaviour exactly,
produce configurations click-check accepts, survive textual round trips
at every stage, and be idempotent where re-running makes sense.
"""

import pytest

from repro.core import check, devirtualize, fastclassifier, load_config, save_config, undead, xform
from repro.core.patterns import STANDARD_PATTERNS
from repro.elements.devices import PollDevice
from repro.sim.testbed import Testbed


@pytest.fixture(scope="module")
def testbed():
    return Testbed(2)


def forward_all(testbed, graph, count=48):
    router, devices = testbed.build_router(graph)
    frames = testbed.evaluation_frames(count)
    for device, frame in frames:
        devices[device].receive_frame(frame)
    router.run_tasks(count // PollDevice.BURST + 16)
    return {name: tuple(d.transmitted) for name, d in devices.items()}


class TestChainStages:
    def test_every_stage_passes_click_check(self, testbed):
        graph = testbed.base_graph()
        stages = [graph]
        stages.append(fastclassifier(stages[-1]))
        stages.append(xform(stages[-1], patterns=STANDARD_PATTERNS))
        stages.append(devirtualize(stages[-1]))
        for index, stage in enumerate(stages):
            collector = check(stage)
            assert collector.ok, (index, collector.format())

    def test_every_stage_round_trips_through_text(self, testbed):
        graph = testbed.base_graph()
        reference = forward_all(testbed, graph)
        stage = graph
        for tool in (
            fastclassifier,
            lambda g: xform(g, patterns=STANDARD_PATTERNS),
            devirtualize,
        ):
            stage = load_config(save_config(tool(stage)))
            assert forward_all(testbed, stage) == reference

    def test_chain_order_variants_agree_behaviourally(self, testbed):
        """FC+XF+DV in the canonical order equals XF+FC+DV: the tools
        compose (like compiler passes, §5.4)."""
        graph = testbed.base_graph()
        reference = forward_all(testbed, graph)
        canonical = devirtualize(xform(fastclassifier(graph), patterns=STANDARD_PATTERNS))
        swapped = devirtualize(fastclassifier(xform(graph, patterns=STANDARD_PATTERNS)))
        assert forward_all(testbed, canonical) == reference
        assert forward_all(testbed, swapped) == reference

    def test_undead_is_identity_on_live_router(self, testbed):
        """§6.3: none of the IP router's elements are dead code."""
        graph = testbed.base_graph()
        assert set(undead(graph).elements) == set(graph.elements)

    def test_xform_is_idempotent(self, testbed):
        once = xform(testbed.base_graph(), patterns=STANDARD_PATTERNS)
        twice = xform(once, patterns=STANDARD_PATTERNS)
        assert {d.class_name for d in twice.elements.values()} == {
            d.class_name for d in once.elements.values()
        }
        assert len(twice.elements) == len(once.elements)

    def test_fastclassifier_idempotent_on_output(self, testbed):
        """Running fastclassifier again finds nothing to compile (the
        generated classes aren't classifier elements)."""
        once = fastclassifier(testbed.base_graph())
        twice = fastclassifier(once)
        fast = [d for d in twice.elements.values() if "FastClassifier" in d.class_name]
        assert len(fast) == 2  # one per interface, unchanged
        # Only one generated-code member (the second run added nothing).
        code_members = [m for m in twice.archive if m.endswith(".py")]
        assert len(code_members) == 1


class TestGeneratedCodeHygiene:
    def test_generated_members_are_valid_python(self, testbed):
        import ast

        graph = devirtualize(fastclassifier(testbed.base_graph()))
        for name, source in graph.archive.items():
            if name.endswith(".py"):
                ast.parse(source)  # raises on syntax errors

    def test_generated_classes_report_generated_flag(self, testbed):
        from repro.elements.runtime import compile_archive_classes

        graph = devirtualize(fastclassifier(testbed.base_graph()))
        for cls in compile_archive_classes(graph.archive).values():
            assert cls.generated

    def test_requirements_record_the_chain(self, testbed):
        graph = devirtualize(fastclassifier(testbed.base_graph()))
        assert "fastclassifier" in graph.requirements
        assert "devirtualize" in graph.requirements


class TestTulipDeviceIntegration:
    def test_router_runs_over_simulated_tulips(self, testbed):
        """The sim's TulipNIC satisfies the device protocol, so the real
        element graph can run over simulated hardware end to end."""
        from repro.net.headers import build_ether_udp_packet
        from repro.sim.nic import TulipNIC
        from repro.sim.pci import PCIBus
        from repro.sim.testbed import HOST_ETHERS, host_ip

        pci = PCIBus(99e6)
        devices = {
            "eth0": TulipNIC("eth0", pci, line_rate_pps=148_800.0),
            "eth1": TulipNIC("eth1", pci, line_rate_pps=148_800.0),
        }
        from repro.elements.runtime import Router

        router = Router(testbed.variant_graph("base"), devices=devices)
        router["arpq1"].insert(host_ip(1), HOST_ETHERS[1])
        frame = build_ether_udp_packet(
            HOST_ETHERS[0], testbed.interfaces[0].ether, host_ip(0), host_ip(1),
            payload=b"\x00" * 14,
        )
        for _ in range(5):
            devices["eth0"].receive_frame(frame)
        for _ in range(30):
            pci.refill(1e-4)
            for nic in devices.values():
                nic.advance(1e-4)
            router.run_tasks(1)
        assert devices["eth1"].transmitted == 5
