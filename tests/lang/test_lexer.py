"""Unit tests for the Click-language lexer."""

import pytest

from repro.lang import lexer as lex
from repro.lang.errors import ClickSyntaxError
from repro.lang.lexer import join_config_args, split_config_args, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)]


class TestTokens:
    def test_declaration(self):
        assert kinds("c :: Classifier(12/0800, -);") == [
            lex.IDENT, lex.COLONCOLON, lex.IDENT, lex.CONFIG, lex.SEMI, lex.EOF,
        ]

    def test_config_is_raw(self):
        tokens = tokenize("c :: Classifier(12/0800, -);")
        config = [t for t in tokens if t.kind == lex.CONFIG][0]
        assert config.value == "12/0800, -"

    def test_arrow_and_ports(self):
        assert kinds("a [0] -> [1] b;") == [
            lex.IDENT, lex.LBRACKET, lex.NUMBER, lex.RBRACKET, lex.ARROW,
            lex.LBRACKET, lex.NUMBER, lex.RBRACKET, lex.IDENT, lex.SEMI, lex.EOF,
        ]

    def test_line_comments_skipped(self):
        assert values("a // comment -> b\n-> c;")[:3] == ["a", "->", "c"]

    def test_block_comments_skipped(self):
        assert values("a /* x -> y */ -> c;")[:3] == ["a", "->", "c"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ClickSyntaxError):
            tokenize("a /* never closed")

    def test_nested_parens_in_config(self):
        tokens = tokenize("f :: IPFilter(allow (src 1.0.0.1), deny all)")
        config = [t for t in tokens if t.kind == lex.CONFIG][0]
        assert config.value == "allow (src 1.0.0.1), deny all"

    def test_quotes_protect_parens_in_config(self):
        tokens = tokenize('e :: Error(")")')
        config = [t for t in tokens if t.kind == lex.CONFIG][0]
        assert config.value == '")"'

    def test_unterminated_config(self):
        with pytest.raises(ClickSyntaxError):
            tokenize("c :: Classifier(12/0800")

    def test_elementclass_keyword(self):
        assert kinds("elementclass Foo { }")[0] == lex.ELEMENTCLASS

    def test_variable(self):
        tokens = tokenize("$color")
        assert tokens[0].kind == lex.VARIABLE
        assert tokens[0].value == "$color"

    def test_identifiers_may_contain_at_and_slash(self):
        tokens = tokenize("FastClassifier@@c")
        assert tokens[0].kind == lex.IDENT
        assert tokens[0].value == "FastClassifier@@c"

    def test_location_tracking(self):
        tokens = tokenize("a ->\n  b;")
        b_token = [t for t in tokens if t.value == "b"][0]
        assert b_token.location.line == 2
        assert b_token.location.column == 3

    def test_unexpected_character(self):
        with pytest.raises(ClickSyntaxError):
            tokenize("a ~ b")


class TestConfigSplitting:
    def test_simple(self):
        assert split_config_args("12/0800, -") == ["12/0800", "-"]

    def test_empty(self):
        assert split_config_args("") == []
        assert split_config_args(None) == []

    def test_quoted_commas(self):
        assert split_config_args('"a, b", c') == ['"a, b"', "c"]

    def test_nested_parens(self):
        assert split_config_args("f(a, b), c") == ["f(a, b)", "c"]

    def test_trailing_empty_arg_preserved(self):
        assert split_config_args("a, ") == ["a", ""]

    def test_join_round_trip(self):
        args = ["12/0800", "-", "src 1.0.0.1"]
        assert split_config_args(join_config_args(args)) == args
