"""Unit tests for the Click-language parser and elaborator."""

import pytest

from repro.lang.ast import Connection, Declaration, ElementClassDef
from repro.lang.build import parse_graph
from repro.lang.errors import ClickSemanticError, ClickSyntaxError
from repro.lang.parser import parse


class TestParser:
    def test_declaration(self):
        program = parse("c :: Classifier(12/0800, -);")
        (decl,) = program.declarations()
        assert decl.names == ["c"]
        assert decl.class_name == "Classifier"
        assert decl.config == "12/0800, -"

    def test_multi_name_declaration(self):
        program = parse("q1, q2 :: Queue(1024);")
        (decl,) = program.declarations()
        assert decl.names == ["q1", "q2"]

    def test_config_less_declaration(self):
        program = parse("d :: Discard;")
        (decl,) = program.declarations()
        assert decl.config is None

    def test_connection_chain(self):
        program = parse("a -> b -> c;")
        (conn,) = program.connections()
        assert [e.name for e in conn.chain] == ["a", "b", "c"]

    def test_connection_with_ports(self):
        program = parse("a [1] -> [2] b;")
        (conn,) = program.connections()
        assert conn.chain[0].out_port == 1
        assert conn.chain[1].in_port == 2

    def test_inline_declaration_in_connection(self):
        program = parse("a -> q :: Queue(117) -> b;")
        (conn,) = program.connections()
        middle = conn.chain[1]
        assert middle.name == "q"
        assert middle.decl.class_name == "Queue"
        assert middle.decl.config == "117"

    def test_anonymous_element_in_connection(self):
        program = parse("a -> Counter() -> b;")
        (conn,) = program.connections()
        middle = conn.chain[1]
        assert middle.decl is not None
        assert middle.decl.names == []
        assert middle.decl.class_name == "Counter"

    def test_elementclass(self):
        program = parse(
            """
            elementclass MyQueue {
              $capacity |
              input -> Queue($capacity) -> output;
            }
            """
        )
        (cls,) = program.element_classes()
        assert cls.name == "MyQueue"
        assert cls.params == ["$capacity"]
        assert len(cls.body) == 1
        assert isinstance(cls.body[0], Connection)

    def test_elementclass_without_params(self):
        program = parse("elementclass E { input -> output; }")
        (cls,) = program.element_classes()
        assert cls.params == []

    def test_bad_syntax_reports_location(self):
        with pytest.raises(ClickSyntaxError) as info:
            parse("a -> -> b;")
        assert info.value.location.line == 1

    def test_dangling_arrow(self):
        with pytest.raises(ClickSyntaxError):
            parse("a ->;")

    def test_bare_name_statement_is_error(self):
        with pytest.raises(ClickSyntaxError):
            parse("justaname;")


class TestElaboration:
    def test_declarations_become_elements(self):
        graph = parse_graph("c :: Counter; d :: Discard; c -> d;")
        assert set(graph.element_names()) == {"c", "d"}
        assert len(graph.connections) == 1

    def test_declaration_after_use(self):
        """Click declarations are file-scoped: use before declare is fine."""
        graph = parse_graph("c -> d; c :: Counter; d :: Discard;")
        assert set(graph.element_names()) == {"c", "d"}

    def test_anonymous_elements_get_click_style_names(self):
        graph = parse_graph("c :: Counter; c -> Discard;")
        names = graph.element_names()
        assert "c" in names
        anon = [n for n in names if n != "c"]
        assert len(anon) == 1
        assert anon[0].startswith("Discard@")

    def test_each_bare_class_mention_is_a_new_element(self):
        graph = parse_graph("a :: Counter; b :: Counter; a -> Discard; b -> Discard;")
        discards = graph.elements_of_class("Discard")
        assert len(discards) == 2

    def test_redeclaration_rejected(self):
        with pytest.raises(ClickSemanticError):
            parse_graph("c :: Counter; c :: Discard;")

    def test_chain_with_inline_decl(self):
        graph = parse_graph("src :: Counter; src -> q :: Queue(64) -> Discard;")
        assert graph.elements["q"].class_name == "Queue"
        assert graph.elements["q"].config == "64"
        assert len(graph.connections) == 2

    def test_ports_recorded(self):
        graph = parse_graph(
            "c :: Classifier(12/0806, 12/0800, -); c [2] -> Discard;"
        )
        (conn,) = graph.connections
        assert conn.from_port == 2
        assert conn.to_port == 0

    def test_compound_definition_stored(self):
        graph = parse_graph(
            """
            elementclass Gate { input -> q :: Queue -> output; }
            g :: Gate; c :: Counter; c -> g -> Discard;
            """
        )
        assert "Gate" in graph.element_classes
        body = graph.element_classes["Gate"].body
        assert "input" in body.elements
        assert "output" in body.elements
        assert body.elements["q"].class_name == "Queue"

    def test_requirements_collected(self):
        graph = parse_graph('require(fastclassifier);\na :: Counter; a -> Discard;')
        assert graph.requirements == ["fastclassifier"]

    def test_multi_name_declaration_elaborates(self):
        graph = parse_graph("q1, q2 :: Queue(64); q1 -> Discard; q2 -> Discard;")
        assert graph.elements["q1"].config == "64"
        assert graph.elements["q2"].config == "64"
