"""Round-trip properties: unparse(parse(x)) must preserve the graph.

§5.2: optimizers "expect to be able to arbitrarily transform
configuration graphs and generate Click-language files corresponding
exactly to the results" — so unparse → parse must be the identity on
graph structure, for arbitrary graphs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.build import parse_graph
from repro.lang.unparse import unparse

CLASS_NAMES = ["Counter", "Queue", "Tee", "Discard", "Idle", "Paint", "Strip"]


def canonical(graph):
    """Structure modulo element order: class/config per name + edge set."""
    return (
        {name: (d.class_name, d.config or None) for name, d in graph.elements.items()},
        {(c.from_element, c.from_port, c.to_element, c.to_port) for c in graph.connections},
        tuple(graph.requirements),
    )


@st.composite
def random_graphs(draw):
    from repro.graph.router import RouterGraph

    graph = RouterGraph()
    count = draw(st.integers(min_value=1, max_value=8))
    names = ["e%d" % i for i in range(count)]
    for name in names:
        class_name = draw(st.sampled_from(CLASS_NAMES))
        config = draw(st.sampled_from([None, "1", "64", "14", "1, 2"]))
        graph.add_element(name, class_name, config)
    edges = draw(st.integers(min_value=0, max_value=count * 2))
    for _ in range(edges):
        src = draw(st.sampled_from(names))
        dst = draw(st.sampled_from(names))
        graph.add_connection(
            src,
            draw(st.integers(min_value=0, max_value=2)),
            dst,
            draw(st.integers(min_value=0, max_value=2)),
        )
    return graph


class TestRoundTrip:
    @settings(max_examples=60)
    @given(random_graphs())
    def test_unparse_parse_is_identity_on_structure(self, graph):
        text = unparse(graph)
        reparsed = parse_graph(text)
        assert canonical(reparsed) == canonical(graph)

    def test_ip_router_round_trips(self):
        from repro.configs.iprouter import ip_router_graph

        graph = ip_router_graph()
        assert canonical(parse_graph(unparse(graph))) == canonical(graph)

    def test_firewall_round_trips(self):
        """Config strings with nested commas and parens must survive."""
        from repro.configs.firewall import firewall_graph

        graph = firewall_graph()
        reparsed = parse_graph(unparse(graph))
        assert canonical(reparsed) == canonical(graph)

    def test_requirements_round_trip(self):
        graph = parse_graph("require(fastclassifier);\nc :: Counter; c -> Discard;")
        assert parse_graph(unparse(graph)).requirements == ["fastclassifier"]

    def test_compound_definitions_round_trip(self):
        text = """
        elementclass Gate { $cap | input -> q :: Queue($cap) -> u :: Unqueue -> output; }
        c :: Counter; g :: Gate(9); c -> g -> Discard;
        """
        graph = parse_graph(text)
        reparsed = parse_graph(unparse(graph))
        assert "Gate" in reparsed.element_classes
        assert reparsed.element_classes["Gate"].params == ["$cap"]
        # Flattening both gives the same structure.
        from repro.core.flatten import flatten

        assert canonical(flatten(reparsed)) == canonical(flatten(graph))

    def test_double_round_trip_is_stable(self):
        from repro.configs.iprouter import ip_router_graph

        once = unparse(parse_graph(unparse(ip_router_graph())))
        twice = unparse(parse_graph(once))
        assert once == twice


class TestArchiveRoundTrip:
    from repro.lang.archive import read_archive, write_archive

    @settings(max_examples=60)
    @given(
        st.dictionaries(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz0123456789_.",
                min_size=1,
                max_size=12,
            ),
            st.text(max_size=200),
            min_size=1,
            max_size=4,
        )
    )
    def test_archive_round_trip(self, members):
        from repro.lang.archive import read_archive, write_archive

        text = write_archive(members)
        assert read_archive(text) == members

    def test_plain_text_is_single_member(self):
        from repro.lang.archive import read_archive

        assert read_archive("a -> b;") == {"config": "a -> b;"}

    def test_member_content_with_archive_magic_inside(self):
        """Member bodies containing the magic string must not confuse
        the reader (length-prefixed framing)."""
        from repro.lang.archive import read_archive, write_archive

        members = {"config": "x;\n", "tricky.py": "!<archive>\n!<member name=fake length=3>\nabc"}
        assert read_archive(write_archive(members)) == members
