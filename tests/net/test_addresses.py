"""Unit tests for IP/Ethernet address value types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import (
    AddressError,
    EtherAddress,
    IPAddress,
    ip_mask_from_prefix_len,
    parse_ip_prefix,
)


class TestIPAddress:
    def test_parse_and_format_round_trip(self):
        assert str(IPAddress("1.0.0.1")) == "1.0.0.1"
        assert str(IPAddress("255.255.255.255")) == "255.255.255.255"
        assert str(IPAddress("0.0.0.0")) == "0.0.0.0"

    def test_integer_value(self):
        assert IPAddress("1.0.0.1").value == (1 << 24) | 1
        assert IPAddress("10.0.0.2").value == 0x0A000002

    def test_from_bytes(self):
        assert IPAddress(b"\x0a\x00\x00\x02") == IPAddress("10.0.0.2")

    def test_packed(self):
        assert IPAddress("10.0.0.2").packed() == b"\x0a\x00\x00\x02"

    def test_equality_across_representations(self):
        assert IPAddress("10.0.0.2") == "10.0.0.2"
        assert IPAddress("10.0.0.2") == 0x0A000002
        assert IPAddress("10.0.0.2") != IPAddress("10.0.0.3")

    def test_hashable(self):
        assert len({IPAddress("1.2.3.4"), IPAddress("1.2.3.4")}) == 1

    @pytest.mark.parametrize("bad", ["256.0.0.1", "1.2.3", "a.b.c.d", "1.2.3.4.5", ""])
    def test_rejects_bad_strings(self, bad):
        with pytest.raises(AddressError):
            IPAddress(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(AddressError):
            IPAddress(1 << 32)
        with pytest.raises(AddressError):
            IPAddress(-1)

    def test_broadcast_and_multicast_predicates(self):
        assert IPAddress("255.255.255.255").is_broadcast()
        assert not IPAddress("255.255.255.254").is_broadcast()
        assert IPAddress("224.0.0.1").is_multicast()
        assert IPAddress("239.255.255.255").is_multicast()
        assert not IPAddress("240.0.0.0").is_multicast()

    def test_matches_prefix(self):
        addr = IPAddress("18.26.4.99")
        assert addr.matches_prefix("18.26.4.0", "255.255.255.0")
        assert not addr.matches_prefix("18.26.7.0", "255.255.255.0")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_round_trip_any_value(self, value):
        assert IPAddress(str(IPAddress(value))).value == value


class TestPrefixParsing:
    def test_mask_from_prefix_len(self):
        assert ip_mask_from_prefix_len(0) == 0
        assert ip_mask_from_prefix_len(24) == 0xFFFFFF00
        assert ip_mask_from_prefix_len(32) == 0xFFFFFFFF

    def test_mask_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            ip_mask_from_prefix_len(33)

    def test_parse_cidr(self):
        addr, mask = parse_ip_prefix("18.26.4.0/24")
        assert addr == IPAddress("18.26.4.0")
        assert mask == 0xFFFFFF00

    def test_parse_dotted_mask(self):
        addr, mask = parse_ip_prefix("18.26.4.0/255.255.252.0")
        assert mask == 0xFFFFFC00

    def test_bare_address_is_host_route(self):
        addr, mask = parse_ip_prefix("1.0.0.1")
        assert mask == 0xFFFFFFFF


class TestEtherAddress:
    def test_parse_and_format(self):
        assert str(EtherAddress("0:20:6f:14:54:c2")) == "00:20:6F:14:54:C2"

    def test_packed(self):
        assert EtherAddress("00:20:6F:14:54:C2").packed() == bytes(
            [0x00, 0x20, 0x6F, 0x14, 0x54, 0xC2]
        )

    def test_broadcast(self):
        assert EtherAddress.broadcast().is_broadcast()
        assert str(EtherAddress.broadcast()) == "FF:FF:FF:FF:FF:FF"

    def test_group_bit(self):
        assert EtherAddress("01:00:5E:00:00:01").is_group()
        assert not EtherAddress("00:20:6F:14:54:C2").is_group()

    @pytest.mark.parametrize("bad", ["00:20:6F:14:54", "00:20:6F:14:54:C2:FF", "zz:20:6F:14:54:C2", ""])
    def test_rejects_bad_strings(self, bad):
        with pytest.raises(AddressError):
            EtherAddress(bad)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_round_trip_any_value(self, value):
        assert EtherAddress(str(EtherAddress(value))).value == value
