"""Unit tests for the Internet checksum and its incremental update."""

import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import (
    internet_checksum,
    ones_complement_sum,
    update_checksum_u16,
    verify_checksum,
)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # Example data from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert ones_complement_sum(data) == 0xDDF2
        assert internet_checksum(data) == 0x220D

    def test_odd_length_pads_with_zero(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_zero_data(self):
        assert internet_checksum(b"\x00" * 20) == 0xFFFF

    @given(st.binary(min_size=2, max_size=64).filter(lambda d: len(d) % 2 == 0))
    def test_checksum_inserted_verifies(self, data):
        # Append the checksum as the final 16-bit word (word-aligned, as
        # in real headers); the whole thing must then verify.
        csum = internet_checksum(data + b"\x00\x00")
        packet = data + struct.pack("!H", csum)
        assert verify_checksum(packet)

    @given(st.binary(min_size=20, max_size=20))
    def test_corruption_detected(self, data):
        csum = internet_checksum(data + b"\x00\x00")
        packet = bytearray(data + struct.pack("!H", csum))
        packet[0] ^= 0x01
        # One's-complement checksums catch all single-bit flips except
        # 0x0000 <-> 0xFFFF word aliasing; a single bit flip is always caught.
        assert not verify_checksum(bytes(packet))


class TestIncrementalUpdate:
    @given(
        st.binary(min_size=20, max_size=20),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_matches_full_recompute(self, header, word_index, new_word):
        """RFC 1624 incremental update must agree with recomputation for
        any 16-bit field change — this is the property DecIPTTL relies on.

        Real IP headers always start with a nonzero version/IHL byte;
        the degenerate all-zero header hits the one's-complement ±0
        ambiguity RFC 1624 §4 documents, so we pin byte 0 to 0x45.
        """
        header = bytearray(header)
        header[0] = 0x45
        header[10:12] = b"\x00\x00"
        old_checksum = internet_checksum(header)
        header[10:12] = struct.pack("!H", old_checksum)

        offset = word_index * 2
        old_word = struct.unpack_from("!H", header, offset)[0]
        if offset in (0, 10):
            return  # keep the pinned version byte; never rewrite the checksum field
        updated = update_checksum_u16(old_checksum, old_word, new_word)

        header[offset:offset + 2] = struct.pack("!H", new_word)
        header[10:12] = b"\x00\x00"
        recomputed = internet_checksum(header)
        assert updated == recomputed

    def test_ttl_decrement_example(self):
        """The exact update DecIPTTL performs: TTL/protocol word changes."""
        from repro.net.headers import IPHeader

        header = bytearray(IPHeader(src="1.0.0.1", dst="2.0.0.2", ttl=64).pack())
        old_checksum = struct.unpack_from("!H", header, 10)[0]
        old_word = struct.unpack_from("!H", header, 8)[0]
        new_word = old_word - 0x0100  # TTL is the high byte of word 4
        new_checksum = update_checksum_u16(old_checksum, old_word, new_word)

        header[8] = 63
        header[10:12] = b"\x00\x00"
        assert new_checksum == internet_checksum(header)


class TestIncrementalUpdateEdgeCases:
    """RFC 1624's reason to exist: the 0x0000/0xFFFF corner cases where
    the older RFC 1141 formulation produced the wrong alias of zero."""

    def _header_with_word(self, word_value, offset=4):
        header = bytearray(20)
        header[0] = 0x45
        header[8] = 64  # TTL: keep the header nondegenerate
        struct.pack_into("!H", header, offset, word_value)
        checksum = internet_checksum(header)
        return header, checksum

    def _recompute_after(self, header, offset, new_word):
        patched = bytearray(header)
        struct.pack_into("!H", patched, offset, new_word)
        patched[10:12] = b"\x00\x00"
        return internet_checksum(patched)

    def test_old_field_zero(self):
        header, checksum = self._header_with_word(0x0000)
        for new_word in (0x0001, 0x1234, 0xFFFF):
            assert update_checksum_u16(checksum, 0x0000, new_word) == (
                self._recompute_after(header, 4, new_word)
            )

    def test_new_field_zero(self):
        for old_word in (0x0001, 0x1234, 0xFFFF):
            header, checksum = self._header_with_word(old_word)
            assert update_checksum_u16(checksum, old_word, 0x0000) == (
                self._recompute_after(header, 4, 0x0000)
            )

    def test_all_ones_to_all_ones(self):
        header, checksum = self._header_with_word(0xFFFF)
        assert update_checksum_u16(checksum, 0xFFFF, 0xFFFF) == checksum

    def test_zero_to_zero_is_identity(self):
        header, checksum = self._header_with_word(0x0000)
        assert update_checksum_u16(checksum, 0x0000, 0x0000) == checksum

    def test_rfc1624_famous_corner(self):
        """The RFC 1624 §5 example: a checksum of 0xDD2F whose covered
        word changes 0x5555 -> 0x3285 must yield 0x0000, not 0xFFFF."""
        assert update_checksum_u16(0xDD2F, 0x5555, 0x3285) == 0x0000


class TestOddLengthChecksum:
    def test_trailing_byte_is_high_half_of_final_word(self):
        # RFC 1071: odd data is padded on the right with zero.
        assert internet_checksum(b"\x12\x34\xab") == internet_checksum(
            b"\x12\x34\xab\x00"
        )

    def test_single_byte(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_odd_length_differs_from_left_pad(self):
        # Padding on the wrong side would swap the byte into the low
        # half and give a different sum.
        assert internet_checksum(b"\x01\x02\x03") != internet_checksum(
            b"\x01\x02\x00\x03"
        )

    @given(st.binary(min_size=1, max_size=63).filter(lambda d: len(d) % 2 == 1))
    def test_odd_always_equals_zero_padded_even(self, data):
        assert internet_checksum(data) == internet_checksum(data + b"\x00")


class TestSeededIncrementalCrossCheck:
    def test_seeded_sweep_matches_full_recompute(self):
        """Seeded (non-hypothesis) property sweep: for 500 random
        header/field/value triples — biased toward the 0x0000/0xFFFF
        corners — the incremental update equals a full recompute."""
        import random

        rng = random.Random(0x1624)
        corners = [0x0000, 0x0001, 0x7FFF, 0x8000, 0xFFFE, 0xFFFF]
        for _ in range(500):
            header = bytearray(rng.getrandbits(8) for _ in range(20))
            header[0] = 0x45
            header[10:12] = b"\x00\x00"
            checksum = internet_checksum(header)
            struct.pack_into("!H", header, 10, checksum)

            offset = rng.choice([2, 4, 6, 8, 12, 14, 16, 18])
            old_word = struct.unpack_from("!H", header, offset)[0]
            new_word = rng.choice(corners) if rng.random() < 0.5 else rng.getrandbits(16)

            updated = update_checksum_u16(checksum, old_word, new_word)
            struct.pack_into("!H", header, offset, new_word)
            header[10:12] = b"\x00\x00"
            assert updated == internet_checksum(header), (
                header.hex(), offset, old_word, new_word
            )
