"""Unit tests for the Internet checksum and its incremental update."""

import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import (
    internet_checksum,
    ones_complement_sum,
    update_checksum_u16,
    verify_checksum,
)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # Example data from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert ones_complement_sum(data) == 0xDDF2
        assert internet_checksum(data) == 0x220D

    def test_odd_length_pads_with_zero(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_zero_data(self):
        assert internet_checksum(b"\x00" * 20) == 0xFFFF

    @given(st.binary(min_size=2, max_size=64).filter(lambda d: len(d) % 2 == 0))
    def test_checksum_inserted_verifies(self, data):
        # Append the checksum as the final 16-bit word (word-aligned, as
        # in real headers); the whole thing must then verify.
        csum = internet_checksum(data + b"\x00\x00")
        packet = data + struct.pack("!H", csum)
        assert verify_checksum(packet)

    @given(st.binary(min_size=20, max_size=20))
    def test_corruption_detected(self, data):
        csum = internet_checksum(data + b"\x00\x00")
        packet = bytearray(data + struct.pack("!H", csum))
        packet[0] ^= 0x01
        # One's-complement checksums catch all single-bit flips except
        # 0x0000 <-> 0xFFFF word aliasing; a single bit flip is always caught.
        assert not verify_checksum(bytes(packet))


class TestIncrementalUpdate:
    @given(
        st.binary(min_size=20, max_size=20),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_matches_full_recompute(self, header, word_index, new_word):
        """RFC 1624 incremental update must agree with recomputation for
        any 16-bit field change — this is the property DecIPTTL relies on.

        Real IP headers always start with a nonzero version/IHL byte;
        the degenerate all-zero header hits the one's-complement ±0
        ambiguity RFC 1624 §4 documents, so we pin byte 0 to 0x45.
        """
        header = bytearray(header)
        header[0] = 0x45
        header[10:12] = b"\x00\x00"
        old_checksum = internet_checksum(header)
        header[10:12] = struct.pack("!H", old_checksum)

        offset = word_index * 2
        old_word = struct.unpack_from("!H", header, offset)[0]
        if offset in (0, 10):
            return  # keep the pinned version byte; never rewrite the checksum field
        updated = update_checksum_u16(old_checksum, old_word, new_word)

        header[offset:offset + 2] = struct.pack("!H", new_word)
        header[10:12] = b"\x00\x00"
        recomputed = internet_checksum(header)
        assert updated == recomputed

    def test_ttl_decrement_example(self):
        """The exact update DecIPTTL performs: TTL/protocol word changes."""
        from repro.net.headers import IPHeader

        header = bytearray(IPHeader(src="1.0.0.1", dst="2.0.0.2", ttl=64).pack())
        old_checksum = struct.unpack_from("!H", header, 10)[0]
        old_word = struct.unpack_from("!H", header, 8)[0]
        new_word = old_word - 0x0100  # TTL is the high byte of word 4
        new_checksum = update_checksum_u16(old_checksum, old_word, new_word)

        header[8] = 63
        header[10:12] = b"\x00\x00"
        assert new_checksum == internet_checksum(header)
