"""Unit tests for header construction and parsing."""

import pytest

from repro.net.addresses import EtherAddress, IPAddress
from repro.net.checksum import verify_checksum
from repro.net.headers import (
    ARP_OP_REPLY,
    ARP_OP_REQUEST,
    ETHER_HEADER_LEN,
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    ICMP_TIME_EXCEEDED,
    IP_HEADER_LEN,
    IP_PROTO_UDP,
    ArpHeader,
    EtherHeader,
    HeaderError,
    IPHeader,
    UDPHeader,
    build_arp_reply,
    build_arp_request,
    build_ether_udp_packet,
    build_udp_packet,
    make_icmp_error,
)


class TestEtherHeader:
    def test_round_trip(self):
        packed = EtherHeader(
            EtherAddress("00:00:c0:ae:67:ef"),
            EtherAddress("00:20:6f:14:54:c2"),
            ETHERTYPE_IP,
        ).pack()
        assert len(packed) == ETHER_HEADER_LEN
        header = EtherHeader.unpack(packed)
        assert header.dst == "00:00:c0:ae:67:ef"
        assert header.src == "00:20:6f:14:54:c2"
        assert header.ether_type == ETHERTYPE_IP

    def test_short_data_rejected(self):
        with pytest.raises(HeaderError):
            EtherHeader.unpack(b"\x00" * 10)


class TestIPHeader:
    def test_round_trip(self):
        packed = IPHeader(
            src=IPAddress("1.0.0.2"), dst=IPAddress("2.0.0.2"), ttl=64, total_length=42,
            identification=7, protocol=IP_PROTO_UDP,
        ).pack()
        assert len(packed) == IP_HEADER_LEN
        header = IPHeader.unpack(packed)
        assert header.src == "1.0.0.2"
        assert header.dst == "2.0.0.2"
        assert header.ttl == 64
        assert header.total_length == 42
        assert header.identification == 7

    def test_checksum_valid(self):
        packed = IPHeader(src=IPAddress("1.0.0.2"), dst=IPAddress("2.0.0.2")).pack()
        assert verify_checksum(packed)

    def test_options_lengthen_header(self):
        packed = IPHeader(
            src=IPAddress("1.0.0.2"), dst=IPAddress("2.0.0.2"), header_length=24
        ).pack()
        assert len(packed) == 24
        assert IPHeader.unpack(packed).header_length == 24

    def test_rejects_non_ipv4(self):
        packed = bytearray(IPHeader(src=IPAddress("1.0.0.2"), dst=IPAddress("2.0.0.2")).pack())
        packed[0] = (6 << 4) | 5
        with pytest.raises(HeaderError):
            IPHeader.unpack(bytes(packed))

    def test_fragment_flags(self):
        header = IPHeader.unpack(
            IPHeader(src=IPAddress("1.0.0.2"), dst=IPAddress("2.0.0.2"), flags=0x2).pack()
        )
        assert header.dont_fragment
        assert not header.more_fragments


class TestArp:
    def test_request_round_trip(self):
        frame = build_arp_request("00:20:6f:14:54:c2", "1.0.0.1", "1.0.0.2")
        ether = EtherHeader.unpack(frame)
        assert ether.ether_type == ETHERTYPE_ARP
        assert ether.dst.is_broadcast()
        arp = ArpHeader.unpack(frame[ETHER_HEADER_LEN:])
        assert arp.operation == ARP_OP_REQUEST
        assert arp.sender_ip == "1.0.0.1"
        assert arp.target_ip == "1.0.0.2"

    def test_reply_round_trip(self):
        frame = build_arp_reply(
            "00:00:c0:4f:71:ef", "1.0.0.2", "00:20:6f:14:54:c2", "1.0.0.1"
        )
        arp = ArpHeader.unpack(frame[ETHER_HEADER_LEN:])
        assert arp.operation == ARP_OP_REPLY
        assert arp.sender_ether == "00:00:c0:4f:71:ef"
        assert arp.target_ether == "00:20:6f:14:54:c2"

    def test_rejects_non_ethernet_arp(self):
        frame = bytearray(build_arp_request("00:20:6f:14:54:c2", "1.0.0.1", "1.0.0.2"))
        frame[ETHER_HEADER_LEN] = 0xFF  # corrupt hardware type
        with pytest.raises(HeaderError):
            ArpHeader.unpack(bytes(frame[ETHER_HEADER_LEN:]))


class TestPacketBuilders:
    def test_evaluation_packet_matches_section_8_1(self):
        """§8.1: each 64-byte UDP packet includes Ethernet, IP, and UDP
        headers, 14 bytes of data, and the 4-byte CRC — so the frame we
        build (which excludes the CRC) is 14 + 20 + 8 + 14 = 56 bytes."""
        frame = build_ether_udp_packet(
            "00:20:6f:14:54:c2", "00:00:c0:4f:71:ef", "1.0.0.2", "2.0.0.2",
            payload=b"\x00" * 14,
        )
        assert len(frame) == 56

    def test_udp_packet_lengths_consistent(self):
        packet = build_udp_packet("1.0.0.2", "2.0.0.2", payload=b"hello")
        ip = IPHeader.unpack(packet)
        assert ip.total_length == len(packet)
        udp = UDPHeader.unpack(packet[IP_HEADER_LEN:])
        assert udp.length == len(packet) - IP_HEADER_LEN

    def test_icmp_error_quotes_original(self):
        original = build_udp_packet("1.0.0.2", "2.0.0.2", payload=b"\x00" * 14)
        icmp = make_icmp_error(ICMP_TIME_EXCEEDED, 0, original)
        assert icmp[0] == ICMP_TIME_EXCEEDED
        assert verify_checksum(icmp)
        # ICMP header (8) + quoted IP header (20) + 8 payload bytes.
        assert len(icmp) == 8 + IP_HEADER_LEN + 8
        assert icmp[8:] == original[: IP_HEADER_LEN + 8]
