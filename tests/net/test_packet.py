"""Unit tests for the Packet abstraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import DEFAULT_HEADROOM, Packet, PacketError, make_packet


class TestPacketData:
    def test_basic_contents(self):
        packet = Packet(b"abcdef")
        assert packet.data == b"abcdef"
        assert len(packet) == 6

    def test_strip_removes_front(self):
        packet = Packet(b"headerpayload")
        packet.strip(6)
        assert packet.data == b"payload"

    def test_strip_past_end_raises(self):
        packet = Packet(b"abc")
        with pytest.raises(PacketError):
            packet.strip(4)

    def test_push_uses_headroom(self):
        packet = Packet(b"payload")
        packet.push(b"hd")
        assert packet.data == b"hdpayload"
        assert packet.headroom == DEFAULT_HEADROOM - 2

    def test_push_beyond_headroom_reallocates(self):
        packet = Packet(b"x", headroom=2)
        packet.push(b"longheader")
        assert packet.data == b"longheaderx"
        assert packet.headroom == DEFAULT_HEADROOM

    def test_strip_then_push_round_trip(self):
        packet = Packet(b"ethernetIPdata")
        packet.strip(8)
        packet.push(b"ethernet")
        assert packet.data == b"ethernetIPdata"

    def test_take_and_put(self):
        packet = Packet(b"abcdef")
        packet.take(2)
        assert packet.data == b"abcd"
        packet.put(b"XY")
        assert packet.data == b"abcdXY"

    def test_replace(self):
        packet = Packet(b"abcdef")
        packet.replace(2, b"XY")
        assert packet.data == b"abXYef"

    def test_replace_out_of_range(self):
        packet = Packet(b"abc")
        with pytest.raises(PacketError):
            packet.replace(2, b"XY")


class TestAlignment:
    def test_fresh_packet_alignment(self):
        packet = Packet(b"data")
        assert packet.data_alignment() == DEFAULT_HEADROOM % 4

    def test_strip_changes_alignment(self):
        packet = Packet(b"0123456789abcdef")
        before = packet.data_alignment()
        packet.strip(14)  # Ethernet header: 14 mod 4 == 2
        assert packet.data_alignment() == (before + 2) % 4

    def test_realign(self):
        packet = Packet(b"0123456789abcdef")
        packet.strip(14)
        contents = packet.data
        packet.realign(4, 0)
        assert packet.data_alignment() == 0
        assert packet.data == contents

    def test_realign_preserves_contents(self):
        packet = Packet(b"0123456789abcdef", buffer_alignment=2)
        packet.strip(3)
        contents = packet.data
        packet.realign(4, 2)
        assert packet.data == contents
        assert packet.data_alignment() == 2


class TestAnnotations:
    def test_defaults(self):
        packet = Packet(b"x")
        assert packet.paint == 0
        assert packet.dest_ip_anno is None

    def test_make_packet_sets_annotations(self):
        packet = make_packet(b"x", paint=2, dest_ip_anno="1.0.0.1", custom=42)
        assert packet.paint == 2
        assert str(packet.dest_ip_anno) == "1.0.0.1"
        assert packet.user_annos["custom"] == 42

    def test_clone_is_independent(self):
        packet = make_packet(b"abcdef", paint=3)
        dup = packet.clone()
        dup.strip(2)
        dup.paint = 9
        dup.user_annos["k"] = 1
        assert packet.data == b"abcdef"
        assert packet.paint == 3
        assert "k" not in packet.user_annos

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=255))
    def test_clone_equals_original(self, data, paint):
        packet = make_packet(data, paint=paint)
        dup = packet.clone()
        assert dup.data == packet.data
        assert dup.paint == packet.paint
        assert dup.data_alignment() == packet.data_alignment()
