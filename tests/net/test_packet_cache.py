"""Audit of ``Packet._data_cache`` invalidation: the generated fast
paths read and write the cache directly, so every public mutator must
leave ``bytes(packet)`` (and ``.data``) exactly equal to a cache-free
reconstruction of the buffer.  A missed invalidation here would show up
as silently stale forwarded bytes — the worst kind of fast-path bug."""

import pytest

from repro.net.packet import Packet


def fresh(data=b"ABCDEFGHIJ", headroom=6):
    return Packet(data, headroom=headroom)


def ground_truth(packet):
    """The contents recomputed from the raw buffer, bypassing the cache."""
    return bytes(packet._buf[packet._data_offset :])


def assert_coherent(packet):
    assert packet.data == ground_truth(packet)
    assert bytes(packet) == ground_truth(packet)
    assert len(packet) == len(ground_truth(packet))


MUTATORS = [
    ("strip", lambda p: p.strip(3)),
    ("pull", lambda p: p.pull(2)),
    ("push_within_headroom", lambda p: p.push(b"xy")),
    ("push_reallocating", lambda p: p.push(b"z" * 64)),
    ("take", lambda p: p.take(4)),
    ("put", lambda p: p.put(b"tail")),
    ("replace", lambda p: p.replace(2, b"??")),
    ("set_data", lambda p: p.set_data(b"fresh contents")),
    ("realign", lambda p: p.realign(4, 2)),
]


@pytest.mark.parametrize("name,mutate", MUTATORS, ids=[m[0] for m in MUTATORS])
def test_mutator_invalidates_cache(name, mutate):
    packet = fresh()
    assert_coherent(packet)  # constructor seeds the cache
    mutate(packet)
    assert_coherent(packet)


@pytest.mark.parametrize("name,mutate", MUTATORS, ids=[m[0] for m in MUTATORS])
def test_mutator_invalidates_warm_cache(name, mutate):
    """Same audit with the cache warmed by a read first — the case the
    fast path hits, where a stale cache would actually be served."""
    packet = fresh()
    before = packet.data  # warm the cache
    mutate(packet)
    assert_coherent(packet)
    # And a second mutation over a re-warmed cache.
    packet.data
    packet.replace(0, b"!")
    assert_coherent(packet)
    assert before == b"ABCDEFGHIJ"  # the old bytes object is unchanged


def test_bytes_protocol_matches_data():
    packet = fresh()
    assert bytes(packet) == packet.data
    packet.strip(1)
    assert bytes(packet) == packet.data == b"BCDEFGHIJ"
    # bytes() itself must not desync the cache.
    assert bytes(packet) is packet.data


def test_clone_shares_no_mutable_state():
    packet = fresh()
    packet.data
    dup = packet.clone()
    dup.replace(0, b"Z")
    assert_coherent(packet)
    assert_coherent(dup)
    assert packet.data == b"ABCDEFGHIJ"
    assert dup.data == b"ZBCDEFGHIJ"


def test_mutation_chain_never_stale():
    """A forwarding-path-shaped sequence: strip the Ethernet header,
    rewrite a field, push a new header — coherent at every step."""
    packet = fresh(b"\x00" * 14 + b"E" + b"\x00" * 19, headroom=20)
    for step in (
        lambda p: p.strip(14),
        lambda p: p.replace(8, b"\x3f"),
        lambda p: p.push(b"\xaa" * 14),
        lambda p: p.take(2),
        lambda p: p.put(b"\x00\x00"),
    ):
        step(packet)
        assert_coherent(packet)


def test_direct_cache_discipline_matches_fast_path():
    """The generated code's inline idiom: read ``_data_cache`` or fall
    back to ``.data``, mutate via the documented slots, null the cache.
    The invariant the emitters rely on — a non-None ``_data_cache`` IS
    the current contents — must hold after every public mutator."""
    packet = fresh()
    for _, mutate in MUTATORS:
        p = fresh()
        mutate(p)
        cached = p._data_cache
        assert cached is None or cached == ground_truth(p)
