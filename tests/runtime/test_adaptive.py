"""The adaptive engine's machinery, piece by piece: configuration
validation, the profile store, guard-condition construction, decision
building, the tier lifecycle (profile -> promote -> deopt -> reprofile),
and the content-addressed codegen cache."""

import pytest

from repro.classifier.language import compile_patterns
from repro.classifier.optimize import optimize
from repro.elements.runtime import Router
from repro.lang.build import parse_graph
from repro.net.packet import Packet
from repro.runtime.adaptive import (
    AdaptiveConfig,
    ProfileStore,
    _guard_conds,
    build_decisions,
)
from repro.runtime.codegen_cache import CodegenCache
from repro.runtime.fastpath import FastPath
from repro.sim.testbed import Testbed

EAGER = dict(threshold=48, sample=4, min_samples=12)


# -- configuration -----------------------------------------------------------


def test_config_rejects_non_power_of_two_sample():
    with pytest.raises(ValueError):
        AdaptiveConfig(sample=3)


def test_config_rejects_non_positive_threshold():
    with pytest.raises(ValueError):
        AdaptiveConfig(threshold=0)


def test_config_rejects_non_positive_min_samples():
    with pytest.raises(ValueError):
        AdaptiveConfig(min_samples=0)


def test_config_rejects_non_positive_guard_miss_limit():
    with pytest.raises(ValueError):
        AdaptiveConfig(guard_miss_limit=0)


def test_config_rejects_non_positive_max_recompiles():
    with pytest.raises(ValueError):
        AdaptiveConfig(max_recompiles=-1)


def test_config_round_trips_as_dict():
    config = AdaptiveConfig(threshold=100, sample=8)
    assert config.as_dict()["threshold"] == 100
    assert config.as_dict()["sample"] == 8


# -- profile store -----------------------------------------------------------


def test_profile_store_counts_and_exemplars():
    store = ProfileStore()
    note = store.classifier_note("c0")
    note(1, b"\x45\x00")
    note(1, b"\x45\x11")
    note(0, b"\x60\x00")
    assert store.classifier["c0"] == {1: 2, 0: 1}
    # The exemplar is the first sample per output, not the last.
    assert store.classifier_exemplar["c0"] == {1: b"\x45\x00", 0: b"\x60\x00"}


def test_profile_store_reset_clears_in_place():
    """Profiled chains close over the inner dicts; reset must clear
    those same objects, not swap in fresh ones."""
    store = ProfileStore()
    note = store.classifier_note("c0")
    inner = store.classifier["c0"]
    note(0, b"")
    store.reset()
    assert inner == {} and store.classifier["c0"] is inner
    note(2, b"x")
    assert store.classifier["c0"] == {2: 1}


# -- guard conditions --------------------------------------------------------


def _ip_tree():
    return optimize(compile_patterns(["12/0800", "12/0806", "-"]))


def test_guard_conds_imply_the_hot_output():
    tree = _ip_tree()
    ip_frame = b"\x00" * 12 + b"\x08\x00" + b"\x00" * 6
    assert tree.match(ip_frame) == 0
    conds = _guard_conds(tree, 0, exemplar=ip_frame)
    assert conds is not None
    assert conds[0][0] == "len"
    # The conjunction must accept the exemplar's own class...
    assert _eval_conds(conds, ip_frame)
    # ...and reject traffic the tree classifies elsewhere.
    arp_frame = b"\x00" * 12 + b"\x08\x06" + b"\x00" * 6
    assert tree.match(arp_frame) != 0
    assert not _eval_conds(conds, arp_frame)


def test_guard_conds_follow_the_exemplar_path():
    """Several leaves can share an output; the guard must describe the
    profiled flow's leaf, so the exemplar itself always passes."""
    rules = ["12/0800 23/11", "12/0800 23/06", "12/0806", "-"]
    tree = optimize(compile_patterns(rules))
    tcp_like = b"\x00" * 12 + b"\x08\x00" + b"\x00" * 9 + b"\x06" + b"\x00" * 4
    out = tree.match(tcp_like)
    conds = _guard_conds(tree, out, exemplar=tcp_like)
    if conds is not None:
        assert _eval_conds(conds, tcp_like)


def test_guard_conds_short_data_fails_len():
    tree = _ip_tree()
    conds = _guard_conds(tree, 0, exemplar=b"\x00" * 12 + b"\x08\x00" + b"\x00" * 6)
    min_len = max(c[1] for c in conds if c[0] == "len")
    assert not _eval_conds(conds, b"\x00" * (min_len - 1))


def _eval_conds(conds, data):
    for cond in conds:
        if cond[0] == "len":
            if len(data) < cond[1]:
                return False
        elif cond[0] == "slice":
            _, start, end, expected, equal = cond
            if (data[start:end] == expected) != equal:
                return False
        else:
            _, offset, width, mask, value, equal = cond
            word = int.from_bytes(data[offset : offset + width], "big")
            if ((word & mask) == value) != equal:
                return False
    return True


# -- decisions ---------------------------------------------------------------


def _profiled_testbed(packets=256, config=None):
    testbed = Testbed(2)
    router, devices = testbed.build_router(
        testbed.variant_graph("base"),
        mode="adaptive",
        adaptive_config=config or AdaptiveConfig(**EAGER),
    )
    for device_name, frame in testbed.evaluation_frames(packets):
        devices[device_name].receive_frame(frame)
    router.run_tasks(packets)
    return testbed, router, devices


def test_build_decisions_from_live_profile():
    _, router, _ = _profiled_testbed()
    engine = router.adaptive
    decisions = build_decisions(router, engine.store, engine.config)
    assert not decisions.empty()
    # The route table saw both destinations; its decision records them.
    assert decisions.route or decisions.classifier
    assert len(decisions.digest) == 16


def test_decisions_digest_is_stable():
    _, router, _ = _profiled_testbed()
    engine = router.adaptive
    first = build_decisions(router, engine.store, engine.config)
    second = build_decisions(router, engine.store, engine.config)
    assert first.digest == second.digest


# -- tier lifecycle ----------------------------------------------------------


def test_lifecycle_promote_deopt_reprofile():
    _, router, devices = _profiled_testbed()
    engine = router.adaptive
    report = engine.profile_report().as_dict()
    promoted = [k for k, c in report["chains"].items() if c["tier"] == 2]
    assert promoted, "no chain promoted under eager thresholds"

    engine.deopt("unit-test")
    report = engine.profile_report().as_dict()
    assert all(c["tier"] != 2 for c in report["chains"].values())
    assert "unit-test" in report["deopts"]

    # Fresh traffic re-profiles and re-promotes through a new recompile.
    testbed = Testbed(2)
    for device_name, frame in testbed.evaluation_frames(256):
        devices[device_name].receive_frame(frame)
    router.run_tasks(256)
    report = engine.profile_report().as_dict()
    assert any(c["tier"] == 2 for c in report["chains"].values())
    assert report["recompiles"] >= 2


def test_thin_profile_does_not_settle():
    """A chain crossing its packet threshold before min_samples profiled
    events must keep profiling, not settle on tier 1 forever."""
    config = AdaptiveConfig(threshold=32, sample=16, min_samples=24)
    _, router, _ = _profiled_testbed(packets=1024, config=config)
    report = router.adaptive.profile_report().as_dict()
    assert any(c["tier"] == 2 for c in report["chains"].values())


def test_metered_router_degrades_to_tier1():
    from repro.sim.cpu import CycleMeter

    testbed = Testbed(2)
    router, devices = testbed.build_router(
        testbed.variant_graph("base"),
        meter=CycleMeter(),
        mode="adaptive",
        adaptive_config=AdaptiveConfig(**EAGER),
    )
    for device_name, frame in testbed.evaluation_frames(128):
        devices[device_name].receive_frame(frame)
    router.run_tasks(128)
    report = router.adaptive.profile_report().as_dict()
    assert report["metered"] is True
    assert all(c["tier"] == 1 for c in report["chains"].values())


# -- codegen cache -----------------------------------------------------------

SIMPLE = """
src :: PollDevice(eth0) -> ctr :: Counter -> q :: Queue(8) -> sink :: ToDevice(eth0);
"""


def _simple_router():
    from repro.elements.devices import LoopbackDevice

    devices = {"eth0": LoopbackDevice("eth0")}
    return Router(parse_graph(SIMPLE, "<cache-test>"), devices=devices), devices


def test_codegen_cache_replay_matches_fresh_compile():
    cache = CodegenCache()
    router_a, _ = _simple_router()
    fresh = FastPath(router_a, cache=cache)
    assert fresh.report.cache_hit is False

    router_b, devices = _simple_router()
    replayed = FastPath(router_b, cache=cache)
    assert replayed.report.cache_hit is True
    assert cache.hits == 1

    # The replayed fast path must run against the *new* router.
    replayed.install()
    packet = Packet(b"\x00" * 64)
    router_b.elements["ctr"].output(0).push(packet)
    assert router_b.elements["ctr"].count in (0, 1)  # counter precedes the port
    router_b.elements["src"].output(0).push(Packet(b"\x00" * 64))
    assert router_b.elements["ctr"].count >= 1


def test_codegen_cache_distinguishes_policies():
    from repro.runtime.adaptive import ProfilingPolicy

    cache = CodegenCache()
    router_a, _ = _simple_router()
    FastPath(router_a, cache=cache)
    router_b, _ = _simple_router()
    FastPath(router_b, policy=ProfilingPolicy(ProfileStore()), cache=cache)
    assert cache.hits == 0 and cache.misses == 2


def test_codegen_cache_capacity_evicts():
    cache = CodegenCache(capacity=1)
    router_a, _ = _simple_router()
    FastPath(router_a, cache=cache)
    from repro.runtime.adaptive import ProfilingPolicy

    router_b, _ = _simple_router()
    FastPath(router_b, policy=ProfilingPolicy(ProfileStore()), cache=cache)
    router_c, _ = _simple_router()
    FastPath(router_c, cache=cache)  # static entry was evicted
    assert cache.misses == 3
