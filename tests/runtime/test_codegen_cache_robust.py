"""Tests for codegen-cache robustness: corrupt-entry replay fallback,
the validated disk layer, and fault-injection interactions
(repro.runtime.codegen_cache)."""

import pickle

from repro.elements import Router
from repro.elements.devices import LoopbackDevice
from repro.lang.build import parse_graph
from repro.net.packet import Packet
from repro.runtime.codegen_cache import _DISK_MAGIC, CodegenCache
from repro.runtime.fastpath import FastPath

PIPE = (
    "src :: PollDevice(eth0); c :: Counter; q :: Queue(8); "
    "dst :: ToDevice(eth1); src -> c -> q -> dst;"
)


def fresh_router():
    devices = {
        "eth0": LoopbackDevice("eth0"),
        "eth1": LoopbackDevice("eth1", tx_capacity=1 << 20),
    }
    return Router(parse_graph(PIPE), devices=devices), devices


class TestCorruptReplay:
    def test_corrupt_entry_falls_back_to_fresh_compile(self):
        cache = CodegenCache()
        router, _devices = fresh_router()
        FastPath(router, cache=cache)
        assert cache.stats()["misses"] == 1 and len(cache) == 1

        assert cache.corrupt_entries() == 1
        victim, devices = fresh_router()
        fastpath = FastPath(victim, cache=cache)
        # The poisoned replay was evicted and a clean compile stored.
        stats = cache.stats()
        assert stats["corrupt"] >= 1
        assert len(cache) == 1
        # The fallback compile actually works end to end.
        fastpath.install()
        devices["eth0"].receive_frame(b"payload")
        victim.run_tasks(2)
        assert devices["eth1"].transmitted == [b"payload"]

    def test_recompiled_entry_is_reusable(self):
        cache = CodegenCache()
        router, _devices = fresh_router()
        FastPath(router, cache=cache)
        cache.corrupt_entries()
        second, _devices = fresh_router()
        FastPath(second, cache=cache)  # evict + recompile + store
        third, _devices = fresh_router()
        FastPath(third, cache=cache)
        assert cache.stats()["hits"] >= 1

    def test_fault_wrapped_router_bypasses_cache(self):
        cache = CodegenCache()
        clean, _devices = fresh_router()
        FastPath(clean, cache=cache)
        faulted, _devices = fresh_router()
        faulted._fault_uncacheable = True
        FastPath(faulted, cache=cache)
        # Neither a hit against the clean entry nor a second store.
        assert cache.stats()["hits"] == 0
        assert len(cache) == 1

    def test_invalidate_clears_but_keeps_history(self):
        cache = CodegenCache()
        router, _devices = fresh_router()
        FastPath(router, cache=cache)
        cache.invalidate()
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["disk_entries"] == 0
        assert stats["misses"] == 1  # history survives, unlike clear()
        assert stats["invalidations"] == 1


class TestDiskLayer:
    def _saved(self, tmp_path):
        cache = CodegenCache()
        router, _devices = fresh_router()
        FastPath(router, cache=cache)
        path = tmp_path / "codegen.cache"
        assert cache.save(path) == 1
        return path

    def test_round_trip_promotes_disk_entry(self, tmp_path):
        path = self._saved(tmp_path)
        warm = CodegenCache()
        assert warm.load(path) == 1
        assert warm.stats()["disk_entries"] == 1
        router, devices = fresh_router()
        fastpath = FastPath(router, cache=warm)
        stats = warm.stats()
        assert stats["disk_hits"] == 1 and stats["hits"] == 1 and stats["misses"] == 0
        assert stats["disk_entries"] == 0 and stats["entries"] == 1  # promoted, moved
        fastpath.install()
        devices["eth0"].receive_frame(b"warm-start")
        router.run_tasks(2)
        assert devices["eth1"].transmitted == [b"warm-start"]

    def test_unreadable_file_tolerated(self, tmp_path):
        path = tmp_path / "garbage.cache"
        path.write_bytes(b"not a pickle at all")
        cache = CodegenCache()
        assert cache.load(path) == 0
        assert cache.stats()["corrupt"] == 1

    def test_missing_file_tolerated(self, tmp_path):
        cache = CodegenCache()
        assert cache.load(tmp_path / "nope.cache") == 0
        assert cache.stats()["corrupt"] == 1

    def test_truncated_file_tolerated(self, tmp_path):
        path = self._saved(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        cache = CodegenCache()
        assert cache.load(path) == 0
        assert cache.stats()["corrupt"] == 1

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "alien.cache"
        with open(path, "wb") as handle:
            pickle.dump({"magic": "some-other-tool", "records": []}, handle)
        cache = CodegenCache()
        assert cache.load(path) == 0
        assert cache.stats()["corrupt"] == 1

    def test_mangled_record_skipped_individually(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        good = dict(payload["records"][0])
        missing_field = {k: v for k, v in good.items() if k != "source"}
        bad_source = dict(good, source="def broken(:\n")
        payload["records"] = [missing_field, bad_source, good, "not-a-dict"]
        with open(path, "wb") as handle:
            pickle.dump({"magic": _DISK_MAGIC, "records": payload["records"]}, handle)
        cache = CodegenCache()
        assert cache.load(path) == 1  # only the intact record survives
        assert cache.stats()["corrupt"] == 3

    def test_corrupt_disk_entry_recovered_at_replay(self, tmp_path):
        path = self._saved(tmp_path)
        warm = CodegenCache()
        warm.load(path)
        warm.corrupt_entries()  # poison the loaded disk entry too
        router, devices = fresh_router()
        fastpath = FastPath(router, cache=warm)
        assert warm.stats()["corrupt"] >= 1
        fastpath.install()
        devices["eth0"].receive_frame(b"still-works")
        router.run_tasks(2)
        assert devices["eth1"].transmitted == [b"still-works"]
