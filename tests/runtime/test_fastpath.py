"""Unit tests for the compiled runtime fast path (repro.runtime.fastpath).

These cover the compiler's mechanics — chain generation, the compile
report, install/uninstall port swapping, source dumping, and the CLI
surface.  Behavioural equivalence against the reference interpreter
lives in tests/integration/test_fastpath_equivalence.py.
"""

import io

from repro.runtime.fastpath import ChainInfo, FastInputPort, FastOutputPort, FastPath
from repro.sim.testbed import Testbed


def build(variant="base", mode="reference", batch=False):
    testbed = Testbed(2)
    graph = testbed.variant_graph(variant)
    return testbed, testbed.build_router(graph, mode=mode, batch=batch)


class TestCompileReport:
    def test_chains_and_specialization_counted(self):
        _, (router, _) = build()
        fastpath = router.compile_fastpath()
        report = fastpath.report
        assert report.push_chains > 0
        assert report.pull_chains > 0
        assert report.inlined_calls > 0
        assert report.inlined_elements
        assert report.longest_chain >= 1
        # The IP router has classifiers and a route table: branch
        # dispatch and terminal specialization must both engage.
        assert report.branch_elements > 0
        assert report.branch_ports > report.branch_elements
        assert report.specialized_terminals > 0
        assert report.specialized_actions > 0
        assert report.metered is False

    def test_elision_counted_on_optimized_variant(self):
        # GetIPAddress(16) directly after CheckIPHeader is redundant —
        # the check already interns the destination annotation.
        _, (router, _) = build("base")
        report = router.compile_fastpath().report
        assert report.elided_elements > 0

    def test_report_formats(self):
        _, (router, _) = build("simple")
        report = router.compile_fastpath().report
        text = report.format()
        assert "push chains" in text
        as_dict = report.as_dict()
        assert as_dict["push_chains"] == report.push_chains
        assert "push_chains" in report.to_json()

    def test_batch_flag_recorded(self):
        _, (router, _) = build("simple")
        assert router.compile_fastpath(batch=True).report.batch is True

    def test_metered_compile_disables_specialization(self):
        from repro.sim.cpu import CycleMeter

        testbed = Testbed(2)
        router, _ = testbed.build_router(testbed.variant_graph("base"), meter=CycleMeter())
        report = router.compile_fastpath().report
        assert report.metered is True
        # Metered chains reconcile charges exactly, so no handler is
        # compiled away from the cost model's sight.
        assert report.specialized_actions == 0
        assert report.elided_elements == 0


class TestGeneratedSource:
    def test_source_is_dumpable_python(self):
        _, (router, _) = build()
        fastpath = router.compile_fastpath()
        assert "def _push_0" in fastpath.source
        assert fastpath.report.source_lines == len(fastpath.source.splitlines())
        sink = io.StringIO()
        fastpath.dump(sink)
        assert sink.getvalue() == fastpath.source
        compile(fastpath.source, "<fastpath>", "exec")

    def test_chain_for_describes_edges(self):
        _, (router, _) = build("simple")
        fastpath = router.compile_fastpath()
        (kind, name, port) = next(iter(fastpath.chains))
        info = fastpath.chain_for(kind, name, port)
        assert isinstance(info, ChainInfo)
        assert info.describe()
        assert fastpath.chain_for("push", "no-such-element", 0) is None


class TestInstallUninstall:
    def test_roundtrip_restores_reference_ports(self):
        _, (router, _) = build()
        before = {
            name: (list(el._output_ports), list(el._input_ports))
            for name, el in router.elements.items()
        }
        fastpath = router.compile_fastpath()
        fastpath.install()
        assert fastpath.installed
        assert any(
            isinstance(port, FastOutputPort)
            for el in router.elements.values()
            for port in el._output_ports
        )
        assert any(
            isinstance(port, FastInputPort)
            for el in router.elements.values()
            for port in el._input_ports
        )
        fastpath.uninstall()
        assert not fastpath.installed
        after = {
            name: (list(el._output_ports), list(el._input_ports))
            for name, el in router.elements.items()
        }
        for name in before:
            assert before[name][0] == after[name][0], name
            assert before[name][1] == after[name][1], name

    def test_install_is_idempotent(self):
        _, (router, _) = build("simple")
        fastpath = router.compile_fastpath()
        fastpath.install()
        ports = {name: el._output_ports for name, el in router.elements.items()}
        fastpath.install()
        for name, el in router.elements.items():
            assert el._output_ports is ports[name]
        fastpath.uninstall()
        fastpath.uninstall()

    def test_configure_switches_ports(self):
        from repro.runtime import ExecutionProfile

        _, (router, _) = build("simple")
        router.configure(ExecutionProfile.fast())
        assert router.fastpath.installed
        router.configure(ExecutionProfile.reference())
        assert not router.fastpath.installed
        assert not any(
            isinstance(port, FastOutputPort)
            for el in router.elements.values()
            for port in el._output_ports
        )


class TestConstruction:
    def test_router_mode_argument_compiles_at_build(self):
        _, (router, _) = build(mode="fast", batch=True)
        assert isinstance(router.fastpath, FastPath)
        assert router.fastpath.installed
        assert router.fastpath.batch is True

    def test_router_keeps_caller_devices_mapping(self):
        # Regression: an *empty* mapping (e.g. an auto-populating dict
        # subclass) must be kept, not replaced with a fresh {}.
        from repro.elements.runtime import Router
        from repro.graph.router import RouterGraph

        devices = {}
        router = Router(RouterGraph(), devices=devices)
        assert router.devices is devices


class TestOptimizeCliFast:
    def test_fast_flag_prints_compile_report(self, tmp_path, capsys):
        from repro.configs.iprouter import ip_router_config
        from repro.core.cli import optimize_main

        config = tmp_path / "ip.click"
        config.write_text(ip_router_config())
        out = tmp_path / "out.click"
        rc = optimize_main(["--pipeline", "paper", "--fast", str(config), "-o", str(out)])
        assert rc == 0
        assert out.read_text()
        captured = capsys.readouterr()
        assert "fast path:" in captured.err
        assert "push chains" in captured.err
