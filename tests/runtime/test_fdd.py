"""FDD mode (repro.runtime.fdd): diagram construction from classifier
trees, plan emission, profile-ordered tests, the engine's tier
lifecycle, control-plane repatching, and supervised demotion."""

import pytest

from repro.classifier.language import compile_patterns
from repro.classifier.optimize import optimize
from repro.runtime import ExecutionProfile
from repro.runtime.adaptive import AdaptiveConfig
from repro.runtime.fdd import (
    DEFAULT_NODE_BUDGET,
    FDDEngine,
    build_diagram,
    classifier_hot_path,
    router_trees,
    trees_digest,
)
from repro.sim.testbed import Testbed

EAGER = dict(threshold=48, sample=4, min_samples=12)


def _tree(patterns):
    return optimize(compile_patterns(patterns))


def _matcher(plan):
    """Compile a plan into a callable the way the chain compiler does,
    with leaves returning their output (None = drop)."""

    def leaf(leaf_id, out, pad):
        return [pad + "return %r" % (out,)]

    lines = ["def match(data):"]
    lines += plan.emit("data", "    ", leaf)
    namespace = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - test harness
    return namespace["match"]


# -- ExecutionProfile.fdd (satellite: profile surface) -----------------------


def test_profile_fdd_constructor_and_label():
    profile = ExecutionProfile.fdd()
    assert profile.mode == "fdd"
    assert profile.label == "fdd"
    assert ExecutionProfile.fdd(batch=True).label == "fdd+batch"
    assert ExecutionProfile.fdd().with_supervision().label == "fdd+supervised"


def test_profile_fdd_round_trips_as_dict():
    profile = ExecutionProfile.fdd(config=AdaptiveConfig(**EAGER), batch=True)
    summary = profile.as_dict()
    assert summary["mode"] == "fdd"
    assert summary["batch"] is True
    assert summary["adaptive"] is True
    rebuilt = ExecutionProfile(mode=summary["mode"], batch=summary["batch"])
    assert rebuilt.label == profile.label


def test_profile_rejects_unknown_mode():
    with pytest.raises(ValueError):
        ExecutionProfile(mode="fdd-turbo")


# -- build_diagram -----------------------------------------------------------


def test_constant_tree_is_single_leaf():
    plan = build_diagram(_tree(["-"]))
    assert plan.nodes == 0
    assert plan.paths == 1
    assert plan.gate == 0
    assert plan.leaves() == [(0, 0)]


def test_none_tree_has_no_plan():
    assert build_diagram(None) is None


def test_budget_fallback_returns_none():
    tree = _tree(["12/0800", "12/0806", "-"])
    assert build_diagram(tree, node_budget=0) is None
    assert build_diagram(tree) is not None


def test_gate_covers_every_load():
    tree = _tree(["12/0800", "12/0806", "-"])
    plan = build_diagram(tree)
    # The widest read ends at byte 14; shorter packets must take the
    # zero-padding matcher instead.
    assert plan.gate == 14


def test_shared_location_loads_once():
    # Three full-word rules on the same word: the second and third tests
    # reuse the first's local.
    plan = build_diagram(_tree(["0/00000000", "0/00000001", "-"]))
    assert plan.loads_saved >= 1
    lines = plan.emit("data", "", lambda leaf_id, out, pad: [pad + "pass"])
    loads = [line for line in lines if "= data[0:4]" in line]
    assert len(loads) == 1


def test_diagram_matches_tree_on_random_frames():
    import random

    rng = random.Random(7)
    patterns = ["12/0800 23/11", "12/0800 23/06", "12/0806", "-"]
    tree = _tree(patterns)
    plan = build_diagram(tree)
    match = _matcher(plan)
    for _ in range(200):
        length = rng.randrange(plan.gate, 40)
        data = bytes(rng.randrange(256) for _ in range(length))
        assert match(data) == tree.match(data)
    # ...and on frames crafted to hit each rule.
    ip = b"\x00" * 12 + b"\x08\x00" + b"\x00" * 9 + b"\x11" + b"\x00" * 10
    arp = b"\x00" * 12 + b"\x08\x06" + b"\x00" * 20
    assert match(ip) == tree.match(ip) == 0
    assert match(arp) == tree.match(arp) == 2


def test_hot_path_orients_the_fall_through():
    tree = _tree(["12/0800", "12/0806", "-"])
    arp = b"\x00" * 12 + b"\x08\x06" + b"\x00" * 6
    hot_out = tree.match(arp)
    path = classifier_hot_path(tree, hot_out, arp)
    assert path  # the exemplar really reaches its output
    plan = build_diagram(tree, hot_path=dict(path))
    # The first leaf in emission order is the hot flow's: every test on
    # the hot path emits with that side as the fall-through.
    assert plan.leaves()[0][1] == hot_out
    # Orientation never changes semantics.
    match = _matcher(plan)
    straight = _matcher(build_diagram(tree))
    for data in (arp, b"\x00" * 12 + b"\x08\x00" + b"\x00" * 6, b"\xff" * 20):
        assert match(data) == straight(data) == tree.match(data)


def test_hot_path_rejects_wrong_output():
    tree = _tree(["12/0800", "12/0806", "-"])
    arp = b"\x00" * 12 + b"\x08\x06" + b"\x00" * 6
    assert classifier_hot_path(tree, 0, arp) == ()
    assert classifier_hot_path(tree, 2, None) == ()


def test_trees_digest_tracks_content():
    testbed = Testbed(2)
    router, _ = testbed.build_router(testbed.variant_graph("base"))
    trees = router_trees(router)
    assert "c0" in trees and "c1" in trees
    digest = trees_digest(trees)
    assert digest == trees_digest(dict(trees))
    assert digest != trees_digest({k: v for k, v in trees.items() if k != "c0"})


# -- engine lifecycle --------------------------------------------------------


def _fdd_testbed(packets=512, config=None, supervised=False):
    testbed = Testbed(2)
    profile = ExecutionProfile.fdd(config=config or AdaptiveConfig(**EAGER))
    if supervised:
        profile = profile.with_supervision()
    router, devices = testbed.build_router(testbed.variant_graph("base"), profile=profile)
    for device_name, frame in testbed.evaluation_frames(packets):
        devices[device_name].receive_frame(frame)
    router.run_tasks(packets)
    return testbed, router, devices


def test_fdd_engine_compiles_diagrams_and_promotes():
    _, router, _ = _fdd_testbed()
    engine = router.adaptive
    assert isinstance(engine, FDDEngine)
    report = engine.diagram_report()
    assert report["mode"] == "fdd"
    assert report["node_budget"] == DEFAULT_NODE_BUDGET
    assert report["totals"]["diagrams"] == 2  # c0 and c1
    assert report["budget_fallbacks"] == []
    assert report["tier1"]["fdd_diagrams"] > 0
    # The eager thresholds promote the hot chains; tier 2 re-emits the
    # diagrams with profile-ordered tests.
    chains = engine.profile_report().as_dict()["chains"]
    assert any(chain["tier"] == 2 for chain in chains.values())
    assert report["tier2"] is not None
    assert report["tier2"]["fdd_diagrams"] > 0


def test_fdd_forwards_identically_to_reference():
    testbed = Testbed(2)
    router, devices = testbed.build_router(testbed.variant_graph("base"))
    for device_name, frame in testbed.evaluation_frames(512):
        devices[device_name].receive_frame(frame)
    router.run_tasks(512)
    reference = {name: list(d.transmitted) for name, d in devices.items()}
    _, _, devices = _fdd_testbed(512)
    assert {name: list(d.transmitted) for name, d in devices.items()} == reference


def test_profile_report_labels_fdd_mode():
    _, router, _ = _fdd_testbed(64)
    assert router.adaptive.profile_report().as_dict()["mode"] == "fdd"


# -- control-plane patching --------------------------------------------------


def _rules_of(router, name):
    from repro.lang.lexer import split_config_args

    return split_config_args(router.graph.elements[name].config)


def test_rules_patch_repatches_in_place():
    from repro.control import ControlPlane

    testbed, router, devices = _fdd_testbed()
    plane = ControlPlane(router)
    engine = router.adaptive
    before = sum(len(d.transmitted) for d in devices.values())
    report = plane.update_rules("c0", _rules_of(router, "c0"))
    assert report.kind == "in-place"
    assert plane.router is router  # no new router generation
    assert engine.diagram_rebuilds == 1
    assert "diagram repatch of c0" in engine.profile_report().as_dict()["deopts"]
    # The rebuilt diagrams keep forwarding.
    for device_name, frame in testbed.evaluation_frames(128):
        devices[device_name].receive_frame(frame)
    router.run_tasks(128)
    assert sum(len(d.transmitted) for d in devices.values()) > before


def test_rules_patch_changes_live_dispatch():
    """Narrowing c0 to ARP-only really drops the IP flow: the patched
    tree is live inside the rebuilt diagrams, not just in the graph."""
    from repro.control import ControlPlane

    testbed, router, devices = _fdd_testbed()
    plane = ControlPlane(router)
    rules = _rules_of(router, "c0")
    # Stock order: ARP request, ARP reply, IP, catch-all.  Point the IP
    # arm at the catch-all pattern so IP traffic from eth0 is discarded.
    narrowed = list(rules)
    narrowed[2] = "12/0805"
    report = plane.update_rules("c0", narrowed)
    assert report.kind == "in-place"
    before = sum(len(d.transmitted) for d in devices.values())
    for device_name, frame in testbed.evaluation_frames(128):
        devices[device_name].receive_frame(frame)
    router.run_tasks(128)
    # eth0's IP flow (even sequence numbers) no longer forwards; eth1's
    # does — some but not all of the traffic gets through.
    delta = sum(len(d.transmitted) for d in devices.values()) - before
    assert 0 < delta < 128


def test_route_patch_still_deopts():
    from repro.control import ControlPlane
    from repro.lang.lexer import split_config_args

    _, router, _ = _fdd_testbed()
    plane = ControlPlane(router)
    routes = split_config_args(router.graph.elements["rt"].config)
    plane.update_routes("rt", routes)
    engine = router.adaptive
    assert engine.diagram_rebuilds == 0  # compiled lookups read the live table
    deopts = engine.profile_report().as_dict()["deopts"]
    assert any("control-plane patch of rt" in reason for reason in deopts)


def test_repatch_survives_supervision():
    from repro.control import ControlPlane

    testbed, router, devices = _fdd_testbed(supervised=True)
    assert router.supervisor is not None
    plane = ControlPlane(router)
    plane.update_rules("c0", _rules_of(router, "c0"))
    assert router.supervisor is not None  # reattached after the rebuild
    before = sum(len(d.transmitted) for d in devices.values())
    for device_name, frame in testbed.evaluation_frames(128):
        devices[device_name].receive_frame(frame)
    router.run_tasks(128)
    assert sum(len(d.transmitted) for d in devices.values()) > before


# -- supervised demotion -----------------------------------------------------


def test_supervised_fdd_tier_ladder():
    """Under supervision the dynamic tier is labelled fdd: a faulting
    element demotes fdd -> fast -> reference, and the wire stays
    byte-identical to an unsupervised reference run."""
    from repro.elements import Router
    from repro.elements.devices import LoopbackDevice
    from repro.lang.build import parse_graph
    from repro.sim.faults import FaultInjector, FaultPlan

    pipe = (
        "src :: PollDevice(eth0); c :: Counter; q :: Queue(8); "
        "dst :: ToDevice(eth1); src -> c -> q -> dst;"
    )

    def build(mode, faults=None):
        devices = {
            "eth0": LoopbackDevice("eth0"),
            "eth1": LoopbackDevice("eth1", tx_capacity=1 << 20),
        }
        injector = None
        if faults:
            injector = FaultInjector(FaultPlan(faults=faults))
            devices = injector.wrap_devices(devices)
        router = Router(parse_graph(pipe), devices=devices)
        if injector is not None:
            injector.prepare_router(router)
        router.configure(ExecutionProfile(mode=mode).with_supervision())
        return router, devices

    faults = [{"kind": "element_error", "element": "c", "after": 0, "count": 2}]
    router, devices = build("fdd", faults=faults)
    guard = router.supervisor.guards[("push", "src", 0)]
    assert [name for name, _fn in guard.tiers] == ["fdd", "fast", "reference"]
    for index in range(4):
        devices["eth0"].receive_frame(b"frame-%02d" % index)
    router.run_tasks(4)
    assert guard.errors == 2
    assert guard.demotions == 2
    assert guard.tier == "reference"
    # The two faulted packets drop at the boundary; 3 and 4 forward.
    assert len(devices["eth1"].transmitted) == 2
