"""Property test: a compiled forwarding decision diagram classifies
every packet exactly like the linear Classifier dispatch (first
matching pattern wins, ``-`` matches everything, no match drops).

Random rule tables are stressed through shape mutants — overlapping
prefixes, shadowed rules, and catch-all-only tables — across seeds and
random packets, including packets below the diagram's length gate
(where the runtime falls back to the zero-padding matcher)."""

import random

from repro.classifier.language import compile_patterns, parse_pattern
from repro.classifier.optimize import optimize
from repro.runtime.fdd import build_diagram

SEEDS = [1, 2, 3, 4, 5]

OFFSETS = [0, 4, 12, 14, 20]


def linear_match(patterns, data):
    """The reference semantics: walk the rules in order, first match
    wins; tests beyond the packet read zero bytes (tree.test pads the
    tail of a short word with zeros)."""
    for index, pattern in enumerate(patterns):
        parsed = parse_pattern(pattern)
        if parsed is None:
            return index
        matched = True
        for offset, mask, value in parsed:
            chunk = bytes(data[offset : offset + 4])
            word = int.from_bytes(chunk + b"\x00" * (4 - len(chunk)), "big")
            if (word & mask) != value:
                matched = False
                break
        if matched:
            return index
    return None


def diagram_match(tree, plan, data):
    """What the compiled chain does: the diagram for packets at or over
    the gate, the zero-padding matcher below it (or when the tree blew
    the node budget)."""
    if plan is None or len(data) < plan.gate:
        return tree.match(data)

    def leaf(leaf_id, out, pad):
        return [pad + "return %r" % (out,)]

    lines = ["def match(data):"] + plan.emit("data", "    ", leaf)
    namespace = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - test harness
    return namespace["match"](data)


def random_clause(rng):
    offset = rng.choice(OFFSETS) + rng.randrange(3)
    width = rng.randrange(1, 3)
    digits = []
    for _ in range(width * 2):
        digits.append(rng.choice("0123456789abcdef?"))
    value = "".join(digits)
    if "?" not in value and rng.random() < 0.3:
        mask = "".join(rng.choice("0f8c") for _ in range(width * 2))
        return "%d/%s%%%s" % (offset, value, mask)
    return "%d/%s" % (offset, value)


def random_rule(rng):
    while True:
        clauses = [random_clause(rng) for _ in range(rng.randrange(1, 3))]
        rule = " ".join(clauses)
        try:
            parse_pattern(rule)  # two clauses can constrain a byte both ways
        except Exception:
            continue
        return rule


def random_table(rng, mutant):
    rules = [random_rule(rng) for _ in range(rng.randrange(1, 5))]
    if mutant == "overlapping":
        # The same word constrained twice with masks of different
        # width: a broad prefix rule and a narrower refinement of it.
        offset = rng.choice(OFFSETS)
        rules = ["%d/08" % offset, "%d/0800" % offset] + rules
    elif mutant == "shadowed":
        # A later duplicate of the first rule can never match.
        rules.append(rules[0])
    elif mutant == "catch-all":
        rules = ["-"]
    if rng.random() < 0.5 or mutant == "catch-all":
        rules.append("-")
    return rules


def random_packet(rng, bias_rules):
    length = rng.randrange(0, 30)
    data = bytearray(rng.randrange(256) for _ in range(length))
    # Half the packets steer toward rule values so matches actually
    # happen (uniform bytes almost never hit a 16-bit pattern).
    if bias_rules and rng.random() < 0.5 and length >= 4:
        parsed = parse_pattern(rng.choice(bias_rules))
        if parsed:
            offset, mask, value = parsed[0]
            for i in range(4):
                if offset + i < length:
                    byte_mask = (mask >> (8 * (3 - i))) & 0xFF
                    byte_value = (value >> (8 * (3 - i))) & 0xFF
                    data[offset + i] = (data[offset + i] & ~byte_mask) | byte_value
    return bytes(data)


def test_diagram_equals_linear_dispatch():
    checked = 0
    for seed in SEEDS:
        for mutant in ("plain", "overlapping", "shadowed", "catch-all"):
            rng = random.Random(seed * 1000 + hash(mutant) % 997)
            patterns = random_table(rng, mutant)
            tree = optimize(compile_patterns(patterns))
            plan = build_diagram(tree)
            concrete = [p for p in patterns if p != "-"]
            for _ in range(100):
                data = random_packet(rng, concrete)
                expected = linear_match(patterns, data)
                assert tree.match(data) == expected, (patterns, data.hex())
                assert diagram_match(tree, plan, data) == expected, (
                    patterns,
                    data.hex(),
                )
                checked += 1
    assert checked == len(SEEDS) * 4 * 100


def test_diagram_agrees_below_and_above_the_gate():
    """Straddling the gate boundary byte by byte: the fallback path
    below the gate and the diagram at/above it always agree with the
    linear dispatch (the word loads near the end are the hazard: an
    in-bounds diagram read must see the same bytes the padded
    traversal does)."""
    patterns = ["12/0800 20/11", "12/0806", "-"]
    tree = optimize(compile_patterns(patterns))
    plan = build_diagram(tree)
    assert plan is not None and plan.gate > 0
    rng = random.Random(99)
    for _ in range(50):
        base = bytes(rng.randrange(256) for _ in range(plan.gate + 4))
        for length in range(0, plan.gate + 4):
            data = base[:length]
            assert diagram_match(tree, plan, data) == linear_match(patterns, data)
