"""Property tests for the RSS-style flow hasher (repro.runtime.flowhash):
cross-process stability, fragment co-sharding, shard balance, and the
oracle's output grouping key."""

import os
import random
import subprocess
import sys

import pytest

from repro.net.headers import build_ether_udp_packet
from repro.runtime.flowhash import (
    DEFAULT_SEED,
    FlowHasher,
    flow_key,
    output_flow_key,
    shard_of,
)

SRC_ETH = "00:20:6F:00:00:01"
DST_ETH = "00:A0:C9:00:00:02"


def udp_frame(src_ip="1.0.0.2", dst_ip="2.0.0.2", sport=1000, dport=2000, ident=7):
    return build_ether_udp_packet(
        SRC_ETH,
        DST_ETH,
        src_ip,
        dst_ip,
        src_port=sport,
        dst_port=dport,
        payload=b"\x00" * 14,
        identification=ident,
    )


def as_fragment(frame, offset_units=0, more_fragments=True):
    """Mark an IPv4 frame as one fragment of its datagram (the hasher
    never validates checksums, so patching flag/offset bytes is enough)."""
    data = bytearray(frame)
    data[20] = ((0x20 if more_fragments else 0) | (offset_units >> 8)) & 0xFF
    data[21] = offset_units & 0xFF
    return bytes(data)


class TestFlowKey:
    def test_ports_in_key_for_udp(self):
        a = flow_key(udp_frame(sport=1000))
        b = flow_key(udp_frame(sport=1001))
        assert a != b

    def test_fragments_drop_ports(self):
        whole = udp_frame()
        first = as_fragment(whole, 0, more_fragments=True)
        later = as_fragment(whole, 64, more_fragments=False)
        assert flow_key(first) == flow_key(later)
        # Both exclude the port pair, so two datagrams between the same
        # hosts on different ports still co-shard their fragments.
        other_ports = as_fragment(udp_frame(sport=4242, dport=4243), 64)
        assert flow_key(later) == flow_key(other_ports)

    def test_df_bit_is_not_a_fragment(self):
        frame = bytearray(udp_frame())
        frame[20] = 0x40  # DF only
        assert flow_key(bytes(frame)) == flow_key(udp_frame())

    def test_non_ip_uses_ethernet_header(self):
        arp = bytes.fromhex("ffffffffffff00206f000001") + b"\x08\x06" + b"\x00" * 28
        assert flow_key(arp) == arp[:14]

    def test_short_frame_safe(self):
        assert flow_key(b"\x00" * 10) == b"\x00" * 10


class TestStability:
    def test_shard_choice_is_not_python_hash(self):
        """The same frames map to the same shards in subprocesses with
        different PYTHONHASHSEED values — the property that keeps the
        multiprocessing backend deterministic."""
        script = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.runtime.flowhash import shard_of\n"
            "from tests.runtime.test_flowhash import udp_frame\n"
            "print([shard_of(udp_frame(sport=1000 + i), 4) for i in range(32)])"
        ) % os.path.join(os.path.dirname(__file__), "..", "..", "src")
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.pathsep.join(
                [
                    os.path.join(os.path.dirname(__file__), "..", ".."),
                    os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                ]
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout.strip())
        assert outputs[0] == outputs[1]
        local = str([shard_of(udp_frame(sport=1000 + i), 4) for i in range(32)])
        assert outputs[0] == local

    def test_seed_changes_placement(self):
        frames = [udp_frame(sport=1000 + i) for i in range(64)]
        default = [shard_of(f, 4) for f in frames]
        reseeded = [shard_of(f, 4, seed=0x1234) for f in frames]
        assert default != reseeded

    def test_hasher_matches_module_function(self):
        hasher = FlowHasher(4)
        frame = udp_frame()
        assert hasher(frame) == shard_of(frame, 4, seed=DEFAULT_SEED)
        assert hasher.key(frame) == flow_key(frame)

    def test_single_shard_short_circuits(self):
        assert FlowHasher(1)(udp_frame()) == 0

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            FlowHasher(0)


class TestBalance:
    def test_chi_square_over_random_flows(self):
        """4000 random flows over 4 shards: the chi-square statistic
        (df=3) stays under 16.27, the p=0.001 critical value — the
        hash does not systematically favor a shard."""
        rng = random.Random(0xBA1A4CE)
        shards = 4
        counts = [0] * shards
        for _ in range(4000):
            frame = udp_frame(
                src_ip="%d.%d.%d.%d" % tuple(rng.randrange(1, 255) for _ in range(4)),
                dst_ip="%d.%d.%d.%d" % tuple(rng.randrange(1, 255) for _ in range(4)),
                sport=rng.randrange(1024, 65535),
                dport=rng.randrange(1024, 65535),
            )
            counts[shard_of(frame, shards)] += 1
        expected = sum(counts) / shards
        chi_square = sum((c - expected) ** 2 / expected for c in counts)
        assert chi_square < 16.27, "imbalanced: %r (chi2=%.2f)" % (counts, chi_square)

    def test_small_flow_population_covers_all_shards(self):
        placements = {shard_of(udp_frame(sport=1000 + i), 4) for i in range(64)}
        assert placements == {0, 1, 2, 3}


class TestOutputFlowKey:
    def test_refines_dispatch_key(self):
        """Every output group maps into exactly one dispatch flow: two
        frames with equal output keys have equal dispatch keys."""
        rng = random.Random(1)
        frames = []
        for _ in range(200):
            frame = udp_frame(
                sport=rng.randrange(1024, 2048),
                dport=rng.randrange(1024, 2048),
                ident=rng.randrange(65536),
            )
            if rng.random() < 0.3:
                frame = as_fragment(frame, rng.randrange(0, 128))
            frames.append(frame)
        by_output = {}
        for frame in frames:
            by_output.setdefault(output_flow_key(frame), set()).add(flow_key(frame))
        for group, dispatch_keys in by_output.items():
            assert len(dispatch_keys) == 1, group

    def test_fragment_trains_group_by_ip_id(self):
        a = as_fragment(udp_frame(ident=1), 0)
        b = as_fragment(udp_frame(ident=1), 64, more_fragments=False)
        c = as_fragment(udp_frame(ident=2), 0)
        assert output_flow_key(a) == output_flow_key(b)
        assert output_flow_key(a) != output_flow_key(c)

    def test_icmp_error_groups_by_inner_flow(self):
        from repro.net.headers import IPHeader, make_ether_header, make_icmp_error

        frames = []
        for sport in (1111, 2222):
            inner = udp_frame(sport=sport)[14:]
            body = make_icmp_error(11, 0, inner)  # time exceeded
            header = IPHeader(
                "9.0.0.1", "1.0.0.2", protocol=1, total_length=20 + len(body)
            )
            frames.append(
                make_ether_header(DST_ETH, SRC_ETH, 0x0800) + header.pack() + body
            )
        key_a, key_b = (output_flow_key(f) for f in frames)
        assert key_a[0] == "icmperr"
        assert key_a != key_b

    def test_non_ip_groups_by_full_bytes(self):
        arp = bytes.fromhex("ffffffffffff00206f000001") + b"\x08\x06" + b"\x00" * 28
        assert output_flow_key(arp) == ("raw", arp)
