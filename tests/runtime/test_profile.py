"""Unit tests for ExecutionProfile (repro.runtime.profile): validation,
derivation helpers, and the Router.configure/profile round trip."""

import pytest

from repro.elements import Router
from repro.lang.build import parse_graph
from repro.runtime import ExecutionProfile
from repro.runtime.adaptive import AdaptiveConfig
from repro.runtime.supervisor import SupervisorConfig

PIPE = "f :: Idle; c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard; f -> c -> q -> u -> d;"


class TestValue:
    def test_defaults_are_reference(self):
        profile = ExecutionProfile()
        assert profile.mode == "reference"
        assert not profile.batch and not profile.supervised
        assert profile == ExecutionProfile.reference()

    def test_constructors(self):
        assert ExecutionProfile.fast().mode == "fast"
        assert ExecutionProfile.fast(batch=True).batch is True
        config = AdaptiveConfig(threshold=48, sample=4, min_samples=12)
        tiered = ExecutionProfile.tiered(config=config)
        assert tiered.mode == "adaptive" and tiered.adaptive is config

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ExecutionProfile(mode="warp-speed")

    def test_batch_requires_compiled_mode(self):
        with pytest.raises(ValueError, match="batch"):
            ExecutionProfile(mode="reference", batch=True)

    def test_supervisor_config_implies_supervised(self):
        profile = ExecutionProfile.fast(supervisor=SupervisorConfig())
        assert profile.supervised is True

    def test_with_helpers(self):
        profile = ExecutionProfile.fast().with_supervision()
        assert profile.supervised
        assert profile.without_supervision() == ExecutionProfile.fast()
        # with_mode keeps the batch flavor unless reference forces it off.
        batched = ExecutionProfile.fast(batch=True)
        assert batched.with_mode("adaptive").batch is True
        assert batched.with_mode("reference").batch is False

    def test_immutability_and_equality(self):
        profile = ExecutionProfile.fast()
        with pytest.raises(Exception):
            profile.mode = "reference"
        assert profile == ExecutionProfile(mode="fast")
        assert profile != ExecutionProfile.reference()

    def test_label_and_as_dict(self):
        profile = ExecutionProfile.fast(batch=True).with_supervision()
        assert profile.label == "fast+batch+supervised"
        assert str(profile) == profile.label
        payload = profile.as_dict()
        assert payload == {
            "mode": "fast",
            "batch": True,
            "adaptive": False,
            "supervised": True,
            "supervisor": False,
            "workers": 1,
            "shard_backend": "thread",
        }


class TestRouterRoundTrip:
    def test_configure_then_read_back(self):
        router = Router(parse_graph(PIPE))
        assert router.profile == ExecutionProfile.reference()
        router.configure(ExecutionProfile.fast(batch=True))
        assert router.profile == ExecutionProfile.fast(batch=True)
        assert router.fastpath.installed and router.fastpath.batch

    def test_configure_adaptive_and_back(self):
        config = AdaptiveConfig(threshold=48, sample=4, min_samples=12)
        router = Router(parse_graph(PIPE), profile=ExecutionProfile.tiered(config=config))
        assert router.mode == "adaptive"
        assert router.profile.adaptive is config
        router.configure(ExecutionProfile.reference())
        assert router.mode == "reference"
        assert router.adaptive is None

    def test_configure_detaches_supervision_when_absent(self):
        router = Router(
            parse_graph(PIPE), profile=ExecutionProfile.fast().with_supervision()
        )
        assert router.supervisor is not None
        router.configure(ExecutionProfile.fast())
        assert router.supervisor is None

    def test_configure_returns_router(self):
        router = Router(parse_graph(PIPE))
        assert router.configure(ExecutionProfile.fast()) is router

    def test_legacy_profile_plus_kwargs_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            Router(parse_graph(PIPE), profile=ExecutionProfile.fast(), mode="fast")
