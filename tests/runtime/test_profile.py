"""Unit tests for ExecutionProfile (repro.runtime.profile): validation,
derivation helpers, and the Router.configure/profile round trip."""

import pytest

from repro.elements import Router
from repro.lang.build import parse_graph
from repro.runtime import ExecutionProfile
from repro.runtime.adaptive import AdaptiveConfig
from repro.runtime.supervisor import SupervisorConfig

PIPE = "f :: Idle; c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard; f -> c -> q -> u -> d;"


class TestValue:
    def test_defaults_are_reference(self):
        profile = ExecutionProfile()
        assert profile.mode == "reference"
        assert not profile.batch and not profile.supervised
        assert profile == ExecutionProfile.reference()

    def test_constructors(self):
        assert ExecutionProfile.fast().mode == "fast"
        assert ExecutionProfile.fast(batch=True).batch is True
        config = AdaptiveConfig(threshold=48, sample=4, min_samples=12)
        tiered = ExecutionProfile.tiered(config=config)
        assert tiered.mode == "adaptive" and tiered.adaptive is config

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ExecutionProfile(mode="warp-speed")

    def test_batch_requires_compiled_mode(self):
        with pytest.raises(ValueError, match="batch"):
            ExecutionProfile(mode="reference", batch=True)

    def test_supervisor_config_implies_supervised(self):
        profile = ExecutionProfile.fast(supervisor=SupervisorConfig())
        assert profile.supervised is True

    def test_with_helpers(self):
        profile = ExecutionProfile.fast().with_supervision()
        assert profile.supervised
        assert profile.without_supervision() == ExecutionProfile.fast()
        # with_mode keeps the batch flavor unless reference forces it off.
        batched = ExecutionProfile.fast(batch=True)
        assert batched.with_mode("adaptive").batch is True
        assert batched.with_mode("reference").batch is False

    def test_immutability_and_equality(self):
        profile = ExecutionProfile.fast()
        with pytest.raises(Exception):
            profile.mode = "reference"
        assert profile == ExecutionProfile(mode="fast")
        assert profile != ExecutionProfile.reference()

    def test_label_and_as_dict(self):
        profile = ExecutionProfile.fast(batch=True).with_supervision()
        assert profile.label == "fast+batch+supervised"
        assert str(profile) == profile.label
        payload = profile.as_dict()
        assert payload == {
            "mode": "fast",
            "batch": True,
            "adaptive": False,
            "supervised": True,
            "supervisor": False,
            "workers": 1,
            "shard_backend": "thread",
            "queue_capacity": None,
            "divide_capacity": False,
            "node_budget": None,
            "chunk_frames": None,
            "recovery": None,
        }


class TestRouterRoundTrip:
    def test_configure_then_read_back(self):
        router = Router(parse_graph(PIPE))
        assert router.profile == ExecutionProfile.reference()
        router.configure(ExecutionProfile.fast(batch=True))
        assert router.profile == ExecutionProfile.fast(batch=True)
        assert router.fastpath.installed and router.fastpath.batch

    def test_configure_adaptive_and_back(self):
        config = AdaptiveConfig(threshold=48, sample=4, min_samples=12)
        router = Router(parse_graph(PIPE), profile=ExecutionProfile.tiered(config=config))
        assert router.mode == "adaptive"
        assert router.profile.adaptive is config
        router.configure(ExecutionProfile.reference())
        assert router.mode == "reference"
        assert router.adaptive is None

    def test_configure_detaches_supervision_when_absent(self):
        router = Router(
            parse_graph(PIPE), profile=ExecutionProfile.fast().with_supervision()
        )
        assert router.supervisor is not None
        router.configure(ExecutionProfile.fast())
        assert router.supervisor is None

    def test_configure_returns_router(self):
        router = Router(parse_graph(PIPE))
        assert router.configure(ExecutionProfile.fast()) is router

    def test_legacy_profile_plus_kwargs_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            Router(parse_graph(PIPE), profile=ExecutionProfile.fast(), mode="fast")


class TestTunableFields:
    def test_queue_capacity_validation(self):
        assert ExecutionProfile(queue_capacity=64).queue_capacity == 64
        with pytest.raises(ValueError):
            ExecutionProfile(queue_capacity=0)
        with pytest.raises(TypeError):
            ExecutionProfile(queue_capacity="big")
        with pytest.raises(TypeError):
            ExecutionProfile(node_budget=True)
        with pytest.raises(ValueError):
            ExecutionProfile(chunk_frames=-1)

    def test_divide_capacity_normalized_to_bool(self):
        assert ExecutionProfile(divide_capacity=1).divide_capacity is True
        assert ExecutionProfile().divide_capacity is False

    def test_with_workers_carries_capacity_knobs(self):
        profile = ExecutionProfile.fast().with_workers(
            2, "thread", queue_capacity=64, divide_capacity=True
        )
        assert profile.workers == 2
        assert profile.queue_capacity == 64
        assert profile.divide_capacity is True
        # None keeps the current values.
        again = profile.with_workers(2)
        assert again.queue_capacity == 64 and again.divide_capacity is True

    def test_shard_local_keeps_capacity_knobs(self):
        profile = ExecutionProfile.fast().with_workers(
            2, queue_capacity=64, divide_capacity=True
        )
        local = profile.shard_local()
        assert local.workers == 1
        assert local.queue_capacity == 64 and local.divide_capacity is True


class TestWithTuning:
    PARAMS = {
        "adaptive.threshold": 128,
        "adaptive.sample": 8,
        "adaptive.min_samples": 16,
        "adaptive.guard_miss_limit": 4096,
        "adaptive.hot_fraction": 0.6,
        "adaptive.max_recompiles": 8,
        "fdd.node_budget": 320,
        "shard.queue_capacity": 128,
        "shard.chunk_frames": 1024,
        "shard.workers": 4,
        "supervisor.error_budget": 8,
        "supervisor.backoff": 64,
        "batch": True,
        "mystery.future_knob": 9,
    }

    def test_applies_engine_and_capacity_knobs(self):
        tuned = ExecutionProfile.tiered().with_tuning(self.PARAMS)
        assert tuned.adaptive.threshold == 128
        assert tuned.adaptive.sample == 8
        assert tuned.adaptive.min_samples == 16
        assert tuned.adaptive.guard_miss_limit == 4096
        assert tuned.adaptive.hot_fraction == 0.6
        assert tuned.adaptive.max_recompiles == 8
        assert tuned.node_budget == 320
        assert tuned.queue_capacity == 128
        assert tuned.chunk_frames == 1024
        assert tuned.batch is True

    def test_never_changes_construction_shape(self):
        tuned = ExecutionProfile.tiered().with_tuning(self.PARAMS)
        assert tuned.workers == 1  # shard.workers is with_workers' job
        assert tuned.supervisor is None  # unsupervised: supervisor.* inert

    def test_batch_dropped_in_reference_mode(self):
        tuned = ExecutionProfile.reference().with_tuning(self.PARAMS)
        assert tuned.batch is False and tuned.mode == "reference"

    def test_supervisor_knobs_apply_when_supervised(self):
        tuned = ExecutionProfile.tiered().with_supervision().with_tuning(self.PARAMS)
        assert tuned.supervisor is not None
        assert tuned.supervisor.error_budget == 8
        assert tuned.supervisor.backoff == 64

    def test_accepts_artifact_like_objects(self):
        class Artifact:
            params = {"adaptive.threshold": 64}

        tuned = ExecutionProfile.tiered().with_tuning(Artifact())
        assert tuned.adaptive.threshold == 64

    def test_empty_params_is_identity(self):
        profile = ExecutionProfile.tiered()
        assert profile.with_tuning({}) is profile
