"""Unit tests for the self-healing layer (repro.runtime.recovery):
config validation, the rendezvous overlay, backoff scheduling, degraded
dispatch policies, quarantine, and report determinism."""

import json

import pytest

from repro.runtime.flowhash import DEFAULT_SEED, rendezvous_shard
from repro.runtime.recovery import (
    QuarantineRecord,
    RecoveryConfig,
    RecoveryError,
    RecoveryManager,
    ReplayFrameError,
)


class _FakeHasher:
    def key(self, frame):
        return bytes(frame)[:8]


class _FakeRouter:
    """Just enough ShardedRouter surface for the manager: counters, a
    journal per shard, and scriptable revive outcomes."""

    def __init__(self, workers=4, backend="thread"):
        self.workers = workers
        self.backend = backend
        self.hasher = _FakeHasher()
        self._runs = 0
        self._journals = [[] for _ in range(workers)]
        self.revive_outcomes = {}  # index -> list of None | Exception
        self.revived = []
        self.stripped = []
        self.delivered = []
        self.redispatched = []

    def _revive_shard(self, index, singly=False):
        self.revived.append((index, singly))
        outcomes = self.revive_outcomes.get(index)
        if outcomes:
            outcome = outcomes.pop(0)
            if outcome is not None:
                raise outcome

    def _strip_journal_frame(self, index, position):
        self.stripped.append((index, tuple(position)))

    def _deliver_buffered(self, index, buffered):
        self.delivered.append((index, list(buffered)))

    def _redispatch(self, buffered):
        self.redispatched.append(list(buffered))


def _manager(workers=4, backend="thread", **knobs):
    router = _FakeRouter(workers=workers, backend=backend)
    config = RecoveryConfig(**knobs)
    return router, RecoveryManager(router, config)


class TestRecoveryConfig:
    def test_defaults(self):
        config = RecoveryConfig()
        assert config.policy == "buffer"
        assert config.restart_budget == 5
        assert config.seed == DEFAULT_SEED

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            RecoveryConfig(policy="pray")

    @pytest.mark.parametrize(
        "knobs",
        [
            {"restart_budget": 0},
            {"restart_budget": True},
            {"backoff_base": -1},
            {"backoff_factor": 0},
            {"quarantine_limit": 0},
            {"buffer_limit": 0},
            {"heartbeat_timeout": 0},
            {"watchdog_timeout": -1.0},
            {"prepare_timeout": 0},
        ],
    )
    def test_rejects_bad_knobs(self, knobs):
        with pytest.raises((TypeError, ValueError)):
            RecoveryConfig(**knobs)

    def test_as_dict_sorted_and_json_safe(self):
        payload = RecoveryConfig().as_dict()
        assert list(payload) == sorted(payload)
        json.dumps(payload)


class TestRendezvous:
    def test_deterministic_and_in_candidates(self):
        for key in (b"a", b"flow-1", b"\x00" * 8):
            target = rendezvous_shard(key, [0, 2, 3])
            assert target in (0, 2, 3)
            assert target == rendezvous_shard(key, [3, 0, 2])  # order-free

    def test_minimal_disruption(self):
        """Removing one candidate only moves the flows that were homed
        on it; everything else keeps its placement."""
        keys = [("flow-%d" % n).encode() for n in range(64)]
        before = {key: rendezvous_shard(key, [0, 1, 2, 3]) for key in keys}
        after = {key: rendezvous_shard(key, [0, 1, 3]) for key in keys}
        for key in keys:
            if before[key] != 2:
                assert after[key] == before[key]
            else:
                assert after[key] in (0, 1, 3)

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            rendezvous_shard(b"x", [])

    def test_seed_changes_placement(self):
        keys = [("flow-%d" % n).encode() for n in range(64)]
        a = [rendezvous_shard(key, [0, 1, 2, 3], seed=1) for key in keys]
        b = [rendezvous_shard(key, [0, 1, 2, 3], seed=2) for key in keys]
        assert a != b


class TestDetectionAndBackoff:
    def test_note_dead_marks_down_and_counts_latency(self):
        router, manager = _manager()
        router._runs = 5
        manager.note_killed(1)
        router._runs = 7
        manager.note_dead(1, "watchdog")
        assert manager.is_down(1)
        assert manager.down_indices() == [1]
        assert manager.healthy_indices() == [0, 2, 3]
        assert manager.detection_latency_runs == [2]
        # Second note_dead on the same shard is a no-op.
        manager.note_dead(1, "again")
        assert manager.detections == 1

    def test_first_attempt_is_immediate_then_backoff(self):
        router, manager = _manager(jitter=0)
        router.revive_outcomes[0] = [RuntimeError("still bad")] * 2
        router._runs = 3
        manager.note_dead(0, "died")
        manager.on_run_start()  # first attempt: no backoff, fails
        assert manager.restart_attempts >= 1
        health = manager._health[0]
        assert not health.up
        assert health.next_attempt_run > router._runs

    def test_backoff_schedule_is_seeded_deterministic(self):
        delays = []
        for _ in range(2):
            router, manager = _manager(
                backoff_base=2, backoff_factor=2.0, backoff_limit=16, jitter=3
            )
            health = manager._health[2]
            run_delays = []
            for attempts in (1, 2, 3, 4, 5):
                health.attempts = attempts
                manager._schedule_backoff(health)
                run_delays.append(health.next_attempt_run - router._runs)
            delays.append(run_delays)
        assert delays[0] == delays[1]
        # The deterministic part grows geometrically under the cap.
        base = [min(2 * 2.0 ** (n - 1), 16) for n in (1, 2, 3, 4, 5)]
        for delay, floor in zip(delays[0], base):
            assert floor <= delay <= floor + 3

    def test_budget_exhaustion_benches_the_shard(self):
        router, manager = _manager(restart_budget=2, jitter=0)
        router.revive_outcomes[1] = [RuntimeError("perma-broken")] * 5
        manager.note_dead(1, "died")
        assert manager.attempt_restart(1) is False
        assert manager.attempt_restart(1) is False
        assert manager.benched_indices() == [1]
        assert manager.attempt_restart(1) is False  # benched: no more tries
        report = manager.report()
        assert report.benched == [1]
        assert "perma-broken" in report.bench_reasons[1]


class TestDegradedDispatch:
    def test_healthy_home_passes_through(self):
        router, manager = _manager()
        assert manager.route_frame(2, "eth0", b"frame") == 2
        assert manager.frames_resteered == 0

    def test_fail_fast_raises(self):
        router, manager = _manager(policy="fail-fast")
        manager.note_dead(1, "died")
        with pytest.raises(RecoveryError, match="fail-fast"):
            manager.route_frame(1, "eth0", b"frame")

    def test_buffer_holds_until_recovery(self):
        router, manager = _manager(policy="buffer")
        manager.note_dead(1, "died")
        assert manager.route_frame(1, "eth0", b"one") is None
        assert manager.route_frame(1, "eth1", b"two") is None
        assert manager.frames_buffered == 2
        manager.attempt_restart(1)
        assert manager.is_down(1) is False
        assert router.delivered == [(1, [("eth0", b"one"), ("eth1", b"two")])]

    def test_buffer_limit_drops(self):
        router, manager = _manager(policy="buffer", buffer_limit=1)
        manager.note_dead(0, "died")
        assert manager.route_frame(0, "eth0", b"one") is None
        assert manager.route_frame(0, "eth0", b"two") is None
        assert manager.frames_buffered == 1
        assert manager.buffer_drops == 1

    def test_resteer_targets_survivor_and_records_flow(self):
        router, manager = _manager(policy="resteer")
        manager.note_dead(1, "died")
        target = manager.route_frame(1, "eth0", b"flow-bytes")
        assert target in (0, 2, 3)
        assert manager.frames_resteered == 1
        assert router.hasher.key(b"flow-bytes") in manager.affected_flows
        # Sticky: the same flow re-homes to the same survivor.
        assert manager.route_frame(1, "eth0", b"flow-bytes") == target

    def test_resteer_with_no_survivors_raises(self):
        router, manager = _manager(workers=1, policy="resteer")
        manager.note_dead(0, "died")
        with pytest.raises(RecoveryError, match="no healthy"):
            manager.route_frame(0, "eth0", b"frame")

    def test_benched_shard_resteers_even_under_buffer_policy(self):
        router, manager = _manager(policy="buffer", restart_budget=1, jitter=0)
        router.revive_outcomes[1] = [RuntimeError("broken")] * 3
        manager.note_dead(1, "died")
        assert manager.route_frame(1, "eth0", b"held") is None  # buffered
        manager.attempt_restart(1)  # exhausts the budget -> bench
        assert manager.benched_indices() == [1]
        # The bench re-dispatched the held frames...
        assert router.redispatched == [[("eth0", b"held")]]
        # ...and new frames re-steer from now on.
        assert manager.route_frame(1, "eth0", b"fresh") in (0, 2, 3)


class TestQuarantine:
    def test_replay_killer_is_quarantined_and_stripped(self):
        router, manager = _manager(quarantine_limit=2, jitter=0)
        killer = ReplayFrameError(1, "eth0", b"poison", (3, 0), "armed poison frame")
        router.revive_outcomes[1] = [killer, killer]  # two kills, then clean
        manager.note_dead(1, "died")
        assert manager.attempt_restart(1) is False  # kill 1: backoff
        assert manager.attempt_restart(1) is True  # kill 2: quarantine + heal
        assert router.stripped == [(1, (3, 0))]
        assert b"poison" in manager.quarantined
        [record] = manager.quarantine_records
        assert record.kills == 2 and record.shard == 1
        assert record.frame_hex == b"poison".hex()
        # Future dispatch of the quarantined frame is dropped.
        assert manager.route_frame(1, "eth0", b"poison") is None
        assert manager.quarantine_drops == 1

    def test_process_backend_escalates_to_singly_replay(self):
        router, manager = _manager(backend="process", jitter=0)
        router.revive_outcomes[2] = [RuntimeError("died mid-batch"), None]
        manager.note_dead(2, "died")
        assert manager.attempt_restart(2) is True
        # Batch replay failed once, then the frame-granular retry ran.
        assert router.revived == [(2, False), (2, True)]

    def test_quarantine_record_as_dict_sorted(self):
        record = QuarantineRecord(1, "eth0", b"\x01\x02", (4, 2), 2, "boom")
        payload = record.as_dict()
        assert list(payload) == sorted(payload)
        assert payload["frame_hex"] == "0102"
        assert payload["position"] == [4, 2]
        json.dumps(payload)


class TestRecoveryReport:
    def test_as_dict_sorted_and_deterministic(self):
        router, manager = _manager(policy="resteer")
        manager.note_dead(3, "died")
        manager.route_frame(3, "eth0", b"frame")
        manager.attempt_restart(3)
        manager.note_recommitted()
        payload = manager.report().as_dict()
        assert list(payload) == sorted(payload)
        assert payload["detections"] == 1
        assert payload["restarts"] == 1
        assert payload["frames_resteered"] == 1
        assert payload["affected_flows"] == 1
        assert payload["updates_recommitted"] == 1
        assert json.dumps(payload, sort_keys=True) == json.dumps(payload)

    def test_format_mentions_policy_and_counts(self):
        router, manager = _manager(policy="resteer")
        manager.note_dead(0, "died")
        manager.attempt_restart(0)
        text = manager.report().format()
        assert "resteer" in text
        assert "1 detection(s)" in text
        assert "1 restart(s)" in text
