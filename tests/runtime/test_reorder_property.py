"""Property test: branch emission order is semantics-free.

The adaptive tier reorders a classifier's fused dispatch arms
(hottest first) — an optimization that is only sound if classification
is decided by the matcher, never by the order the arms are emitted in.
This drives randomized patterns and traffic through every layer that
dispatches on a classifier output — the interpreted tree, the compiled
matcher, and the fast path's fused dispatch under randomly permuted
``branch_order`` policies — and requires identical classification."""

import random

import pytest

from repro.classifier.compile import compiled_function_for
from repro.classifier.language import PatternError, compile_patterns
from repro.classifier.optimize import optimize
from repro.elements.devices import LoopbackDevice
from repro.elements.runtime import Router
from repro.lang.build import parse_graph
from repro.runtime.fastpath import ChainPolicy, FastPath

SEEDS = [7, 23, 101, 4096]


def random_patterns(rng, max_patterns=5):
    """A random Classifier configuration: byte-equality clauses at random
    offsets, with occasional wildcards and masks, plus a catch-all."""
    patterns = []
    for _ in range(rng.randint(1, max_patterns)):
        clauses = []
        for _ in range(rng.randint(1, 3)):
            offset = rng.randrange(0, 24)
            width = rng.choice([1, 1, 2])
            value = "".join(rng.choice("0123456789abcdef?") for _ in range(width * 2))
            if "?" not in value and rng.random() < 0.3:
                mask = "".join(rng.choice("0f8c3") for _ in range(width * 2))
                clauses.append("%d/%s%%%s" % (offset, value, mask))
            else:
                clauses.append("%d/%s" % (offset, value))
        patterns.append(" ".join(clauses))
    patterns.append("-")
    return patterns


def random_frames(rng, patterns, count=160):
    """Random traffic, biased so every pattern's constraints are
    sometimes satisfied (pure noise rarely hits narrow patterns)."""
    frames = []
    for _ in range(count):
        length = rng.randint(0, 32)
        frame = bytearray(rng.randrange(256) for _ in range(length))
        if patterns and rng.random() < 0.7:
            # Imprint one pattern's constraints onto the noise.
            chosen = rng.choice(patterns[:-1]) if len(patterns) > 1 else None
            if chosen:
                for clause in chosen.split():
                    pos, _, rest = clause.partition("/")
                    value_text, _, _ = rest.partition("%")
                    pos = int(pos)
                    for i in range(0, len(value_text), 2):
                        byte_index = pos + i // 2
                        if byte_index >= len(frame):
                            frame.extend(bytearray(byte_index - len(frame) + 1))
                        hi, lo = value_text[i], value_text[i + 1]
                        byte = frame[byte_index]
                        if hi != "?":
                            byte = (int(hi, 16) << 4) | (byte & 0x0F)
                        if lo != "?":
                            byte = (byte & 0xF0) | int(lo, 16)
                        frame[byte_index] = byte
        frames.append(bytes(frame))
    return frames


@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_matcher_equals_interpreted_tree(seed):
    rng = random.Random(seed)
    for _ in range(8):
        patterns = random_patterns(rng)
        try:
            tree = optimize(compile_patterns(patterns))
        except PatternError:
            continue  # contradictory random constraints — not a config
        matcher = compiled_function_for(tree)
        for frame in random_frames(rng, patterns, count=80):
            assert matcher(frame) == tree.match(frame), (patterns, frame)


class PermutedPolicy(ChainPolicy):
    """Static emission with every fused dispatch's arms in a fixed
    random order — the degrees of freedom tier 2 exercises, without
    guards or pruning, so any output difference is an ordering bug."""

    tag = "permuted"

    def __init__(self, rng):
        self._rng = rng

    def cache_key(self):
        return None  # never cached: the permutation is per-instance

    def branch_order(self, element, nports):
        order = list(range(nports))
        self._rng.shuffle(order)
        return order


def classifier_router(patterns):
    arms = "".join(
        "cl[%d] -> out%d :: Counter -> Discard;\n" % (i, i) for i in range(len(patterns))
    )
    text = (
        "src :: PollDevice(eth0) -> cl :: Classifier(%s);\n%s"
        % (", ".join(patterns), arms)
    )
    devices = {"eth0": LoopbackDevice("eth0")}
    router = Router(parse_graph(text, "<reorder>"), devices=devices)
    return router, devices


def drive(router, devices, frames):
    for frame in frames:
        devices["eth0"].receive_frame(frame)
    router.run_tasks(len(frames))
    return [
        element.count
        for name, element in sorted(router.elements.items())
        if name.startswith("out")
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_fused_dispatch_order_is_semantics_free(seed):
    rng = random.Random(seed)
    for _ in range(4):
        patterns = random_patterns(rng)
        try:
            compile_patterns(patterns)
        except PatternError:
            continue
        frames = random_frames(rng, patterns)

        router, devices = classifier_router(patterns)
        reference = drive(router, devices, frames)
        assert sum(reference) > 0, "traffic never reached the counters"

        for _ in range(3):
            router, devices = classifier_router(patterns)
            fastpath = FastPath(router, policy=PermutedPolicy(rng))
            fastpath.install()
            permuted = drive(router, devices, frames)
            assert permuted == reference, patterns
