"""Unit and equivalence tests for the sharded data plane
(repro.runtime.shard): SPSC handoff, profile plumbing, dispatch,
transactional control fan-out, crash replay, and meter reconciliation."""

import threading

import pytest

from repro.control import ControlPlaneError
from repro.core.toolchain import save_config
from repro.elements.devices import LoopbackDevice
from repro.elements.runtime import Router, build_router
from repro.errors import ClickSemanticError
from repro.lang.build import parse_graph
from repro.runtime import ExecutionProfile, ShardedRouter, SPSCQueue
from repro.runtime.shard import ShardReport
from repro.sim.cpu import CycleMeter
from repro.sim.testbed import HOST_ETHERS, Testbed, host_ip
from repro.verify.oracle import sharded_transmit_difference


def sharded_testbed(workers, backend="thread", meter=None, journal=None, variant="base"):
    """A live iprouter plane: ShardedRouter above 1 worker, seeded ARP."""
    testbed = Testbed(2)
    graph = testbed.variant_graph(variant)
    devices = {
        interface.device: LoopbackDevice(interface.device, tx_capacity=1 << 30)
        for interface in testbed.interfaces
    }
    profile = ExecutionProfile.fast(batch=True)
    if workers > 1:
        profile = profile.with_workers(workers, backend)
    router = build_router(graph, meter=meter, devices=devices, profile=profile)
    if journal is not None and workers > 1:
        router._journal_flag = journal
    for index in range(2):
        router.find("arpq%d" % index).insert(host_ip(index), HOST_ETHERS[index])
    return testbed, router, devices


def drive(testbed, router, devices, packets, offset=0):
    frames = testbed.evaluation_frames(packets + offset)[offset:]
    for name, frame in frames:
        devices[name].receive_frame(frame)
    router.run_tasks(packets // 8 + 16)


def transmitted_hex(devices):
    return {
        name: [bytes(f).hex() for f in device.transmitted]
        for name, device in sorted(devices.items())
    }


class TestSPSCQueue:
    def test_fifo_order(self):
        queue = SPSCQueue(capacity=8)
        for i in range(5):
            queue.put(i)
        assert [queue.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_high_water_tracks_peak(self):
        queue = SPSCQueue(capacity=8)
        for i in range(6):
            queue.put(i)
        for _ in range(6):
            queue.get()
        assert queue.high_water == 6
        assert len(queue) == 0

    def test_bounded_put_blocks_until_get(self):
        queue = SPSCQueue(capacity=2)
        queue.put("a")
        queue.put("b")
        done = threading.Event()

        def producer():
            queue.put("c")  # must block until the consumer drains one
            done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        assert not done.wait(0.05)
        assert queue.get() == "a"
        assert done.wait(2.0)
        thread.join()


class TestProfilePlumbing:
    def test_plain_router_refuses_workers(self):
        graph = parse_graph(
            "f :: Idle; c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard;"
            " f -> c -> q -> u -> d;"
        )
        with pytest.raises(ValueError, match="ShardedRouter"):
            Router(graph).configure(ExecutionProfile.fast().with_workers(2))

    def test_build_router_dispatches_on_workers(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            assert router.is_sharded and isinstance(router, ShardedRouter)
            assert router.workers == 2 and router.backend == "thread"
        finally:
            router.close()

    def test_profile_round_trip(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            drive(testbed, router, devices, 16)
            profile = router.profile
            assert profile.workers == 2
            assert profile.mode == "fast" and profile.batch
        finally:
            router.close()

    def test_resharding_live_plane_raises(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            drive(testbed, router, devices, 16)
            with pytest.raises(ValueError, match="reshard"):
                router.configure(ExecutionProfile.fast().with_workers(4))
        finally:
            router.close()

    def test_unflattened_graph_rejected(self):
        graph = parse_graph(
            "elementclass Box { input -> Counter -> output; }"
            " f :: Idle; b :: Box; d :: Discard; f -> b -> d;"
        )
        with pytest.raises(ClickSemanticError, match="flatten"):
            ShardedRouter(graph)


class TestDispatchAndEquivalence:
    def test_dispatch_counts_cover_all_frames(self):
        testbed, router, devices = sharded_testbed(3)
        try:
            drive(testbed, router, devices, 120)
            report = router.report()
            assert sum(report.dispatched) == 120
            assert len(report.dispatched) == 3
            # The evaluation workload has enough flows for every shard.
            assert all(count > 0 for count in report.dispatched)
        finally:
            router.close()

    def test_thread_plane_matches_single_shard(self):
        testbed, single, single_devices = sharded_testbed(1)
        drive(testbed, single, single_devices, 200)
        for workers in (2, 4):
            testbed2, router, devices = sharded_testbed(workers)
            try:
                drive(testbed2, router, devices, 200)
                diff = sharded_transmit_difference(
                    transmitted_hex(single_devices), transmitted_hex(devices)
                )
                assert diff is None, "%d workers: %s" % (workers, diff)
            finally:
                router.close()

    def test_fanout_insert_reaches_every_shard(self):
        # Without the fan-out, shards missing the ARP entry would send
        # ARP queries instead of forwarding — caught by equivalence
        # above, pinpointed here: all data packets must be forwarded.
        testbed, router, devices = sharded_testbed(4)
        try:
            drive(testbed, router, devices, 160)
            total = sum(len(d.transmitted) for d in devices.values())
            assert total == 160
        finally:
            router.close()

    def test_find_unknown_element_is_none(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            assert router.find("nope") is None
            assert router.find("arpq0") is not None
        finally:
            router.close()


class TestControlFanout:
    def test_update_inplace_commits_on_all_shards(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            drive(testbed, router, devices, 64)
            text = save_config(router.graph)
            old = router.graph.elements["rt"].config
            new = text.replace(
                old, "1.0.0.1/32 0, 2.0.0.1/32 0, 2.0.0.0/8 2, 1.0.0.0/8 1"
            )
            report = router.apply_update(new)
            assert report.kind == "in-place"
            drive(testbed, router, devices, 64, offset=64)
            total = sum(len(d.transmitted) for d in devices.values())
            assert total == 128
            assert router.report().updates == 1
        finally:
            router.close()

    def test_rejected_update_leaves_all_shards_intact(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            drive(testbed, router, devices, 64)
            text = save_config(router.graph)
            old = router.graph.elements["rt"].config
            bad = text.replace(old, "999.999.0.1/24 0")
            with pytest.raises(ControlPlaneError):
                router.apply_update(bad)
            # Every shard still runs the old table.
            drive(testbed, router, devices, 64, offset=64)
            total = sum(len(d.transmitted) for d in devices.values())
            assert total == 128
        finally:
            router.close()

    def test_hotswap_all_preserves_service(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            drive(testbed, router, devices, 64)
            router.hotswap_all(save_config(router.graph))
            drive(testbed, router, devices, 64, offset=64)
            total = sum(len(d.transmitted) for d in devices.values())
            assert total == 128
        finally:
            router.close()


class TestCrashReplay:
    def test_replay_rebuilds_identical_state(self):
        testbed, router, devices = sharded_testbed(2, journal=True)
        try:
            drive(testbed, router, devices, 100)
            before = transmitted_hex(devices)
            router.crash_worker(1)
            router.run_tasks(4)
            assert transmitted_hex(devices) == before
            drive(testbed, router, devices, 60, offset=100)
            total = sum(len(d.transmitted) for d in devices.values())
            assert total == 160
            report = router.report()
            assert report.crashes == 1 and report.replays == 1
        finally:
            router.close()

    def test_crash_without_journal_raises(self):
        testbed, router, devices = sharded_testbed(2, journal=False)
        try:
            drive(testbed, router, devices, 16)
            with pytest.raises(RuntimeError, match="journal"):
                router.crash_worker(0)
        finally:
            router.close()


class TestReconciliation:
    def test_meter_summary_absorb_is_associative(self):
        meters = []
        for packets in (40, 80):
            testbed = Testbed(2)
            meter = CycleMeter()
            router, devices = testbed.build_router(
                testbed.variant_graph("base"), meter=meter
            )
            drive(testbed, router, devices, packets)
            meters.append(meter.summary())
        a, b = meters
        left = CycleMeter().absorb(a).absorb(b).summary()
        right = CycleMeter().absorb(b).absorb(a).summary()
        assert left == right
        assert left["packets_seen"] == a["packets_seen"] + b["packets_seen"]

    def test_parent_meter_absorbs_shard_work(self):
        meter = CycleMeter()
        testbed, router, devices = sharded_testbed(2, meter=meter)
        try:
            drive(testbed, router, devices, 80)
        finally:
            router.close()
        summary = meter.summary()
        assert summary["packets_seen"] >= 80
        assert summary["forwarding"] > 0

    def test_merged_counters_sum_numeric(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            drive(testbed, router, devices, 100)
            counters = router.merged_counters()
        finally:
            router.close()
        received = sum(
            value
            for key, value in counters.items()
            if key.endswith(".received") and isinstance(value, int)
        )
        assert received == 100

    def test_report_survives_close(self):
        testbed, router, devices = sharded_testbed(2)
        drive(testbed, router, devices, 40)
        router.close()
        report = router.report()
        assert isinstance(report, ShardReport)
        assert report.flushed == 40
        payload = report.as_dict()
        assert payload["workers"] == 2 and payload["backend"] == "thread"
        assert "shard" in report.format()

    def test_close_is_idempotent(self):
        testbed, router, devices = sharded_testbed(2)
        drive(testbed, router, devices, 8)
        router.close()
        router.close()
        assert router.run_tasks(1) == 0  # scheduling a retired plane is a no-op
        with pytest.raises(RuntimeError, match="retired"):
            router.bump_arp_epochs()  # control ops are not


class TestProcessBackend:
    def test_process_plane_matches_single_shard(self):
        testbed, single, single_devices = sharded_testbed(1)
        drive(testbed, single, single_devices, 120)
        testbed2, router, devices = sharded_testbed(2, backend="process")
        try:
            assert router.backend == "process"
            drive(testbed2, router, devices, 120)
            diff = sharded_transmit_difference(
                transmitted_hex(single_devices), transmitted_hex(devices)
            )
            assert diff is None, diff
            report = router.report()
            assert report.backend == "process"
            assert sum(report.dispatched) == 120
        finally:
            router.close()

    def test_process_crash_replay(self):
        testbed, router, devices = sharded_testbed(2, backend="process", journal=True)
        try:
            drive(testbed, router, devices, 80)
            before = transmitted_hex(devices)
            router.crash_worker(0)
            router.run_tasks(4)
            assert transmitted_hex(devices) == before
            drive(testbed, router, devices, 40, offset=80)
            total = sum(len(d.transmitted) for d in devices.values())
            assert total == 120
        finally:
            router.close()


class TestQueueCapacityKnob:
    def test_spsc_capacity_from_profile(self):
        """with_workers(queue_capacity=...) reaches the handoff queues."""
        testbed = Testbed(2)
        graph = testbed.variant_graph("base")
        devices = {
            interface.device: LoopbackDevice(interface.device, tx_capacity=1 << 30)
            for interface in testbed.interfaces
        }
        profile = ExecutionProfile.fast(batch=True).with_workers(2, queue_capacity=8)
        router = build_router(graph, devices=devices, profile=profile)
        try:
            drive(testbed, router, devices, 16)
            assert [shard.queue._capacity for shard in router._shards] == [8, 8]
        finally:
            router.close()

    def test_default_capacity_is_validated_default(self):
        from repro.runtime.shard import DEFAULT_QUEUE_CAPACITY

        assert DEFAULT_QUEUE_CAPACITY == 256
        testbed, router, devices = sharded_testbed(2)
        try:
            drive(testbed, router, devices, 16)
            capacities = {shard.queue._capacity for shard in router._shards}
            assert capacities == {DEFAULT_QUEUE_CAPACITY}
        finally:
            router.close()

    def test_live_capacity_change_raises(self):
        testbed, router, devices = sharded_testbed(2)
        try:
            drive(testbed, router, devices, 16)
            narrower = router.profile.with_workers(2, queue_capacity=4)
            with pytest.raises(ValueError, match="construction-time"):
                router.configure(narrower)
        finally:
            router.close()


class TestDivideQueueCapacities:
    from repro.runtime.shard import divide_queue_capacities

    divide = staticmethod(divide_queue_capacities)
    GRAPH = (
        "src :: PollDevice(eth0); ctr :: Counter; q :: Queue(5); "
        "dst :: ToDevice(eth1); src -> ctr -> q -> dst;"
    )

    def test_floor_share_remainder_to_low_indices(self):
        graph = parse_graph(self.GRAPH, "<divide>")
        shard0 = self.divide(graph, 0, 2)
        shard1 = self.divide(graph, 1, 2)
        assert shard0.elements["q"].config.strip() == "3"
        assert shard1.elements["q"].config.strip() == "2"
        # The caller's graph stays the undivided source of truth.
        assert graph.elements["q"].config.strip() == "5"

    def test_non_queue_elements_untouched(self):
        graph = parse_graph(self.GRAPH, "<divide>")
        shard0 = self.divide(graph, 0, 2)
        assert (shard0.elements["ctr"].config or "").strip() == (
            graph.elements["ctr"].config or ""
        ).strip()
        assert shard0.elements["src"].config.strip() == "eth0"

    def test_single_worker_is_identity(self):
        graph = parse_graph(self.GRAPH, "<divide>")
        assert self.divide(graph, 0, 1) is graph

    def test_capacity_below_workers_raises(self):
        graph = parse_graph(
            "src :: PollDevice(eth0); q :: Queue(1); dst :: ToDevice(eth1); "
            "src -> q -> dst;",
            "<divide>",
        )
        with pytest.raises(ClickSemanticError, match="divide_capacity"):
            self.divide(graph, 0, 2)

    def test_front_drop_queue_divides_too(self):
        graph = parse_graph(
            "src :: PollDevice(eth0); q :: FrontDropQueue(4); "
            "dst :: ToDevice(eth1); src -> q -> dst;",
            "<divide>",
        )
        shard0 = self.divide(graph, 0, 2)
        shard1 = self.divide(graph, 1, 2)
        assert shard0.elements["q"].config.strip() == "2"
        assert shard1.elements["q"].config.strip() == "2"
