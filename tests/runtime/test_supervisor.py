"""Tests for supervised execution: error boundaries, tiered demotion,
the circuit breaker with exponential re-promotion backoff, and the task
watchdog (repro.runtime.supervisor)."""

import json

import pytest

from repro.elements import Router, hotswap_router
from repro.elements.devices import LoopbackDevice
from repro.lang.build import parse_graph
from repro.runtime import ExecutionProfile
from repro.runtime.fastpath import FastOutputPort
from repro.runtime.supervisor import (
    SupervisedOutputPort,
    Supervisor,
    SupervisorConfig,
    SupervisorError,
)
from repro.sim.faults import FaultInjector, FaultPlan

PIPE = (
    "src :: PollDevice(eth0); c :: Counter; q :: Queue(8); "
    "dst :: ToDevice(eth1); src -> c -> q -> dst;"
)


def build(mode="fast", batch=False, faults=None, config=None):
    """A supervised two-device pipeline, optionally with element faults
    wired in (prepared before compile, as the chaos harness does)."""
    devices = {
        "eth0": LoopbackDevice("eth0"),
        "eth1": LoopbackDevice("eth1", tx_capacity=1 << 20),
    }
    injector = None
    if faults:
        injector = FaultInjector(FaultPlan(faults=faults))
        devices = injector.wrap_devices(devices)
    router = Router(parse_graph(PIPE), devices=devices)
    if injector is not None:
        injector.prepare_router(router)
    router.configure(ExecutionProfile(mode=mode, batch=batch).with_supervision(config))
    return router, devices, router.supervisor


def feed(devices, count, start=0):
    for index in range(start, start + count):
        devices["eth0"].receive_frame(b"frame-%02d" % index)


class TestBoundaries:
    def test_fast_demotes_and_drops_only_faulted_packet(self):
        router, devices, supervisor = build(
            mode="fast",
            faults=[{"kind": "element_error", "element": "c", "after": 1, "count": 1}],
        )
        feed(devices, 3)
        router.run_tasks(4)
        guard = supervisor.guards[("push", "src", 0)]
        assert guard.errors == 1
        assert guard.demotions == 1
        assert guard.tier == "reference"
        assert guard.breaker == "half-open"
        # Exactly the faulted packet dropped; the router kept serving.
        assert [f for f in devices["eth1"].transmitted] == [b"frame-00", b"frame-02"]
        assert "InjectedFault" in guard.last_error

    def test_adaptive_walks_full_tier_stack(self):
        router, devices, supervisor = build(
            mode="adaptive",
            faults=[{"kind": "element_error", "element": "c", "after": 0, "count": 2}],
        )
        guard = supervisor.guards[("push", "src", 0)]
        assert [name for name, _fn in guard.tiers] == ["adaptive", "fast", "reference"]
        feed(devices, 4)
        router.run_tasks(4)
        assert guard.errors == 2
        assert guard.demotions == 2
        assert guard.tier == "reference"
        assert len(devices["eth1"].transmitted) == 2  # packets 3 and 4

    def test_breaker_opens_after_budget(self):
        router, devices, supervisor = build(
            mode="fast",
            faults=[{"kind": "element_error", "element": "c", "after": 0, "count": 100}],
            config=SupervisorConfig(error_budget=2),
        )
        feed(devices, 5)
        router.run_tasks(4)
        guard = supervisor.guards[("push", "src", 0)]
        assert guard.breaker == "open"
        assert guard.errors == 5
        assert devices["eth1"].transmitted == []
        report = supervisor.report()
        assert report.totals["open_breakers"] == 1
        assert report.totals["chain_errors"] == 5

    def test_repromotion_after_clean_streak_with_backoff(self):
        router, devices, supervisor = build(
            mode="fast",
            faults=[{"kind": "element_error", "element": "c", "after": 1, "count": 1}],
            config=SupervisorConfig(backoff=2, backoff_factor=2.0),
        )
        guard = supervisor.guards[("push", "src", 0)]
        feed(devices, 2)
        router.run_tasks(2)
        assert guard.tier == "reference"
        assert guard.need == 4  # backoff stretched 2 -> 4 by the error
        feed(devices, 5, start=2)
        router.run_tasks(4)
        assert guard.repromotions == 1
        assert guard.tier == "fast"
        assert guard.breaker == "closed"
        assert len(devices["eth1"].transmitted) == 6  # only the faulted packet lost

    def test_pull_boundary_demotes_without_losing_packet(self):
        router, devices, supervisor = build(mode="fast")
        guard = supervisor.guards[("pull", "dst", 0)]

        def boom():
            raise RuntimeError("pull boom")

        guard.fn = boom
        feed(devices, 1)
        router.run_tasks(1)  # the poisoned pull fails; boundary contains it
        assert guard.errors == 1
        assert guard.tier == "reference"
        router.run_tasks(2)  # reference tier drains the still-queued packet
        assert devices["eth1"].transmitted == [b"frame-00"]

    def test_batch_mode_scalarized_boundary(self):
        router, devices, supervisor = build(
            mode="fast",
            batch=True,
            faults=[{"kind": "element_error", "element": "c", "after": 2, "count": 1}],
        )
        feed(devices, 6)
        router.run_tasks(4)
        # One error mid-burst costs exactly one packet, never the tail.
        assert len(devices["eth1"].transmitted) == 5
        assert supervisor.guards[("push", "src", 0)].errors == 1

    def test_reference_mode_boundaries_on_task_ports(self):
        router, devices, supervisor = build(
            mode="reference",
            faults=[{"kind": "element_error", "element": "c", "after": 1, "count": 1}],
        )
        assert all(key[1] in ("src", "dst") for key in supervisor.guards)
        feed(devices, 3)
        router.run_tasks(4)
        assert devices["eth1"].transmitted == [b"frame-00", b"frame-02"]
        assert supervisor.guards[("push", "src", 0)].errors == 1


class TestLifecycle:
    def test_attach_detach_restores_ports(self):
        router, devices, _supervisor = build(mode="fast")
        assert isinstance(router["src"]._output_ports[0], SupervisedOutputPort)
        router.detach_supervisor()
        assert isinstance(router["src"]._output_ports[0], FastOutputPort)
        assert router.supervisor is None
        feed(devices, 2)
        router.run_tasks(2)
        assert len(devices["eth1"].transmitted) == 2

    def test_supervision_survives_mode_change(self):
        router, devices, _supervisor = build(mode="fast")
        router.configure(router.profile.with_mode("reference"))
        assert router.supervisor is not None and router.supervisor.attached
        feed(devices, 2)
        router.run_tasks(2)
        assert len(devices["eth1"].transmitted) == 2
        router.configure(router.profile.with_mode("fast"))
        assert router.supervisor is not None
        feed(devices, 2, start=2)
        router.run_tasks(2)
        assert len(devices["eth1"].transmitted) == 4

    def test_double_attach_refused(self):
        router, _devices, _supervisor = build(mode="fast")
        with pytest.raises(SupervisorError):
            router.supervisor.attach()

    def test_metered_router_refused(self):
        router = Router(parse_graph("f :: Idle; d :: Discard; f -> d;"))
        router.meter = object()
        with pytest.raises(SupervisorError):
            Supervisor(router)


class TestTasks:
    def test_task_backstop_keeps_router_alive(self):
        router, devices, supervisor = build(mode="reference")

        def explode():
            raise RuntimeError("driver bug")

        router["src"].run_task = explode
        feed(devices, 2)
        router.run_tasks(3)  # must not raise
        assert supervisor.task_error_count == 3
        assert supervisor.task_errors[0][0] == "src"
        assert "driver bug" in supervisor.task_errors[0][1]

    def test_watchdog_benches_stuck_task(self):
        router, _devices, supervisor = build(
            mode="reference",
            config=SupervisorConfig(watchdog_limit=3, watchdog_cooldown=5),
        )

        class StuckTask:
            name = "stuck"
            count = 0  # progress counter that never moves

            def run_task(self):
                return True  # claims work forever

        stuck = StuckTask()
        router._tasks.append(stuck)
        router.run_tasks(4)  # trips on the 4th pass (3 flat repeats)
        assert supervisor.watchdog_events
        event = supervisor.watchdog_events[0]
        assert event["task"] == "stuck"
        assert supervisor.report().totals["watchdog_trips"] >= 1
        # Benched: the cooldown passes skip the task entirely.
        calls_before = supervisor._task_states["stuck"].benched
        assert calls_before == 5
        router.run_tasks(2)
        assert supervisor._task_states["stuck"].benched == 3

    def test_progressing_task_never_trips(self):
        router, devices, supervisor = build(mode="fast")
        feed(devices, 8)
        router.run_tasks(16)
        assert supervisor.watchdog_events == []
        assert supervisor.report().totals["watchdog_trips"] == 0


class TestReport:
    def test_report_shape_and_json(self):
        router, devices, supervisor = build(
            mode="fast",
            faults=[{"kind": "element_error", "element": "c", "after": 0, "count": 1}],
        )
        feed(devices, 2)
        router.run_tasks(2)
        report = supervisor.report()
        payload = report.as_dict()
        assert set(payload) == {
            "mode",
            "config",
            "chains",
            "totals",
            "task_errors",
            "watchdog_events",
            "faults",
        }
        assert payload["mode"] == "fast"
        assert payload["faults"]["elements"]["c"]["errors_fired"] == 1
        label = "push src[0]"
        assert payload["chains"][label]["errors"] == 1
        parsed = json.loads(report.to_json())
        assert parsed["totals"]["chain_errors"] == 1
        text = report.format()
        assert "supervisor:" in text and label in text

    def test_router_constructor_supervised_profile(self):
        devices = {
            "eth0": LoopbackDevice("eth0"),
            "eth1": LoopbackDevice("eth1", tx_capacity=1 << 20),
        }
        router = Router(
            parse_graph(PIPE),
            devices=devices,
            profile=ExecutionProfile.fast().with_supervision(),
        )
        assert router.supervisor is not None
        assert router.supervisor.report().totals["chains"] > 0

    def test_legacy_constructor_kwargs_warn_and_work(self):
        devices = {
            "eth0": LoopbackDevice("eth0"),
            "eth1": LoopbackDevice("eth1", tx_capacity=1 << 20),
        }
        with pytest.warns(DeprecationWarning, match="deprecated; use"):
            router = Router(
                parse_graph(PIPE), devices=devices, mode="fast", supervised=True
            )
        assert router.supervisor is not None
        # profile reads back the live supervisor's config object, so
        # compare by the label, not by config identity.
        assert router.profile.label == "fast+supervised"

    def test_legacy_set_mode_and_attach_supervisor_warn(self):
        devices = {
            "eth0": LoopbackDevice("eth0"),
            "eth1": LoopbackDevice("eth1", tx_capacity=1 << 20),
        }
        router = Router(parse_graph(PIPE), devices=devices)
        with pytest.warns(DeprecationWarning, match="deprecated; use"):
            router.set_mode("fast")
        assert router.mode == "fast"
        with pytest.warns(DeprecationWarning, match="deprecated; use"):
            supervisor = router.attach_supervisor()
        assert supervisor is router.supervisor is not None


class TestSwapStorm:
    """Regression guard for supervisor round-trips across hot-swap
    generations: every generation must come up supervised, with working
    guards and a live report, and the retired generation must be fully
    detached."""

    GRAPHS = (PIPE, PIPE.replace("Queue(8)", "Queue(16)"))

    def test_supervisor_survives_a_swap_storm(self):
        devices = {
            "eth0": LoopbackDevice("eth0"),
            "eth1": LoopbackDevice("eth1", tx_capacity=1 << 20),
        }
        router = Router(
            parse_graph(PIPE),
            devices=devices,
            profile=ExecutionProfile.fast().with_supervision(),
        )
        config = router.supervisor.config
        sent = 0
        for generation in range(8):
            previous = router
            router = hotswap_router(
                previous, parse_graph(self.GRAPHS[generation % 2])
            ).router
            # The new generation is supervised with the same config; the
            # retired one is fully detached.
            assert router.supervisor is not None and router.supervisor.attached
            assert router.supervisor.config is config
            assert router.supervisor.router is router
            assert previous.supervisor is None
            # Guards are live on the *new* generation's ports.
            assert router.supervisor.guards
            assert isinstance(router["src"]._output_ports[0], SupervisedOutputPort)
            feed(devices, 2, start=sent)
            sent += 2
            router.run_tasks(3)
            report = router.supervisor.report()
            assert report.totals["chains"] > 0
            assert report.totals["open_breakers"] == 0
        assert len(devices["eth1"].transmitted) == sent
        assert devices["eth1"].transmitted[0] == b"frame-00"
