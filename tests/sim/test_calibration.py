"""Calibration tests: the emergent numbers must track the paper.

These are the reproduction's acceptance tests.  The cost model's
constants were fixed against the *unoptimized* router (Figure 8); every
optimized figure asserted here emerges from the mechanics — removed
virtual calls, merged elements, compiled classifiers — so a regression
in any tool shows up as a calibration failure.
"""

import pytest

from repro.sim import fluid
from repro.sim.platforms import P0, P1, P3
from repro.sim.testbed import Testbed

PACKETS = 600


@pytest.fixture(scope="module")
def reports():
    testbed = Testbed(2)
    return {
        variant: testbed.measure_cpu(variant, packets=PACKETS)
        for variant in ["base", "fc", "dv", "xf", "all", "mr_all", "simple"]
    }


@pytest.fixture(scope="module")
def testbed():
    return Testbed(2)


def within(value, target, tolerance):
    assert abs(value - target) <= tolerance * target, (
        "%.1f not within %.0f%% of %.1f" % (value, tolerance * 100, target)
    )


class TestFigure8:
    """CPU cost breakdown for the unoptimized router."""

    def test_rx_device_interactions(self, reports):
        within(reports["base"].rx_device_ns, 701, 0.05)

    def test_forwarding_path(self, reports):
        within(reports["base"].forwarding_ns, 1657, 0.05)

    def test_tx_device_interactions(self, reports):
        within(reports["base"].tx_device_ns, 547, 0.05)

    def test_total(self, reports):
        within(reports["base"].total_ns, 2905, 0.05)

    def test_implied_versus_observed_rate(self, reports):
        """§8.2: measured 2905 ns implies ~344 kpps, observed 357 kpps."""
        implied = 1e9 / reports["base"].total_ns
        within(implied, 344_000, 0.05)
        true_rate = 1e9 / reports["base"].true_total_ns
        within(true_rate, 357_000, 0.05)


class TestFigure9:
    """Language optimizations' effect on CPU time."""

    def test_all_reduces_forwarding_path_34_percent(self, reports):
        reduction = 1 - reports["all"].forwarding_ns / reports["base"].forwarding_ns
        within(reduction, 0.34, 0.12)

    def test_all_forwarding_path_absolute(self, reports):
        within(reports["all"].forwarding_ns, 1101, 0.05)

    def test_total_cpu_reduction_around_22_percent(self, reports):
        reduction = 1 - reports["all"].total_ns / reports["base"].total_ns
        assert 0.15 <= reduction <= 0.25

    def test_fastclassifier_saves_about_3_percent(self, reports):
        reduction = 1 - reports["fc"].forwarding_ns / reports["base"].forwarding_ns
        assert 0.01 <= reduction <= 0.06

    def test_xform_is_the_most_effective_single_tool(self, reports):
        assert reports["xf"].forwarding_ns < reports["dv"].forwarding_ns
        assert reports["xf"].forwarding_ns < reports["fc"].forwarding_ns

    def test_devirtualize_overlaps_with_xform(self, reports):
        """'Applying both of these optimizations is not much more useful
        than applying either one alone': the combined saving is well
        short of the sum of the individual savings."""
        save_dv = reports["base"].forwarding_ns - reports["dv"].forwarding_ns
        save_xf = reports["base"].forwarding_ns - reports["xf"].forwarding_ns
        save_both = reports["base"].forwarding_ns - reports["all"].forwarding_ns
        assert save_both < 0.85 * (save_dv + save_xf)

    def test_arp_elimination_saves_roughly_40ns_over_all(self, reports):
        delta = reports["all"].forwarding_ns - reports["mr_all"].forwarding_ns
        assert 25 <= delta <= 75  # paper: 1101 -> 1061

    def test_mr_all_absolute(self, reports):
        within(reports["mr_all"].forwarding_ns, 1061, 0.05)

    def test_simple_is_25_percent_below_optimized_total(self, reports):
        ratio = reports["simple"].total_ns / reports["all"].total_ns
        within(ratio, 0.75, 0.05)

    def test_optimizations_remove_mispredictions(self, reports):
        assert reports["base"].mispredicts_per_packet > 3
        assert reports["all"].mispredicts_per_packet < 0.5

    def test_988_instructions_retired_with_all(self, reports):
        """§8.2: 'just 988 instructions are retired during the
        forwarding of a packet' with all three optimizers on."""
        within(reports["all"].instructions_per_packet, 988, 0.05)
        assert reports["base"].instructions_per_packet > reports["all"].instructions_per_packet

    def test_transfers_halve_with_xform(self, reports):
        assert reports["xf"].transfers_per_packet < 0.6 * reports["base"].transfers_per_packet


class TestFigure10MLFFR:
    def test_base_mlffr(self, testbed):
        within(fluid.mlffr(testbed.true_cpu_ns("base", PACKETS), P0), 357_000, 0.03)

    def test_all_mlffr(self, testbed):
        within(fluid.mlffr(testbed.true_cpu_ns("all", PACKETS), P0), 446_000, 0.03)

    def test_mr_all_mlffr(self, testbed):
        within(fluid.mlffr(testbed.true_cpu_ns("mr_all", PACKETS), P0), 457_000, 0.03)

    def test_optimized_declines_past_peak(self, testbed):
        """'The optimized configurations are unable to sustain their
        peak forwarding rates, dropping to approximately 400,000.'"""
        cpu = testbed.true_cpu_ns("all", PACKETS)
        peak = fluid.solve(446_000, cpu, P0).sent
        high = fluid.solve(591_000, cpu, P0).sent
        assert high < peak
        within(high, 400_000, 0.06)

    def test_base_does_not_decline(self, testbed):
        cpu = testbed.true_cpu_ns("base", PACKETS)
        at_peak = fluid.solve(380_000, cpu, P0).sent
        at_max = fluid.solve(591_000, cpu, P0).sent
        assert abs(at_max - at_peak) / at_peak < 0.02

    def test_simple_mlffr_not_much_above_optimized(self, testbed):
        """§8.3: Simple's MLFFR is not much higher than the optimized IP
        routers' although its CPU cost is 25% lower — the I/O system is
        the limit."""
        simple = fluid.mlffr(testbed.true_cpu_ns("simple", PACKETS), P0)
        optimized = fluid.mlffr(testbed.true_cpu_ns("all", PACKETS), P0)
        assert simple < 1.10 * optimized


class TestFigure11Outcomes:
    def test_base_drops_are_missed_frames(self, testbed):
        cpu = testbed.true_cpu_ns("base", PACKETS)
        outcome = fluid.solve(500_000, cpu, P0)
        assert outcome.missed_frames > 0.9 * (500_000 - outcome.sent)
        assert outcome.fifo_overflows < 0.1 * outcome.missed_frames

    def test_simple_has_no_missed_frames(self, testbed):
        cpu = testbed.true_cpu_ns("simple", PACKETS)
        outcome = fluid.solve(550_000, cpu, P0)
        dropped = 550_000 - outcome.sent
        assert dropped > 0
        assert outcome.missed_frames < 0.05 * dropped
        assert outcome.fifo_overflows > 0
        assert outcome.queue_drops > 0

    def test_mr_all_shows_missed_then_fifo(self, testbed):
        cpu = testbed.true_cpu_ns("mr_all", PACKETS)
        moderate = fluid.solve(500_000, cpu, P0)
        heavy = fluid.solve(591_000, cpu, P0)
        assert moderate.missed_frames > moderate.fifo_overflows
        assert heavy.fifo_overflows > moderate.fifo_overflows

    def test_outcomes_account_for_all_input(self, testbed):
        cpu = testbed.true_cpu_ns("all", PACKETS)
        for rate in (200_000, 446_000, 591_000):
            outcome = fluid.solve(rate, cpu, P0)
            within(outcome.accounted, rate, 0.02)


class TestFigure12Platforms:
    def test_p0_ratio(self, testbed):
        base = fluid.mlffr(testbed.true_cpu_ns("base", PACKETS), P0)
        optimized = fluid.mlffr(testbed.true_cpu_ns("all", PACKETS), P0)
        within(optimized / base, 1.25, 0.05)

    def test_p1_mlffrs(self):
        testbed = Testbed(2, platform=P1)
        base = fluid.mlffr(testbed.true_cpu_ns("base", PACKETS), P1)
        optimized = fluid.mlffr(testbed.true_cpu_ns("all", PACKETS), P1)
        within(base, 350_000, 0.05)
        within(optimized, 430_000, 0.05)

    def test_p3_mlffrs(self):
        testbed = Testbed(2, platform=P3)
        base = fluid.mlffr(testbed.true_cpu_ns("base", PACKETS), P3)
        optimized = fluid.mlffr(testbed.true_cpu_ns("all", PACKETS), P3)
        within(base, 640_000, 0.05)
        within(optimized, 740_000, 0.05)

    def test_p3_speedup_over_p2_shape(self):
        """§8.5: P3 forwards about 1.9x P2 for Base, about 1.6x for All
        (we use P1's model for P2's CPU behaviour; see EXPERIMENTS.md)."""
        from repro.sim.platforms import P2

        p2 = Testbed(2, platform=P2)
        p3 = Testbed(2, platform=P3)
        base_ratio = fluid.mlffr(p3.true_cpu_ns("base", PACKETS), P3) / fluid.mlffr(
            p2.true_cpu_ns("base", PACKETS), P2
        )
        all_ratio = fluid.mlffr(p3.true_cpu_ns("all", PACKETS), P3) / fluid.mlffr(
            p2.true_cpu_ns("all", PACKETS), P2
        )
        assert 1.5 <= base_ratio <= 2.1
        assert 1.4 <= all_ratio <= 1.9
        assert base_ratio > all_ratio  # optimization narrows the CPU gap
