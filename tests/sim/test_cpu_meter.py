"""Unit tests for the cycle meter, BTB, and cost attribution."""

from repro.elements import Router
from repro.lang.build import parse_graph
from repro.net.packet import Packet
from repro.sim import cost
from repro.sim.cpu import BranchTargetBuffer, CycleMeter, uses_simple_action


class TestBranchTargetBuffer:
    def test_first_access_misses(self):
        btb = BranchTargetBuffer()
        assert not btb.access("site", "A")
        assert btb.misses == 1

    def test_repeated_target_predicts(self):
        btb = BranchTargetBuffer()
        btb.access("site", "A")
        assert btb.access("site", "A")
        assert btb.hits == 1

    def test_alternating_targets_always_mispredict(self):
        """Figure 2's pathology: one call site, two targets."""
        btb = BranchTargetBuffer()
        for _ in range(10):
            btb.access("site", "Queue")
            btb.access("site", "Discard")
        assert btb.hits == 0
        assert btb.misses == 20

    def test_sites_are_independent(self):
        btb = BranchTargetBuffer()
        btb.access("s1", "A")
        btb.access("s2", "B")
        assert btb.access("s1", "A")
        assert btb.access("s2", "B")


class TestSimpleActionDetection:
    def test_simple_action_elements_flagged(self):
        router = Router(parse_graph("f :: Idle; p :: Paint(1); d :: Discard; f -> p -> d;"))
        assert uses_simple_action(router["p"])  # Paint relies on simple_action

    def test_overriding_elements_not_flagged(self):
        router = Router(parse_graph(
            "f :: Idle; c :: Classifier(12/0800, -); f -> c;"
            "c [0] -> Discard; c [1] -> Discard;"
        ))
        assert not uses_simple_action(router["c"])


def metered_router(text):
    meter = CycleMeter()
    router = Router(parse_graph(text), meter=meter)
    return router, meter


class TestAttribution:
    def test_forwarding_cycles_accumulate(self):
        router, meter = metered_router(
            "f :: Idle; c :: Counter; d :: Discard; f -> c -> d;"
        )
        router.push_packet("c", 0, Packet(b"x"))
        assert meter.totals.forwarding > 0
        assert meter.totals.rx_device == 0

    def test_transfer_costs_virtual_vs_direct(self):
        router, meter = metered_router(
            "f :: Idle; c :: Counter; d :: Discard; f -> c -> d;"
        )
        router.push_packet("c", 0, Packet(b"x"))
        virtual_total = meter.totals.forwarding
        # Mark the port direct and push again: the delta shrinks by the
        # virtual-direct difference.
        router["c"].output(0).virtual = False
        before = meter.totals.forwarding
        router.push_packet("c", 0, Packet(b"x"))
        direct_delta = meter.totals.forwarding - before
        assert direct_delta < virtual_total

    def test_alternating_classes_cost_more_than_uniform(self):
        """The simple_action shared dispatch: a chain of distinct small
        elements mispredicts; a chain of same-class elements predicts."""
        alternating, meter_a = metered_router(
            "f :: Idle; p :: Paint(1); s :: Strip(0); g :: Paint(2); u :: Strip(0);"
            "d :: Discard; f -> p -> s -> g -> u -> d;"
        )
        uniform, meter_u = metered_router(
            "f :: Idle; p :: Paint(1); s :: Paint(2); g :: Paint(3); u :: Paint(4);"
            "d :: Discard; f -> p -> s -> g -> u -> d;"
        )
        for _ in range(50):
            alternating.push_packet("p", 0, Packet(b"x"))
            uniform.push_packet("p", 0, Packet(b"x"))
        assert meter_a.btb.misses > meter_u.btb.misses

    def test_dynamic_charges_recorded(self):
        router, meter = metered_router(
            "f :: Idle; c :: Classifier(12/0800, -); f -> c;"
            "c [0] -> Discard; c [1] -> Discard;"
        )
        router.push_packet("c", 0, Packet(bytes(12) + b"\x08\x00" + bytes(46)))
        assert meter.dynamic.get("classifier_step", 0) >= 1

    def test_report_scales_by_clock(self):
        router, meter = metered_router(
            "f :: Idle; c :: Counter; d :: Discard; f -> c -> d;"
        )
        router.push_packet("c", 0, Packet(b"x"))
        # Fake one packet "forwarded" for scaling purposes.
        slow = meter.report(1, clock_mhz=700.0)
        fast = meter.report(1, clock_mhz=1400.0)
        assert abs(slow.forwarding_ns - 2 * fast.forwarding_ns) < 1e-6


class TestCostTables:
    def test_every_registered_class_has_a_cost(self):
        from repro.elements.registry import ELEMENT_CLASSES

        for name in ELEMENT_CLASSES:
            assert cost.work_cycles(name) is not None, name

    def test_generated_class_names_resolve(self):
        assert cost.work_cycles("FastClassifier@@c0") == cost.ELEMENT_WORK_CYCLES["FastClassifier"]
        assert cost.work_cycles("Devirtualize@@arpq0") is None  # resolved via MRO

    def test_combo_cheaper_than_chain(self):
        """The combos must beat the summed work of the chains they
        replace — otherwise click-xform's benefit is an artifact."""
        w = cost.ELEMENT_WORK_CYCLES
        input_chain = w["Paint"] + w["Strip"] + w["CheckIPHeader"] + w["GetIPAddress"]
        assert w["IPInputCombo"] < input_chain
        output_chain = (
            w["DropBroadcasts"] + w["CheckPaint"] + w["IPGWOptions"]
            + w["FixIPSrc"] + w["DecIPTTL"] + w["IPFragmenter"]
        )
        assert w["IPOutputCombo"] < output_chain

    def test_mispredict_is_dozens_of_cycles(self):
        assert 20 <= cost.CYCLES_VIRTUAL_CALL_MISPREDICTED <= 60
        assert cost.CYCLES_VIRTUAL_CALL_PREDICTED == 7

    def test_memory_fetch_matches_paper(self):
        # 112 ns at 700 MHz.
        assert abs(cost.CYCLES_MEMORY_FETCH / 0.7 - 112) < 2
