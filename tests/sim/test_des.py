"""Tests for the discrete-event simulator, including three-way
agreement with the fluid and time-stepped engines."""

import pytest

from repro.sim import des, fluid, timestep
from repro.sim.platforms import P0

BASE_CPU_NS = 2820.0
ALL_CPU_NS = 2257.0
SIMPLE_CPU_NS = 1693.0


class TestOutcomes:
    def test_underload_loss_free(self):
        outcome = des.simulate(200_000, BASE_CPU_NS, P0)
        assert outcome.sent == pytest.approx(200_000, rel=0.01)
        assert outcome.missed_frames == 0
        assert outcome.fifo_overflows == 0

    def test_cpu_overload_produces_missed_frames(self):
        outcome = des.simulate(500_000, BASE_CPU_NS, P0)
        assert outcome.sent == pytest.approx(1e9 / BASE_CPU_NS, rel=0.02)
        dropped = 500_000 - outcome.sent
        assert outcome.missed_frames == pytest.approx(dropped, rel=0.05)

    def test_conservation(self):
        for rate in (150_000, 400_000, 591_000):
            outcome = des.simulate(rate, ALL_CPU_NS, P0, duration_s=0.03)
            assert outcome.accounted == pytest.approx(rate, rel=0.03)

    def test_deterministic(self):
        first = des.simulate(450_000, BASE_CPU_NS, P0, duration_s=0.02)
        second = des.simulate(450_000, BASE_CPU_NS, P0, duration_s=0.02)
        assert first.sent == second.sent
        assert first.missed_frames == second.missed_frames


class TestThreeWayAgreement:
    @pytest.mark.parametrize("cpu_ns", [BASE_CPU_NS, ALL_CPU_NS, SIMPLE_CPU_NS])
    @pytest.mark.parametrize("rate", [250_000, 450_000])
    def test_engines_agree_on_forwarding_rate(self, cpu_ns, rate):
        d = des.simulate(rate, cpu_ns, P0, duration_s=0.04)
        f = fluid.solve(rate, cpu_ns, P0)
        t = timestep.simulate(rate, cpu_ns, P0, duration_s=0.04)
        assert d.sent == pytest.approx(f.sent, rel=0.12)
        assert d.sent == pytest.approx(t.sent, rel=0.15)

    def test_base_drop_mechanism_agrees(self):
        d = des.simulate(550_000, BASE_CPU_NS, P0, duration_s=0.04)
        f = fluid.solve(550_000, BASE_CPU_NS, P0)
        for outcome in (d, f):
            assert outcome.missed_frames > 10 * max(1.0, outcome.fifo_overflows)


class TestLatency:
    def test_underload_latency_is_pipeline_minimum(self):
        """Below saturation the D/D/1 pipeline adds no queueing: the
        per-packet latency is the raw pipeline traversal time."""
        p50, p95, p99 = des.latency_percentiles(100_000, BASE_CPU_NS, P0)
        # ~2.8 us CPU + two DMA crossings + a wire slot.
        assert 5 <= p50 <= 25
        assert p99 <= p50 * 1.5

    def test_latency_explodes_at_saturation(self):
        below = des.latency_percentiles(340_000, BASE_CPU_NS, P0, duration_s=0.05)
        above = des.latency_percentiles(370_000, BASE_CPU_NS, P0, duration_s=0.05)
        assert above[2] > 10 * below[2]  # p99 blows up past the MLFFR

    def test_optimization_lowers_saturation_latency(self):
        """At a load Base cannot sustain but All can, All's tail latency
        is orders of magnitude lower — the operational meaning of the
        paper's CPU savings."""
        base_tail = des.latency_percentiles(400_000, BASE_CPU_NS, P0, duration_s=0.04)[2]
        all_tail = des.latency_percentiles(400_000, ALL_CPU_NS, P0, duration_s=0.04)[2]
        assert all_tail < base_tail / 5
