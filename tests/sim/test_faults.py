"""Tests for the deterministic fault-injection layer (repro.sim.faults)."""

import pytest

from repro.elements import Router
from repro.elements.devices import LoopbackDevice
from repro.lang.build import parse_graph
from repro.net.packet import Packet
from repro.sim.faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultyDevice,
    InjectedFault,
)

PIPE = "f :: Idle; c :: Counter; q :: Queue(8); u :: Unqueue; d :: Discard; f -> c -> q -> u -> d;"


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=[
                {"kind": "device_flap", "device": "eth0", "at": 2, "ticks": 3},
                {"kind": "corrupt_frame", "device": "eth0", "after": 4, "xor": 0x10},
                {"kind": "element_error", "element": "chk", "after": 1, "count": 2},
                {"kind": "cache_invalidate", "at": 1},
            ],
            seed=9,
            name="trip",
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()
        assert again.name == "trip" and again.seed == 9
        assert len(again) == 4

    def test_save_load(self, tmp_path):
        plan = FaultPlan(faults=[{"kind": "device_fail", "device": "eth1", "at": 0}])
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path).to_dict() == plan.to_dict()

    def test_seeded_deterministic(self):
        kwargs = dict(devices=["eth0", "eth1"], elements=["chk", "rt"], ticks=12, events=48)
        one = FaultPlan.seeded(5, **kwargs)
        two = FaultPlan.seeded(5, **kwargs)
        assert one.to_dict() == two.to_dict()
        # Draws only from the offered names, and always attacks the cache.
        assert set(one.device_names()) <= {"eth0", "eth1"}
        assert set(one.element_names()) <= {"chk", "rt"}
        kinds = {fault["kind"] for fault in one.faults}
        assert "cache_invalidate" in kinds and "cache_corrupt" in kinds

    def test_seeded_seeds_differ(self):
        kwargs = dict(devices=["eth0", "eth1"], elements=["a", "b", "c"], ticks=12, events=48)
        plans = {FaultPlan.seeded(seed, **kwargs).to_json() for seed in range(8)}
        assert len(plans) > 1

    @pytest.mark.parametrize(
        "fault",
        [
            {"kind": "meteor_strike", "at": 0},
            {"kind": "device_flap", "device": "eth0", "at": 1},  # missing ticks
            {"kind": "cache_corrupt", "at": 1, "bogus": 2},  # unknown field
            {"kind": "element_error", "element": "c", "after": -1},  # negative
            {"kind": "corrupt_frame", "device": "e", "after": "soon"},  # non-int
        ],
    )
    def test_validate_rejects(self, fault):
        with pytest.raises(FaultError):
            FaultPlan(faults=[fault])


class TestFaultyDevice:
    def _wrap(self, faults):
        injector = FaultInjector(FaultPlan(faults=faults))
        device = LoopbackDevice("eth0")
        wrapped = injector.wrap_devices({"eth0": device})["eth0"]
        assert isinstance(wrapped, FaultyDevice)
        return injector, device, wrapped

    def test_flap_window_delays_frames(self):
        injector, device, wrapped = self._wrap(
            [{"kind": "device_flap", "device": "eth0", "at": 1, "ticks": 2}]
        )
        wrapped.receive_frame(b"frame-a")
        injector.tick()  # tick 0: up
        assert wrapped.rx_dequeue() == b"frame-a"
        wrapped.receive_frame(b"frame-b")
        injector.tick()  # tick 1: down
        assert wrapped.rx_dequeue() is None
        assert wrapped.tx_room() == 0
        assert wrapped.tx_enqueue(b"out") is False
        injector.tick()  # tick 2: still down
        assert wrapped.rx_dequeue() is None
        injector.tick()  # tick 3: back up; the delayed frame drains
        assert wrapped.rx_dequeue() == b"frame-b"
        counts = injector.fault_counts()
        assert counts["devices"]["eth0"]["down_polls"] == 2
        assert counts["ticks"] == 4

    def test_permanent_failure(self):
        injector, device, wrapped = self._wrap(
            [{"kind": "device_fail", "device": "eth0", "at": 1}]
        )
        wrapped.receive_frame(b"stranded")
        for _ in range(5):
            injector.tick()
        assert wrapped.rx_dequeue() is None  # stranded forever
        assert device.rx  # but still queued on the real hardware

    def test_corruption_window(self):
        injector, device, wrapped = self._wrap(
            [{"kind": "corrupt_frame", "device": "eth0", "after": 0, "count": 1}]
        )
        wrapped.receive_frame(bytes([0x00, 0x41]))
        wrapped.receive_frame(bytes([0x00, 0x41]))
        first = wrapped.rx_dequeue()
        second = wrapped.rx_dequeue()
        assert first[0] == 0xFF and first[1] == 0x41  # default xor at offset 0
        assert second == bytes([0x00, 0x41])
        assert injector.fault_counts()["devices"]["eth0"]["corrupted_frames"] == 1

    def test_unfaulted_devices_pass_through(self):
        injector = FaultInjector(
            FaultPlan(faults=[{"kind": "device_fail", "device": "eth9", "at": 0}])
        )
        device = LoopbackDevice("eth0")
        assert injector.wrap_devices({"eth0": device})["eth0"] is device


class TestElementFaults:
    def _prepared(self, faults):
        injector = FaultInjector(FaultPlan(faults=faults))
        router = Router(parse_graph(PIPE))
        injector.prepare_router(router)
        return injector, router

    def test_injected_error_window(self):
        injector, router = self._prepared(
            [{"kind": "element_error", "element": "c", "after": 1, "count": 1}]
        )
        router.push_packet("c", 0, Packet(b"one"))  # call 1: clean
        with pytest.raises(InjectedFault) as excinfo:
            router.push_packet("c", 0, Packet(b"two"))  # call 2: boom
        assert excinfo.value.element_name == "c"
        router.push_packet("c", 0, Packet(b"three"))  # window passed
        counts = injector.fault_counts()["elements"]["c"]
        assert counts == {"calls": 3, "errors_fired": 1}
        assert router["c"].count == 2  # the faulted packet never counted

    def test_prepare_is_idempotent(self):
        injector, router = self._prepared(
            [{"kind": "element_error", "element": "c", "after": 10}]
        )
        injector.prepare_router(router)  # second prepare must not re-wrap
        router.push_packet("c", 0, Packet(b"x"))
        assert injector.fault_counts()["elements"]["c"]["calls"] == 1

    def test_router_marked_uncacheable(self):
        _injector, router = self._prepared(
            [{"kind": "element_error", "element": "c", "after": 0}]
        )
        assert router._fault_uncacheable
        assert router["c"]._fault_wrapped
        assert router.fault_injector is not None

    def test_custom_message(self):
        _injector, router = self._prepared(
            [
                {
                    "kind": "element_error",
                    "element": "c",
                    "after": 0,
                    "message": "simulated parity error",
                }
            ]
        )
        with pytest.raises(InjectedFault, match="simulated parity error"):
            router.push_packet("c", 0, Packet(b"x"))

    def test_counting_continues_across_routers(self):
        """Hot-swap hands the injector a new router: the per-element
        call counter is injector-owned, so the window does not reset."""
        injector, router = self._prepared(
            [{"kind": "element_error", "element": "c", "after": 1, "count": 1}]
        )
        router.push_packet("c", 0, Packet(b"one"))
        second = Router(parse_graph(PIPE))
        injector.prepare_router(second)
        with pytest.raises(InjectedFault):
            second.push_packet("c", 0, Packet(b"two"))


class TestCacheFaults:
    def test_tick_fires_cache_events(self):
        from repro.runtime.codegen_cache import default_cache

        cache = default_cache()
        before = cache.invalidations
        injector = FaultInjector(
            FaultPlan(faults=[{"kind": "cache_invalidate", "at": 1}])
        )
        injector.tick()  # tick 0: nothing
        assert cache.invalidations == before
        injector.tick()  # tick 1: fires
        assert cache.invalidations == before + 1
        assert injector.cache_invalidations == 1
        injector.tick()  # one-shot: no refire
        assert cache.invalidations == before + 1


class TestWorkerFaultValidation:
    """The self-healing fault kinds (worker_kill / worker_hang /
    worker_poison) and the file-attributed loading errors that guard
    them."""

    @pytest.mark.parametrize(
        "fault",
        [
            {"kind": "worker_kill", "at": 1},
            {"kind": "worker_kill", "at": 2, "worker": 3, "phase": "commit"},
            {"kind": "worker_hang", "at": 1, "seconds": 0.5},
            {"kind": "worker_poison", "at": 0, "frame": "deadbeef"},
        ],
    )
    def test_valid_worker_faults(self, fault):
        assert len(FaultPlan(faults=[fault])) == 1

    @pytest.mark.parametrize(
        "fault",
        [
            {"kind": "worker_kill"},  # missing at
            {"kind": "worker_kill", "at": 1, "phase": "sideways"},
            {"kind": "worker_kill", "at": 1, "worker": True},  # bool != int
            {"kind": "worker_hang", "at": 1, "seconds": 0},
            {"kind": "worker_hang", "at": 1, "seconds": True},
            {"kind": "worker_poison", "at": 0},  # missing frame
            {"kind": "worker_poison", "at": 0, "frame": ""},
            {"kind": "worker_poison", "at": 0, "frame": "not-hex"},
            {"kind": "worker_poison", "at": 0, "frame": 42},
        ],
    )
    def test_invalid_worker_faults(self, fault):
        with pytest.raises(FaultError):
            FaultPlan(faults=[fault])


class TestPlanLoadingErrors:
    """FaultPlan.load / from_json must fail *at the boundary*, with the
    file attributed — never halfway through a chaos run."""

    def test_load_unknown_kind_names_file(self, tmp_path):
        path = tmp_path / "bad-kind.json"
        path.write_text('{"faults": [{"kind": "meteor_strike", "at": 0}]}')
        with pytest.raises(FaultError) as excinfo:
            FaultPlan.load(path)
        message = str(excinfo.value)
        assert "bad-kind.json" in message and "meteor_strike" in message

    def test_load_missing_field_names_file(self, tmp_path):
        path = tmp_path / "missing.json"
        path.write_text('{"faults": [{"kind": "worker_poison", "at": 0}]}')
        with pytest.raises(FaultError) as excinfo:
            FaultPlan.load(path)
        message = str(excinfo.value)
        assert "missing.json" in message and "frame" in message

    def test_load_invalid_json_names_file(self, tmp_path):
        path = tmp_path / "mangled.json"
        path.write_text('{"faults": [')
        with pytest.raises(FaultError) as excinfo:
            FaultPlan.load(path)
        assert "mangled.json" in str(excinfo.value)

    def test_load_non_object_names_file(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(FaultError) as excinfo:
            FaultPlan.load(path)
        message = str(excinfo.value)
        assert "list.json" in message and "object" in message

    def test_from_json_default_source(self):
        with pytest.raises(FaultError) as excinfo:
            FaultPlan.from_json("not json at all")
        assert "<json>" in str(excinfo.value)
