"""Unit tests for the NIC/PCI models, the fluid solver, and
fluid-vs-timestep cross-validation."""

import pytest

from repro.sim import fluid, timestep
from repro.sim.nic import FIFO_FRAMES, RX_RING_SIZE, TulipNIC
from repro.sim.pci import PCIBus
from repro.sim.platforms import P0

BASE_CPU_NS = 2820.0
ALL_CPU_NS = 2257.0
SIMPLE_CPU_NS = 1693.0


class TestPCIBus:
    def test_budget_refills_per_step(self):
        bus = PCIBus(1000.0)
        bus.refill(1.0)
        assert bus.consume(600)
        assert bus.consume(400)
        assert not bus.consume(1)
        bus.refill(1.0)
        assert bus.consume(1000)

    def test_unused_budget_does_not_accumulate(self):
        bus = PCIBus(1000.0)
        bus.refill(1.0)
        bus.refill(1.0)
        assert not bus.consume(1001)

    def test_denials_counted(self):
        bus = PCIBus(10.0)
        bus.refill(1.0)
        bus.consume(100)
        assert bus.denied == 1


class TestTulipNIC:
    def make_nic(self, bus_rate=1e9):
        bus = PCIBus(bus_rate)
        bus.refill(1.0)
        return TulipNIC("eth0", bus, line_rate_pps=148_800.0), bus

    def test_receive_path(self):
        nic, bus = self.make_nic()
        nic.receive_frame(b"\x00" * 64)
        nic.advance(0.001)
        assert nic.rx_dequeue() == b"\x00" * 64
        assert nic.received == 1

    def test_fifo_overflow_when_full(self):
        nic, bus = self.make_nic(bus_rate=1.0)  # bus too slow to drain
        bus.refill(1e-9)
        for _ in range(FIFO_FRAMES + 5):
            nic.receive_frame(b"\x00" * 64)
        assert nic.fifo_overflows == 5

    def test_missed_frames_when_ring_full(self):
        nic, bus = self.make_nic()
        for _ in range(RX_RING_SIZE + 3):
            nic.receive_frame(b"\x00" * 64)
            nic.advance(0.0001)
        # Ring fills (nobody dequeues); subsequent frames are missed.
        assert nic.missed_frames == 3
        assert len(nic.rx_ring) == RX_RING_SIZE

    def test_missed_frames_cost_bus_bandwidth(self):
        nic, bus = self.make_nic()
        # Fill the RX ring (the FIFO only holds a few frames, so feed
        # and drain incrementally).
        for _ in range(RX_RING_SIZE):
            nic.receive_frame(b"\x00" * 64)
            nic.advance(0.0001)
        used_before = bus.bytes_used
        nic.receive_frame(b"\x00" * 64)
        nic.advance(0.001)
        assert nic.missed_frames == 1
        assert bus.bytes_used > used_before  # the failed check cost bytes

    def test_transmit_path_rate_limited(self):
        nic, bus = self.make_nic()
        for _ in range(20):
            assert nic.tx_enqueue(b"\x00" * 64)
        nic.advance(1.0 / 148_800.0 * 5)  # wire time for ~5 frames
        assert 4 <= nic.transmitted <= 6


class TestFluidSolver:
    def test_underload_is_loss_free(self):
        outcome = fluid.solve(200_000, BASE_CPU_NS, P0)
        assert outcome.sent == pytest.approx(200_000, rel=0.01)
        assert outcome.missed_frames == pytest.approx(0, abs=500)

    def test_input_capped_at_source_capacity(self):
        outcome = fluid.solve(10_000_000, BASE_CPU_NS, P0)
        assert outcome.input_rate == P0.max_input_pps

    def test_cpu_limit_binds_for_base(self):
        outcome = fluid.solve(550_000, BASE_CPU_NS, P0)
        assert outcome.sent == pytest.approx(1e9 / BASE_CPU_NS, rel=0.02)

    def test_conservation(self):
        for cpu in (BASE_CPU_NS, ALL_CPU_NS, SIMPLE_CPU_NS):
            for rate in (100_000, 400_000, 591_000):
                outcome = fluid.solve(rate, cpu, P0)
                assert outcome.accounted == pytest.approx(outcome.input_rate, rel=0.02)

    def test_mlffr_monotone_in_cpu_cost(self):
        fast = fluid.mlffr(2000.0, P0)
        slow = fluid.mlffr(3000.0, P0)
        assert fast > slow

    def test_mlffr_of_infinitely_fast_cpu_is_pci_bound(self):
        rate = fluid.mlffr(1.0, P0)
        assert rate < P0.max_input_pps  # something other than input binds

    def test_forwarding_curve_shape(self):
        rates = [100e3, 300e3, 446e3, 550e3]
        curve = fluid.forwarding_curve(rates, ALL_CPU_NS, P0)
        assert [point[0] for point in curve] == rates
        assert curve[0][1] < curve[1][1] <= curve[2][1]


class TestCrossValidation:
    """Fluid equilibria and the time-stepped hardware simulation must
    agree on forwarding rates and on which drop mechanisms dominate."""

    @pytest.mark.parametrize("cpu_ns", [BASE_CPU_NS, SIMPLE_CPU_NS])
    @pytest.mark.parametrize("rate", [300_000, 591_000])
    def test_forwarding_rates_agree(self, cpu_ns, rate):
        ts = timestep.simulate(rate, cpu_ns, P0, duration_s=0.04)
        fl = fluid.solve(rate, cpu_ns, P0)
        assert ts.sent == pytest.approx(fl.sent, rel=0.12)

    def test_base_overload_drops_are_missed_frames_in_both(self):
        ts = timestep.simulate(550_000, BASE_CPU_NS, P0, duration_s=0.04)
        fl = fluid.solve(550_000, BASE_CPU_NS, P0)
        for outcome in (ts, fl):
            assert outcome.missed_frames > 10 * max(1.0, outcome.fifo_overflows)

    def test_simple_overload_has_no_missed_frames_in_both(self):
        ts = timestep.simulate(591_000, SIMPLE_CPU_NS, P0, duration_s=0.04)
        fl = fluid.solve(591_000, SIMPLE_CPU_NS, P0)
        for outcome in (ts, fl):
            dropped = outcome.input_rate - outcome.sent
            assert dropped > 0
            assert outcome.missed_frames < 0.1 * dropped
