"""Tests for the evaluation testbed's configuration and workload
machinery (the parts calibration doesn't already cover)."""

import pytest

from repro.net.headers import ETHER_HEADER_LEN, EtherHeader, IPHeader
from repro.sim.platforms import P0, P3
from repro.sim.testbed import HOST_ETHERS, Testbed, VARIANTS, host_ip


@pytest.fixture(scope="module")
def testbed():
    return Testbed(2)


class TestVariantGraphs:
    def test_all_variants_build(self, testbed):
        for variant in VARIANTS:
            graph = testbed.variant_graph(variant)
            assert graph.elements, variant

    def test_variants_pass_click_check(self, testbed):
        from repro.core.check import check

        for variant in VARIANTS:
            collector = check(testbed.variant_graph(variant))
            assert collector.ok, (variant, collector.format())

    def test_fc_variant_has_fast_classifiers(self, testbed):
        graph = testbed.variant_graph("fc")
        fast = [d for d in graph.elements.values() if "FastClassifier" in d.class_name]
        assert len(fast) == 2

    def test_xf_variant_has_combos(self, testbed):
        graph = testbed.variant_graph("xf")
        assert len(graph.elements_of_class("IPInputCombo")) == 2
        assert len(graph.elements_of_class("IPOutputCombo")) == 2

    def test_all_variant_is_devirtualized(self, testbed):
        graph = testbed.variant_graph("all")
        devirtualized = [
            d for d in graph.elements.values() if d.class_name.startswith("Devirtualize@@")
        ]
        assert len(devirtualized) > len(graph.elements) // 2

    def test_mr_variant_replaces_arp_queriers(self, testbed):
        graph = testbed.variant_graph("mr")
        assert not graph.elements_of_class("ARPQuerier")
        assert len(graph.elements_of_class("EtherEncap")) == 2

    def test_mr_encaps_address_the_hosts(self, testbed):
        graph = testbed.variant_graph("mr")
        configs = [d.config for d in graph.elements_of_class("EtherEncap")]
        assert any(HOST_ETHERS[0] in c for c in configs)
        assert any(HOST_ETHERS[1] in c for c in configs)

    def test_simple_variant_is_minimal(self, testbed):
        graph = testbed.variant_graph("simple")
        assert len(graph.elements) == 6  # 2 x (device, queue, device)

    def test_unknown_variant_rejected(self, testbed):
        with pytest.raises(ValueError):
            testbed.variant_graph("bogus")


class TestWorkload:
    def test_frames_alternate_interfaces(self, testbed):
        frames = testbed.evaluation_frames(8)
        devices = [device for device, _ in frames]
        assert devices == ["eth0", "eth1"] * 4

    def test_frames_are_64_byte_equivalents(self, testbed):
        for _, frame in testbed.evaluation_frames(4):
            assert len(frame) == 56  # 64 on the wire with the 4-byte CRC + padding

    def test_frames_are_routable(self, testbed):
        _, frame = testbed.evaluation_frames(1)[0]
        ether = EtherHeader.unpack(frame)
        assert ether.dst == testbed.interfaces[0].ether
        ip = IPHeader.unpack(frame[ETHER_HEADER_LEN:])
        assert str(ip.dst) == host_ip(1)

    def test_measurement_is_deterministic(self, testbed):
        first = testbed.measure_cpu("base", packets=200)
        second = testbed.measure_cpu("base", packets=200)
        assert first.forwarding_ns == pytest.approx(second.forwarding_ns, rel=1e-9)


class TestPlatformScaling:
    def test_cpu_cost_scales_with_clock(self):
        slow = Testbed(2, platform=P0).measure_cpu("base", packets=200)
        fast = Testbed(2, platform=P3).measure_cpu("base", packets=200)
        ratio = slow.forwarding_ns / fast.forwarding_ns
        assert ratio == pytest.approx(P3.clock_mhz / P0.clock_mhz, rel=0.01)

    def test_pio_overhead_added_to_true_cost(self):
        p0 = Testbed(2, platform=P0)
        base_cost = p0.true_cpu_ns("base", packets=200)
        p3 = Testbed(2, platform=P3)
        p3_cost = p3.true_cpu_ns("base", packets=200)
        expected = base_cost * P0.clock_mhz / P3.clock_mhz + P3.pio_overhead_ns
        assert p3_cost == pytest.approx(expected, rel=0.01)
