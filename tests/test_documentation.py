"""Meta tests: the documentation deliverables stay intact.

Every public module, class, and function must carry a doc comment; the
project documents (README / DESIGN / EXPERIMENTS) must exist and cover
every figure.
"""

import importlib
import inspect
import os
import pkgutil

import pytest

import repro

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        for module in _public_modules():
            assert module.__doc__ and module.__doc__.strip(), module.__name__

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its definition
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append("%s.%s" % (module.__name__, name))
        assert not undocumented, "undocumented public items: %s" % ", ".join(undocumented)

    def test_public_methods_of_key_classes_documented(self):
        from repro.classifier.tree import DecisionTree
        from repro.elements.element import Element
        from repro.elements.runtime import Router
        from repro.graph.router import RouterGraph

        for cls in (Element, Router, RouterGraph, DecisionTree):
            for name, member in vars(cls).items():
                if name.startswith("_") or not inspect.isfunction(member):
                    continue
                assert member.__doc__ or name in (
                    "configure", "initialize", "push", "pull",
                ), "%s.%s lacks a docstring" % (cls.__name__, name)


class TestProjectDocuments:
    @pytest.mark.parametrize(
        "filename", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/LANGUAGE.md", "docs/TOOLS.md"]
    )
    def test_document_exists(self, filename):
        path = os.path.join(REPO_ROOT, filename)
        assert os.path.exists(path), filename
        assert len(open(path).read()) > 500

    def test_experiments_covers_every_figure(self):
        text = open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")).read()
        for figure in ("Figure 8", "Figure 9", "Figure 10", "Figure 11",
                       "Figure 12", "Figure 13", "Figure 3", "firewall"):
            assert figure in text, figure

    def test_design_maps_experiments_to_benches(self):
        text = open(os.path.join(REPO_ROOT, "DESIGN.md")).read()
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("bench_fig"):
                assert name in text, "DESIGN.md experiment index missing %s" % name

    def test_element_reference_in_sync_with_registry(self):
        """docs/ELEMENTS.md is generated; regenerate on drift."""
        import sys

        sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
        try:
            import gen_element_docs
        finally:
            sys.path.pop(0)
        expected = gen_element_docs.generate()
        actual = open(os.path.join(REPO_ROOT, "docs", "ELEMENTS.md")).read()
        assert actual == expected, (
            "docs/ELEMENTS.md is stale; run: python tools/gen_element_docs.py"
        )
