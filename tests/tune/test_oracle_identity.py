"""The tuning safety contract, proven by the differential oracle: a
tuned profile may change *when* the runtime compiles, promotes, or
recompiles, but never *what* leaves the wire.  Every stock fuzz case,
every execution mode, byte-identical transmits against the defaults."""

import pytest

from repro.tune import tune
from repro.verify.genconfig import stock_cases
from repro.verify.oracle import MODES, mode_profile, run_case


@pytest.fixture(scope="module")
def tuned():
    return tune("iprouter", mode="adaptive", seed=7, budget=8, validate=False)


def transmits(case, mode, profile=None):
    status, observation = run_case(case, mode, profile=profile)
    assert status == "ok", observation
    return observation["transmitted"]


@pytest.mark.parametrize("mode", list(MODES))
def test_tuned_profile_is_wire_identical(mode, tuned):
    for case in stock_cases(events_count=48):
        reference = transmits(case, mode)
        profile = mode_profile(mode).with_tuning(tuned)
        assert transmits(case, mode, profile=profile) == reference, (
            "%s diverged under %s with tuned params %r"
            % (case["name"], mode, tuned.params)
        )


def test_eager_params_cross_tier_transitions(tuned):
    """Force the tuned knobs through the promote/deopt machinery: an
    eagerized variant of the tuned assignment must still be invisible
    on the wire even when short traces cross tier transitions."""
    eager = dict(
        tuned.params,
        **{
            "adaptive.threshold": 48,
            "adaptive.sample": 4,
            "adaptive.min_samples": 12,
        },
    )
    for case in stock_cases(events_count=64):
        reference = transmits(case, "adaptive")
        profile = mode_profile("adaptive").with_tuning(eager)
        assert transmits(case, "adaptive", profile=profile) == reference
