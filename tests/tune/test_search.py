"""The search driver (repro.tune.search) and TunedProfile artifact:
seeded determinism, tuned-never-worse, inert-knob canonicalization, and
the content-addressed JSON round trip."""

import pytest

from repro.runtime import ExecutionProfile
from repro.tune import TunedProfile, default_space, tune
from repro.tune.search import _canonicalize


def quick_tune(**overrides):
    options = dict(
        workload="iprouter", mode="adaptive", seed=7, budget=8, validate=False
    )
    options.update(overrides)
    return tune(**options)


@pytest.fixture(scope="module")
def tuned():
    return quick_tune()


class TestDeterminism:
    def test_same_seed_same_artifact(self, tuned):
        again = quick_tune()
        assert again.params == tuned.params
        assert again.key == tuned.key
        assert again.score == tuned.score
        assert again.search["rungs"] == tuned.search["rungs"]

    def test_different_seed_may_differ_but_stays_valid(self):
        other = quick_tune(seed=8)
        space = default_space(mode="adaptive")
        relevant = {k: v for k, v in other.params.items() if k in space.params}
        assert space.check(dict(space.defaults(), **relevant)) is None


class TestNeverWorse:
    def test_tuned_at_least_default(self, tuned):
        """Defaults are candidate 0 and exempt from halving, so the
        winner can tie the shipped constants but never lose to them."""
        assert tuned.score >= tuned.baseline_score
        assert tuned.speedup >= 1.0
        assert tuned.search["effective_ns"] <= tuned.search["baseline_effective_ns"]
        assert tuned.cpu_speedup >= 1.0

    def test_fdd_mode_never_worse(self):
        fdd = quick_tune(workload="firewall", mode="fdd")
        assert fdd.score >= fdd.baseline_score
        assert fdd.search["effective_ns"] <= fdd.search["baseline_effective_ns"]


class TestCanonicalize:
    def test_inert_knobs_reset_to_defaults(self):
        space = default_space(mode="adaptive", workers=1, supervised=False)
        drawn = dict(space.defaults())
        drawn["shard.queue_capacity"] = 64  # inert at workers=1
        drawn["fdd.node_budget"] = 999  # inert off-fdd
        drawn["supervisor.backoff"] = 4  # inert unsupervised
        canonical = _canonicalize(space, drawn, "adaptive", 1, False)
        defaults = space.defaults()
        assert canonical["shard.queue_capacity"] == defaults["shard.queue_capacity"]
        assert canonical["fdd.node_budget"] == defaults["fdd.node_budget"]
        assert canonical["supervisor.backoff"] == defaults["supervisor.backoff"]

    def test_live_knobs_survive(self):
        space = default_space(mode="adaptive", workers=1, supervised=False)
        drawn = dict(space.defaults(), **{"adaptive.threshold": 128})
        canonical = _canonicalize(space, drawn, "adaptive", 1, False)
        assert canonical["adaptive.threshold"] == 128


class TestArtifact:
    def test_json_round_trip(self, tuned):
        clone = TunedProfile.from_json(tuned.to_json())
        assert clone.params == tuned.params
        assert clone.key == tuned.key
        assert clone.as_dict() == tuned.as_dict()

    def test_key_is_content_addressed(self, tuned):
        assert len(tuned.key) == 16
        shifted = TunedProfile.from_dict(
            dict(tuned.as_dict(), graph_fingerprint="deadbeef")
        )
        assert shifted.key != tuned.key
        mode_shifted = TunedProfile.from_dict(dict(tuned.as_dict(), mode="fdd"))
        assert mode_shifted.key != tuned.key

    def test_save_load(self, tuned, tmp_path):
        path = tmp_path / "tuned.json"
        tuned.save(str(path))
        assert TunedProfile.load(str(path)).key == tuned.key

    def test_unknown_keys_ignored(self, tuned):
        payload = dict(tuned.as_dict(), future_field=123)
        assert TunedProfile.from_dict(payload).key == tuned.key

    def test_with_tuning_consumes_artifact(self, tuned):
        profile = ExecutionProfile.tiered().with_tuning(tuned)
        assert profile.adaptive.threshold == tuned.params["adaptive.threshold"]
        assert profile.workers == 1  # construction shape untouched
