"""Parameter-space declarations (repro.tune.space): typed domains,
validity constraints, rejection sampling, and the satellite guarantee
that the tuner can never emit an assignment the runtime configs reject."""

import random

import pytest

from repro.runtime.adaptive import AdaptiveConfig
from repro.runtime.supervisor import SupervisorConfig
from repro.tune import Param, ParamSpace, default_space


class TestParam:
    def test_int_domain(self):
        param = Param("k", "int", 4, low=1, high=8)
        assert param.valid(1) and param.valid(8)
        assert not param.valid(0) and not param.valid(9)
        assert not param.valid(4.0)  # ints only, no float smuggling
        assert not param.valid(True)  # bools are not domain ints

    def test_log_int_sampling_stays_in_bounds(self):
        param = Param("k", "log_int", 256, low=16, high=4096)
        rng = random.Random(7)
        draws = [param.sample(rng) for _ in range(200)]
        assert all(16 <= value <= 4096 for value in draws)
        # log-uniform: the bottom decade actually gets visited.
        assert any(value < 64 for value in draws)

    def test_choice_checks_type_and_value(self):
        param = Param("k", "choice", 0.5, choices=[0.5, 0.75])
        assert param.valid(0.75)
        assert not param.valid(1)  # not a listed choice
        bool_param = Param("b", "choice", False, choices=[False, True])
        assert bool_param.valid(True)
        assert not bool_param.valid(1)  # 1 == True but type differs

    def test_bad_declarations_rejected(self):
        with pytest.raises(ValueError):
            Param("k", "gaussian", 1, low=0, high=2)
        with pytest.raises(ValueError):
            Param("k", "int", 1, low=5, high=2)
        with pytest.raises(ValueError):
            Param("k", "choice", 1, choices=[])
        with pytest.raises(ValueError):
            Param("k", "int", 99, low=1, high=8)  # default off-domain

    def test_pin_freezes_to_one_value(self):
        pinned = Param("k", "int", 4, low=1, high=8).pin(6)
        assert pinned.valid(6) and not pinned.valid(4)
        assert pinned.sample(random.Random(0)) == 6


class TestParamSpace:
    def space(self):
        return ParamSpace(
            [
                Param("a", "int", 4, low=1, high=8),
                Param("b", "int", 2, low=1, high=8),
            ],
            constraints=[("b <= a", lambda p: p["b"] <= p["a"])],
        )

    def test_defaults_are_the_shipped_constants(self):
        assert self.space().defaults() == {"a": 4, "b": 2}

    def test_check_reports_first_violation(self):
        space = self.space()
        assert space.check({"a": 4, "b": 2}) is None
        assert "missing" in space.check({"a": 4})
        assert "outside" in space.check({"a": 99, "b": 2})
        assert space.check({"a": 2, "b": 5}) == "b <= a"
        with pytest.raises(ValueError):
            space.validate({"a": 2, "b": 5})

    def test_samples_always_satisfy_constraints(self):
        space = self.space()
        rng = random.Random(3)
        for _ in range(100):
            assignment = space.sample(rng)
            assert space.check(assignment) is None

    def test_invalid_defaults_rejected_at_construction(self):
        with pytest.raises(ValueError, match="default assignment"):
            ParamSpace(
                [Param("a", "int", 1, low=1, high=8)],
                constraints=[("never", lambda p: False)],
            )


class TestDefaultSpace:
    def test_defaults_match_runtime_config_defaults(self):
        """The registry's defaults ARE the shipped constants — a drifted
        default would make 'tuned vs default' comparisons meaningless."""
        defaults = default_space(mode="adaptive", supervised=True).defaults()
        adaptive = AdaptiveConfig()
        assert defaults["adaptive.threshold"] == adaptive.threshold
        assert defaults["adaptive.sample"] == adaptive.sample
        assert defaults["adaptive.min_samples"] == adaptive.min_samples
        assert defaults["adaptive.guard_miss_limit"] == adaptive.guard_miss_limit
        assert defaults["adaptive.max_recompiles"] == adaptive.max_recompiles
        supervisor = SupervisorConfig()
        assert defaults["supervisor.error_budget"] == supervisor.error_budget
        assert defaults["supervisor.backoff"] == supervisor.backoff
        from repro.runtime.shard import DEFAULT_CHUNK_FRAMES, DEFAULT_QUEUE_CAPACITY

        assert defaults["shard.queue_capacity"] == DEFAULT_QUEUE_CAPACITY
        assert defaults["shard.chunk_frames"] == DEFAULT_CHUNK_FRAMES

    def test_workers_are_pinned(self):
        space = default_space(workers=4)
        rng = random.Random(11)
        assert all(space.sample(rng)["shard.workers"] == 4 for _ in range(20))

    def test_every_sample_builds_a_valid_adaptive_config(self):
        """Constraint-enforcement satellite: no draw, ever, may produce
        an assignment AdaptiveConfig's own validation would reject."""
        space = default_space(mode="adaptive", workers=2, supervised=True)
        rng = random.Random(20260809)
        for _ in range(300):
            assignment = space.sample(rng)
            config = AdaptiveConfig(
                threshold=assignment["adaptive.threshold"],
                sample=assignment["adaptive.sample"],
                min_samples=assignment["adaptive.min_samples"],
                guard_miss_limit=assignment["adaptive.guard_miss_limit"],
                hot_fraction=assignment["adaptive.hot_fraction"],
                max_recompiles=assignment["adaptive.max_recompiles"],
            )
            # Promotion must stay reachable under the drawn thresholds.
            assert config.sample <= config.threshold
            assert config.min_samples <= config.threshold
            SupervisorConfig(
                error_budget=assignment["supervisor.error_budget"],
                backoff=assignment["supervisor.backoff"],
            )
