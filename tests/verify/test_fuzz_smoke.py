"""Smoke tests for the fuzzing subsystem: generators produce legal
cases, traces are deterministic, repro files round-trip, and the
``click-fuzz`` CLI runs the full matrix clean on a fixed seed.
"""

import json
import random

from repro.core.check import check
from repro.core.toolchain import load_config
from repro.verify import cli
from repro.verify.genconfig import generate_case, random_pipeline, stock_cases
from repro.verify.gentraffic import iprouter_events
from repro.verify.oracle import MODES, compare_case
from repro.verify.shrink import load_repro, write_repro


class TestGenerators:
    def test_random_pipelines_are_legal(self):
        rng = random.Random(42)
        for _ in range(12):
            graph = random_pipeline(rng)
            collector = check(graph)
            assert not collector.errors, collector.format()

    def test_generated_cases_parse_and_check(self):
        for index in range(8):
            case = generate_case(3, index)
            graph = load_config(case["config"], case["name"])
            assert graph.elements
            assert case["events"]

    def test_traces_are_deterministic(self):
        from repro.configs.iprouter import default_interfaces

        interfaces = default_interfaces(2)
        a = iprouter_events(random.Random(9), interfaces, count=24)
        b = iprouter_events(random.Random(9), interfaces, count=24)
        assert a == b

    def test_same_seed_same_cases(self):
        assert generate_case(5, 2) == generate_case(5, 2)

    def test_stock_cases_cover_both_mtus_and_firewall(self):
        names = [case["name"] for case in stock_cases(events_count=16)]
        assert names == ["iprouter-mtu1500", "iprouter-mtu576", "firewall"]


class TestReproFiles:
    def test_round_trip(self, tmp_path):
        case = generate_case(11, 0, events_count=8)
        path = tmp_path / "case.repro.json"
        write_repro(str(path), case, result={"status": "ok", "divergences": []}, seed=11)
        loaded = load_repro(str(path))
        assert loaded["config"] == case["config"]
        assert loaded["events"] == [list(event) for event in case["events"]]
        assert loaded["optimize"] == case["optimize"]


class TestCli:
    def test_clean_fuzz_run_exits_zero(self, tmp_path):
        report = tmp_path / "report.json"
        status = cli.main(
            [
                "--seed", "3",
                "--budget", "4",
                "--events", "24",
                "--repro-dir", str(tmp_path / "repros"),
                "--report", str(report),
            ]
        )
        assert status == 0
        payload = json.loads(report.read_text())
        assert payload["summary"]["cases"] == 4
        assert payload["summary"]["divergence"] == 0
        assert payload["mode_matrix"] == list(MODES)

    def test_replay_of_clean_repro_exits_zero(self, tmp_path):
        case = stock_cases(events_count=16)[2]  # the firewall: fastest
        path = tmp_path / "firewall.repro.json"
        write_repro(str(path), case, result=compare_case(case), seed=0)
        status = cli.main(["--repro", str(path), "--report", str(tmp_path / "r.json")])
        assert status == 0

    def test_unknown_mode_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            cli.main(["--modes", "reference,warp"])
