"""Mutation test: the fuzzer must *catch* bugs, not just pass clean runs.

Deliberately re-inject the Unstrip stale-cache emitter bug (divergence
1 in test_regressions) behind a monkeypatch, then check that the
differential fuzzer finds a divergent case within a few generated cases
and that the delta-debugger shrinks it to a repro of at most five
elements.

The codegen cache replays methods by name and keys on class identity,
not method identity — so the patched function must be *named*
``simple_action`` and the cache must be cleared around the patch, or
previously-compiled fast paths keep running the healthy code.
"""

import pytest

from repro.elements.infrastructure import Unstrip
from repro.runtime.codegen_cache import default_cache
from repro.verify.genconfig import generate_case
from repro.verify.oracle import compare_case
from repro.verify.shrink import element_count, shrink_case


def _buggy_simple_action(self, packet):
    if packet.headroom < self.nbytes:
        return None
    packet._data_offset -= self.nbytes  # bug: stale data cache survives
    return packet


_buggy_simple_action.__name__ = "simple_action"


@pytest.fixture
def unstrip_bug(monkeypatch):
    default_cache().clear()
    monkeypatch.setattr(Unstrip, "simple_action", _buggy_simple_action)
    yield
    monkeypatch.undo()
    default_cache().clear()


class TestFuzzerCatchesInjectedBug:
    def test_caught_and_shrunk_to_five_elements(self, unstrip_bug):
        caught = None
        for index in range(10):
            case = generate_case(7, index)
            result = compare_case(case)
            if result["status"] == "divergence":
                caught = (case, result)
                break
        assert caught is not None, "injected bug escaped 10 generated cases"
        case, result = caught
        kinds = {d["kind"] for d in result["divergences"]}
        assert "transmitted" in kinds, result

        shrunk = shrink_case(case)
        assert element_count(shrunk) <= 5, shrunk["config"]
        assert len(shrunk["events"]) <= len(case["events"])
        # The minimized case must still reproduce the divergence.
        assert compare_case(shrunk)["status"] == "divergence"

    def test_regression_repro_flags_the_bug(self, unstrip_bug):
        """The shrunken repro in test_regressions catches the re-injected
        bug directly — that is what makes it a regression test."""
        from .test_regressions import unstrip_repro_case

        result = compare_case(unstrip_repro_case())
        assert result["status"] == "divergence"
        assert {d["mode"] for d in result["divergences"]} >= {"fast", "batch"}
