"""Regression tests for divergences the differential fuzzer found.

Each test replays the *shrunken* repro the fuzzer's delta-debugger
produced, through the same oracle that caught it — so the repro stays
honest: if the bug comes back, `compare_case` reports exactly the
divergence the fuzzer originally saw.
"""

from repro.net.headers import build_ether_udp_packet
from repro.sim.testbed import HOST_ETHERS, host_ip
from repro.verify.oracle import compare_case, optimize_config, run_case

# --- Divergence 1: Unstrip left the packet's cached data view stale. ---
#
# The fast path's Strip segment keeps the data cache warm; Unstrip
# adjusted the offset without invalidating the cache, so any config
# where nothing reads .data between Strip and Unstrip transmitted the
# *stripped* bytes in fast/batch/adaptive but the full frame under the
# reference interpreter.  Shrunk by click-fuzz to five elements.
UNSTRIP_REPRO_CONFIG = """\
src :: PollDevice(eth0);
strip :: Strip(14);
unstrip :: Unstrip(14);
q :: Queue(16);
dst :: ToDevice(eth1);

src -> strip -> unstrip -> q -> dst;
"""


def unstrip_repro_case():
    frame = build_ether_udp_packet(
        HOST_ETHERS[0],
        HOST_ETHERS[1],
        host_ip(0),
        host_ip(1),
        payload=b"\xa5" * 14,
        identification=1,
    )
    return {
        "name": "unstrip-stale-cache",
        "config": UNSTRIP_REPRO_CONFIG,
        "events": [["frame", "eth0", frame.hex()], ["run", 8]],
        "optimize": False,
    }


class TestUnstripStaleCache:
    def test_matrix_agrees(self):
        result = compare_case(unstrip_repro_case())
        assert result["status"] == "ok", result

    def test_full_frame_retransmitted(self):
        """The frame must leave whole (56 bytes: 14 ether + 20 IP +
        8 UDP + 14 payload), not stripped of its Ethernet header."""
        case = unstrip_repro_case()
        for mode in ("reference", "fast", "batch", "adaptive"):
            status, observation = run_case(case, mode)
            assert status == "ok"
            frames = observation["transmitted"]["eth1"]
            assert [len(f) // 2 for f in frames] == [56], mode


# --- Divergence 2: IPOutputCombo dropped what IPFragmenter fragments. -
#
# The paper pipeline's IP_OUTPUT_COMBO pattern absorbs IPFragmenter,
# but the combo's MTU branch dropped fragmentable oversize datagrams
# where the element it replaced emits real fragments — so optimized and
# unoptimized routers disagreed on every oversize non-DF packet.
def oversize_case(mtu=576):
    from repro.configs.iprouter import default_interfaces, ip_router_config

    interfaces = default_interfaces(2)
    frame = build_ether_udp_packet(
        HOST_ETHERS[0],
        interfaces[0].ether,
        host_ip(0),
        host_ip(1),
        payload=b"\x5a" * 900,  # > MTU, DF clear: must fragment
        identification=7,
    )
    events = [
        ["insert", "arpq0", host_ip(0), HOST_ETHERS[0]],
        ["insert", "arpq1", host_ip(1), HOST_ETHERS[1]],
        ["frame", "eth0", frame.hex()],
        ["run", 16],
    ]
    return {
        "name": "combo-fragmentation",
        "config": ip_router_config(interfaces, mtu=mtu),
        "events": events,
        "optimize": True,
    }


class TestComboFragmentation:
    def test_optimized_graph_uses_the_combo(self):
        case = oversize_case()
        optimized = optimize_config(case["config"])
        assert "IPOutputCombo" in optimized
        assert "IPFragmenter" not in optimized

    def test_matrix_agrees_including_optimized_axis(self):
        result = compare_case(oversize_case())
        assert result["status"] == "ok", result

    def test_fragments_are_emitted_not_dropped(self):
        case = oversize_case()
        status, plain = run_case(case, "reference")
        assert status == "ok"
        status, optimized = run_case(
            case, "reference", config_text=optimize_config(case["config"])
        )
        assert status == "ok"
        sizes = [len(f) // 2 for f in plain["transmitted"]["eth1"]]
        assert len(sizes) == 2 and all(size <= 576 + 14 for size in sizes)
        assert optimized["transmitted"] == plain["transmitted"]
