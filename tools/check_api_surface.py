#!/usr/bin/env python
"""Guard the public API surface of repro.core, repro.runtime,
repro.control, and repro.tune.

``repro.core.__all__`` (bare names) plus ``repro.runtime.__all__``
(``runtime.``-qualified), ``repro.control.__all__``
(``control.``-qualified), and ``repro.tune.__all__``
(``tune.``-qualified) are the supported surface;
``docs/api_surface.txt`` is its checked-in copy, one name per line,
sorted.  CI runs this script so any API addition or removal shows up as
an explicit diff in review.  Run with ``--update`` after an intentional
change.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SURFACE_FILE = os.path.join(REPO_ROOT, "docs", "api_surface.txt")


def current_surface():
    """The live surface: sorted ``repro.core.__all__`` plus the
    qualified ``repro.runtime.__all__``, ``repro.control.__all__``,
    and ``repro.tune.__all__``."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        import repro.control
        import repro.core
        import repro.runtime
        import repro.tune
    finally:
        sys.path.pop(0)
    names = list(repro.core.__all__)
    names += ["runtime.%s" % name for name in repro.runtime.__all__]
    names += ["control.%s" % name for name in repro.control.__all__]
    names += ["tune.%s" % name for name in repro.tune.__all__]
    return sorted(names)


def recorded_surface():
    """The checked-in surface, or None if the file is missing."""
    if not os.path.exists(SURFACE_FILE):
        return None
    with open(SURFACE_FILE) as handle:
        return [line.strip() for line in handle if line.strip()]


def main(argv=None):
    """Compare (or with --update, rewrite) the recorded surface."""
    argv = sys.argv[1:] if argv is None else argv
    live = current_surface()
    if "--update" in argv:
        with open(SURFACE_FILE, "w") as handle:
            handle.write("\n".join(live) + "\n")
        print("wrote %s (%d names)" % (SURFACE_FILE, len(live)))
        return 0

    recorded = recorded_surface()
    if recorded is None:
        print("missing %s; run: python tools/check_api_surface.py --update" % SURFACE_FILE)
        return 1
    added = sorted(set(live) - set(recorded))
    removed = sorted(set(recorded) - set(live))
    if not added and not removed:
        print("repro.core API surface unchanged (%d names)" % len(live))
        return 0
    print("repro.core API surface drifted from docs/api_surface.txt:")
    for name in added:
        print("  + %s" % name)
    for name in removed:
        print("  - %s" % name)
    print("if intentional, run: python tools/check_api_surface.py --update")
    return 1


if __name__ == "__main__":
    sys.exit(main())
