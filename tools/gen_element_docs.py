"""Regenerate docs/ELEMENTS.md from the element registry.

Run from the repository root:  python tools/gen_element_docs.py
"""

import inspect
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


TITLES = {
    "infrastructure": "Infrastructure (queues, fan-out, sources, sinks)",
    "ip": "IP forwarding path",
    "classifiers": "Classification",
    "arp": "ARP",
    "ethernet": "Ethernet",
    "icmp": "ICMP errors",
    "ping": "ICMP echo",
    "routing": "Routing tables",
    "combos": "Combination elements (installed by click-xform)",
    "devices": "Devices",
    "aqm": "Active queue management",
    "align": "Alignment (click-align)",
    "scheduling": "Schedulers and metadata",
    "dump": "Traces (pcap)",
    "udpip": "UDP/IP encapsulation",
}


def generate():
    """The docs/ELEMENTS.md contents for the current registry."""
    from repro.elements.registry import ELEMENT_CLASSES

    groups = {}
    for name, cls in sorted(ELEMENT_CLASSES.items()):
        module = cls.__module__.rsplit(".", 1)[-1]
        groups.setdefault(module, []).append((name, cls))

    lines = [
        "# Element reference",
        "",
        "All element classes in the registry, grouped by module.  Each entry",
        "shows the class-level specifications the tools scrape (§5.3): the",
        "processing code, flow code, and port counts.  This file is generated",
        "from the registry by `python tools/gen_element_docs.py`; a test keeps",
        "it in sync.",
        "",
    ]
    for module in sorted(groups):
        lines.append("## %s" % TITLES.get(module, module))
        lines.append("")
        lines.append("| class | processing | flow | ports | summary |")
        lines.append("|---|---|---|---|---|")
        for name, cls in groups[module]:
            doc = (inspect.getdoc(cls) or "").split("\n")[0].strip()
            if len(doc) > 90:
                doc = doc[:87] + "..."
            doc = doc.replace("|", "\\|")
            lines.append(
                "| `%s` | `%s` | `%s` | `%s` | %s |"
                % (name, cls.processing, cls.flow_code, cls.port_counts, doc)
            )
        lines.append("")
    return "\n".join(lines) + "\n"


def main():
    """Write the generated reference next to the other docs."""
    import repro.elements  # noqa: F401 - populate the registry

    path = os.path.join(os.path.dirname(__file__), "..", "docs", "ELEMENTS.md")
    with open(path, "w") as handle:
        handle.write(generate())
    print("wrote", os.path.normpath(path))


if __name__ == "__main__":
    main()
